"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools predates
built-in PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
