"""Tests for generousness and per-row top-k binarisation (§IV.C)."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.trust import (
    binarize_top_k,
    direct_connection_matrix,
    generousness,
    ground_truth_matrix,
)


class TestGenerousness:
    def test_fixture_values(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        T = ground_truth_matrix(two_category_community)
        k = generousness(R, T)
        # bob: 1 connection (alice), trusts alice -> 1.0
        assert k["bob"] == pytest.approx(1.0)
        # dave: 3 connections (alice, bob, carol), trusts alice -> 1/3
        assert k["dave"] == pytest.approx(1 / 3)
        # alice: 1 connection (carol), trusts carol -> 1.0
        assert k["alice"] == pytest.approx(1.0)

    def test_users_without_connections_absent(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        T = ground_truth_matrix(two_category_community)
        k = generousness(R, T)
        assert "eve" not in k
        assert "carol" not in k

    def test_axis_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            generousness(UserPairMatrix(["a"]), UserPairMatrix(["b"]))

    def test_trust_outside_connections_ignored(self):
        R = UserPairMatrix(["a", "b", "c"])
        T = UserPairMatrix(["a", "b", "c"])
        R.set("a", "b", 1.0)
        T.set("a", "c", 1.0)  # trusted but never rated
        assert generousness(R, T)["a"] == 0.0


class TestBinarizeTopK:
    @pytest.fixture
    def scores(self):
        m = UserPairMatrix(["a", "b", "c", "d", "e"])
        m.set("a", "b", 0.9)
        m.set("a", "c", 0.7)
        m.set("a", "d", 0.5)
        m.set("a", "e", 0.3)
        m.set("b", "a", 0.6)
        return m

    def test_top_half(self, scores):
        binary = binarize_top_k(scores, {"a": 0.5, "b": 0.0})
        assert binary.row("a") == {"b": 1.0, "c": 1.0}
        assert binary.row("b") == {}

    def test_k_one_keeps_all(self, scores):
        binary = binarize_top_k(scores, {"a": 1.0, "b": 1.0})
        assert binary.row_size("a") == 4
        assert binary.row_size("b") == 1

    def test_k_zero_keeps_none(self, scores):
        binary = binarize_top_k(scores, {"a": 0.0, "b": 0.0})
        assert binary.num_entries() == 0

    def test_missing_user_uses_default(self, scores):
        binary = binarize_top_k(scores, {}, default_k=1.0)
        assert binary.num_entries() == 5

    def test_round_half_up(self, scores):
        # 0.375 * 4 = 1.5 -> rounds to 2 entries for row a
        binary = binarize_top_k(scores, {"a": 0.375, "b": 0.0})
        assert binary.row_size("a") == 2

    def test_exact_fraction_recovers_integer(self, scores):
        # k = 1/4 over 4 entries must keep exactly 1 even with float noise
        binary = binarize_top_k(scores, {"a": 1 / 4, "b": 0.0})
        assert binary.row("a") == {"b": 1.0}

    def test_ties_resolved_stably(self):
        m = UserPairMatrix(["a", "x", "y", "z"])
        m.set("a", "x", 0.5)
        m.set("a", "y", 0.5)
        m.set("a", "z", 0.5)
        binary = binarize_top_k(m, {"a": 1 / 3})
        assert binary.row("a") == {"x": 1.0}

    def test_output_is_binary(self, scores):
        binary = binarize_top_k(scores, {"a": 0.6, "b": 1.0})
        assert set(v for _, _, v in binary.entries()) == {1.0}

    def test_invalid_k_rejected(self, scores):
        with pytest.raises(ValidationError):
            binarize_top_k(scores, {"a": 1.5})
        with pytest.raises(ValidationError):
            binarize_top_k(scores, {}, default_k=-0.1)


class TestPaperPipelineShape:
    def test_baseline_binarisation_recall_equals_precision_count(
        self, two_category_community
    ):
        """Per §IV.C: applying k_i to a matrix with R's support selects
        exactly |R_i ∩ T_i| entries per row, so the number of selected
        pairs equals the number of true pairs."""
        from repro.trust import baseline_matrix

        R = direct_connection_matrix(two_category_community)
        T = ground_truth_matrix(two_category_community)
        B = baseline_matrix(two_category_community)
        k = generousness(R, T)
        binary = binarize_top_k(B, k)
        selected = binary.num_entries()
        truth_in_r = len(T.intersect_support(R))
        assert selected == truth_in_r
