"""Property tests for Step 3: derivation and binarisation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix import UserCategoryMatrix, UserPairMatrix
from repro.trust import binarize_top_k, derive_trust


@st.composite
def paired_matrices(draw):
    num_users = draw(st.integers(2, 7))
    num_categories = draw(st.integers(1, 4))
    def unit_matrix():
        return np.array(
            [
                [draw(st.floats(0, 1, allow_nan=False, width=32)) for _ in range(num_categories)]
                for _ in range(num_users)
            ]
        )
    users = [f"u{i}" for i in range(num_users)]
    categories = [f"c{j}" for j in range(num_categories)]
    A = UserCategoryMatrix(users, categories, unit_matrix())
    E = UserCategoryMatrix(users, categories, unit_matrix())
    return A, E


class TestDerivationProperties:
    @given(paired_matrices())
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force_equation_five(self, matrices):
        """The blocked sparse product must equal a literal eq.-5 loop."""
        A, E = matrices
        derived = derive_trust(A, E)
        users = list(A.users)
        categories = list(A.categories)
        for i, source in enumerate(users):
            denominator = sum(A.get(source, c) for c in categories)
            for j, target in enumerate(users):
                if i == j:
                    assert not derived.contains(source, target)
                    continue
                if denominator == 0.0:
                    assert not derived.contains(source, target)
                    continue
                expected = (
                    sum(A.get(source, c) * E.get(target, c) for c in categories)
                    / denominator
                )
                if expected > 0.0:
                    assert derived.get(source, target) == pytest.approx(expected)
                else:
                    assert not derived.contains(source, target)

    @given(paired_matrices())
    @settings(max_examples=40, deadline=None)
    def test_values_in_unit_interval(self, matrices):
        A, E = matrices
        for _, _, value in derive_trust(A, E).entries():
            assert 0.0 <= value <= 1.0 + 1e-9


@st.composite
def scored_rows(draw):
    num_users = draw(st.integers(2, 8))
    users = [f"u{i}" for i in range(num_users)]
    matrix = UserPairMatrix(users)
    for i, source in enumerate(users):
        for j, target in enumerate(users):
            if i != j and draw(st.booleans()):
                matrix.set(source, target, draw(st.floats(0, 1, allow_nan=False, width=32)))
    k_values = {user: draw(st.floats(0, 1, allow_nan=False, width=16)) for user in users}
    return matrix, k_values


class TestBinarizeProperties:
    @given(scored_rows())
    @settings(max_examples=80, deadline=None)
    def test_row_sizes_and_support(self, data):
        matrix, k_values = data
        binary = binarize_top_k(matrix, k_values)
        # support subset of input support
        assert binary.support() <= matrix.support()
        for source in matrix.source_ids():
            n = matrix.row_size(source)
            expected = int(k_values[source] * n + 0.5 + 1e-9)
            assert binary.row_size(source) == min(expected, n)

    @given(scored_rows())
    @settings(max_examples=60, deadline=None)
    def test_selected_entries_dominate_unselected(self, data):
        """Every selected entry's score >= every unselected entry's score
        within the same row (top-k property)."""
        matrix, k_values = data
        binary = binarize_top_k(matrix, k_values)
        for source in matrix.source_ids():
            row = matrix.row(source)
            selected = {t for t in row if binary.contains(source, t)}
            unselected = set(row) - selected
            if selected and unselected:
                assert min(row[t] for t in selected) >= max(row[t] for t in unselected) - 1e-12
