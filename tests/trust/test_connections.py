"""Tests for the observed relations R, B and T."""

import pytest

from repro.community import Review, ReviewRating, ReviewedObject
from repro.trust import (
    baseline_matrix,
    direct_connection_matrix,
    ground_truth_matrix,
)


class TestDirectConnections:
    def test_support_matches_rating_pairs(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        assert R.support() == {
            ("bob", "alice"),
            ("dave", "alice"),
            ("dave", "bob"),
            ("alice", "carol"),
            ("dave", "carol"),
        }

    def test_counts_stored(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        assert R.get("bob", "alice") == 2.0  # bob rated ra1 and ra2
        assert R.get("dave", "alice") == 1.0

    def test_axis_covers_inactive_users(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        assert "eve" in R.users


class TestBaseline:
    def test_mean_rating_per_pair(self, two_category_community):
        B = baseline_matrix(two_category_community)
        assert B.get("bob", "alice") == pytest.approx((1.0 + 0.8) / 2)
        assert B.get("dave", "bob") == pytest.approx(0.4)

    def test_support_equals_direct_connections(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        B = baseline_matrix(two_category_community)
        assert B.support() == R.support()

    def test_updates_with_new_rating(self, two_category_community):
        two_category_community.add_object(ReviewedObject("m9", "movies"))
        two_category_community.add_review(Review("ra9", "alice", "m9"))
        two_category_community.add_rating(ReviewRating("bob", "ra9", 0.2))
        B = baseline_matrix(two_category_community)
        assert B.get("bob", "alice") == pytest.approx((1.0 + 0.8 + 0.2) / 3)


class TestGroundTruth:
    def test_binary_entries(self, two_category_community):
        T = ground_truth_matrix(two_category_community)
        assert T.support() == {("bob", "alice"), ("dave", "alice"), ("alice", "carol")}
        assert all(value == 1.0 for _, _, value in T.entries())

    def test_shared_axis_enables_set_operations(self, two_category_community):
        R = direct_connection_matrix(two_category_community)
        T = ground_truth_matrix(two_category_community)
        # all three explicit trust edges are also direct connections here
        assert T.intersect_support(R) == T.support()
        assert R.subtract_support(T) == {("dave", "bob"), ("dave", "carol")}
