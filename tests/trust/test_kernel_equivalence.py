"""Equivalence of the vectorised kernels against naive reference loops.

The naive implementations here are the *specification*: eq. 5 written as
the paper states it (a triple loop) and Step-1 assembly written entry by
entry.  The vectorised kernels must agree on randomised communities,
including ``min_value`` thresholds, zero-affinity rows and the
``include_self`` edge cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import CommunityProfile, generate_community
from repro.matrix import UserCategoryMatrix, UserPairMatrix
from repro.perf import reference_derive_trust, reference_fit_expertise
from repro.reputation import ExpertiseEstimator
from repro.trust import TrustDeriver


def naive_eq5(
    affiliation: UserCategoryMatrix,
    expertise: UserCategoryMatrix,
    *,
    min_value: float = 0.0,
    include_self: bool = False,
) -> dict[tuple[str, str], float]:
    """Eq. 5 as written in the paper: one Python loop per (i, j, c)."""
    a = affiliation.values_view()
    e = expertise.values_view()
    users = list(affiliation.users)
    result: dict[tuple[str, str], float] = {}
    for i, source in enumerate(users):
        denominator = sum(a[i])
        if denominator <= 0.0:
            continue
        for j, target in enumerate(users):
            if i == j and not include_self:
                continue
            value = sum(a[i, c] * e[j, c] for c in range(a.shape[1])) / denominator
            if value > min_value:
                result[(source, target)] = value
    return result


def random_matrices(rng, n, c, zero_affinity_fraction=0.3):
    users = [f"u{i}" for i in range(n)]
    cats = [f"c{j}" for j in range(c)]
    a = rng.random((n, c))
    a[rng.random(n) < zero_affinity_fraction] = 0.0  # zero-affinity rows
    e = rng.random((n, c))
    e[rng.random(n) < 0.2] = 0.0  # users with no expertise anywhere
    return (
        UserCategoryMatrix(users, cats, a),
        UserCategoryMatrix(users, cats, e),
    )


class TestDeriveEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("min_value", [0.0, 0.2])
    @pytest.mark.parametrize("include_self", [False, True])
    def test_matches_naive_eq5(self, seed, min_value, include_self):
        rng = np.random.default_rng(seed)
        affiliation, expertise = random_matrices(rng, n=30, c=4)
        derived = TrustDeriver(min_value=min_value, include_self=include_self).derive(
            affiliation, expertise
        )
        expected = naive_eq5(
            affiliation, expertise, min_value=min_value, include_self=include_self
        )
        assert derived.support() == set(expected)
        for (source, target), value in expected.items():
            assert derived.get(source, target) == pytest.approx(value)

    @pytest.mark.parametrize("seed", range(5))
    def test_bitwise_identical_to_seed_implementation(self, seed):
        rng = np.random.default_rng(100 + seed)
        affiliation, expertise = random_matrices(rng, n=40, c=5)
        vectorised = TrustDeriver().derive(affiliation, expertise)
        seed_impl = reference_derive_trust(affiliation, expertise)
        assert vectorised == seed_impl  # exact float equality, same support

    def test_blocked_equals_unblocked(self):
        rng = np.random.default_rng(13)
        affiliation, expertise = random_matrices(rng, n=37, c=3)
        assert TrustDeriver(block_size=4).derive(
            affiliation, expertise
        ) == TrustDeriver(block_size=10_000).derive(affiliation, expertise)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 12),
        c=st.integers(1, 5),
        min_value=st.sampled_from([0.0, 0.1, 0.5]),
        include_self=st.booleans(),
    )
    def test_property_random_communities(self, seed, n, c, min_value, include_self):
        rng = np.random.default_rng(seed)
        affiliation, expertise = random_matrices(rng, n=n, c=c)
        derived = TrustDeriver(min_value=min_value, include_self=include_self).derive(
            affiliation, expertise
        )
        expected = naive_eq5(
            affiliation, expertise, min_value=min_value, include_self=include_self
        )
        assert derived.support() == set(expected)
        for (source, target), value in expected.items():
            assert derived.get(source, target) == pytest.approx(value)


class TestDeriveForPairsEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_naive_dot_products(self, seed):
        rng = np.random.default_rng(seed)
        affiliation, expertise = random_matrices(rng, n=25, c=4)
        users = list(affiliation.users)
        pairs = {
            (users[int(rng.integers(25))], users[int(rng.integers(25))])
            for _ in range(60)
        }
        partial = TrustDeriver().derive_for_pairs(affiliation, expertise, pairs)
        a = affiliation.values_view()
        e = expertise.values_view()
        for source, target in pairs:
            i, j = users.index(source), users.index(target)
            if i == j:
                assert not partial.contains(source, target)
                continue
            denominator = a[i].sum()
            expected = float(a[i] @ e[j] / denominator) if denominator > 0 else 0.0
            assert partial.contains(source, target)  # zeros preserved on support
            assert partial.get(source, target) == pytest.approx(expected)


class TestStepOneEquivalence:
    @pytest.mark.parametrize("seed", [0, 11, 42])
    def test_fit_matches_seed_assembly(self, seed):
        dataset = generate_community(CommunityProfile(num_users=60), seed=seed)
        bulk = ExpertiseEstimator().fit(dataset.community)
        reference = reference_fit_expertise(dataset.community)
        assert bulk.expertise == reference.expertise
        assert bulk.rater_reputation == reference.rater_reputation
        assert bulk.iterations() == reference.iterations()
