"""Tests for web-of-trust structural analysis."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.trust.analysis import coverage_comparison, web_analysis


def web(users, pairs):
    m = UserPairMatrix(users)
    for source, target in pairs:
        m.set(source, target, 1.0)
    return m


class TestWebAnalysis:
    def test_empty_axis(self):
        result = web_analysis(web([], []))
        assert result.num_users == 0
        assert result.reachable_pair_fraction == 0.0

    def test_chain_reachability(self):
        # a->b->c: reachable ordered pairs = (a,b), (a,c), (b,c) of 6
        result = web_analysis(web(["a", "b", "c"], [("a", "b"), ("b", "c")]))
        assert result.reachable_pair_fraction == pytest.approx(0.5)
        assert result.sources_fraction == pytest.approx(2 / 3)
        # path lengths: 1, 2, 1 -> mean 4/3
        assert result.mean_path_length == pytest.approx(4 / 3)

    def test_full_cycle(self):
        users = ["a", "b", "c"]
        result = web_analysis(
            web(users, [("a", "b"), ("b", "c"), ("c", "a")])
        )
        assert result.reachable_pair_fraction == pytest.approx(1.0)
        assert result.largest_scc_fraction == pytest.approx(1.0)

    def test_no_edges(self):
        result = web_analysis(web(["a", "b"], []))
        assert result.num_edges == 0
        assert result.sources_fraction == 0.0
        assert result.largest_scc_fraction == 0.0

    def test_sampling_close_to_exact(self):
        users = [f"u{i}" for i in range(40)]
        pairs = [(f"u{i}", f"u{(i + 1) % 40}") for i in range(40)]  # ring
        exact = web_analysis(web(users, pairs), samples=1000)
        sampled = web_analysis(web(users, pairs), samples=10, seed=1)
        # a directed ring reaches every ordered pair
        assert exact.reachable_pair_fraction == pytest.approx(1.0)
        # a ring is symmetric: any sample gives the exact value
        assert sampled.reachable_pair_fraction == pytest.approx(
            exact.reachable_pair_fraction
        )

    def test_samples_validation(self):
        with pytest.raises(ValidationError):
            web_analysis(web(["a"], []), samples=0)


class TestCoverageComparison:
    def test_denser_web_covers_more(self):
        users = [f"u{i}" for i in range(12)]
        sparse = web(users, [("u0", "u1"), ("u2", "u3")])
        dense_pairs = [
            (users[i], users[j]) for i in range(12) for j in range(12)
            if i != j and (i + j) % 2 == 0
        ]
        dense = web(users, dense_pairs)
        result = coverage_comparison(sparse, dense, samples=50)
        assert (
            result["derived"].reachable_pair_fraction
            > result["explicit"].reachable_pair_fraction
        )
        assert result["derived"].sources_fraction > result["explicit"].sources_fraction
