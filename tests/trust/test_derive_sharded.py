"""Tests for the out-of-core Step 3 path (``TrustDeriver.derive_sharded``)."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserCategoryMatrix
from repro.shard import ShardLayout, ShardStore
from repro.shard.matrix import ENTRY_BYTES
from repro.trust import TrustDeriver


def random_matrices(num_users=20, num_categories=3, seed=5, density=0.6):
    rng = np.random.default_rng(seed)

    def unit_matrix():
        values = rng.random((num_users, num_categories))
        return values * (rng.random((num_users, num_categories)) < density)

    users = [f"u{i}" for i in range(num_users)]
    categories = [f"c{j}" for j in range(num_categories)]
    A = UserCategoryMatrix(users, categories, unit_matrix())
    E = UserCategoryMatrix(users, categories, unit_matrix())
    return A, E


class TestBitwiseEquality:
    @pytest.mark.parametrize("num_shards", [1, 3, 4, 7])
    def test_matches_derive_at_any_shard_count(self, num_shards):
        A, E = random_matrices()
        deriver = TrustDeriver()
        dense = deriver.derive(A, E)
        sharded = deriver.derive_sharded(A, E, num_shards=num_shards)
        assert sharded == dense
        for a, b in zip(sharded.entries_arrays(), dense.entries_arrays()):
            np.testing.assert_array_equal(a, b)

    def test_spilled_path_identical(self):
        A, E = random_matrices()
        deriver = TrustDeriver()
        sharded = deriver.derive_sharded(
            A, E, num_shards=3, spill_bytes=ENTRY_BYTES
        )
        assert sharded == deriver.derive(A, E)
        assert sharded.store is not None  # every shard hit the disk

    def test_capped_block_size_identical(self):
        """A tiny spill budget also shrinks the dense scratch block --
        block boundaries must not change any stored value."""
        A, E = random_matrices(num_users=25)
        deriver = TrustDeriver(block_size=512)
        sharded = deriver.derive_sharded(A, E, num_shards=2, spill_bytes=8 * 25)
        assert sharded == deriver.derive(A, E)

    def test_uneven_layout_identical(self):
        A, E = random_matrices(num_users=10)
        layout = ShardLayout(n_rows=10, bounds=(0, 1, 9, 10))
        deriver = TrustDeriver()
        assert deriver.derive_sharded(A, E, layout=layout) == deriver.derive(A, E)


class TestEdgeCases:
    def test_zero_affinity_community_is_empty(self):
        users = ["u0", "u1"]
        A = UserCategoryMatrix(users, ["c0"])
        E = UserCategoryMatrix(users, ["c0"], np.asarray([[0.5], [0.5]]))
        sharded = TrustDeriver().derive_sharded(A, E, num_shards=2)
        assert sharded.num_entries() == 0
        assert sharded == TrustDeriver().derive(A, E)

    def test_misaligned_axes_rejected(self):
        A = UserCategoryMatrix(["u0", "u1"], ["c0"])
        E = UserCategoryMatrix(["u0", "other"], ["c0"])
        with pytest.raises(ValidationError):
            TrustDeriver().derive_sharded(A, E)

    def test_result_lands_in_given_store(self, tmp_path):
        A, E = random_matrices()
        store = ShardStore(tmp_path / "derived")
        sharded = TrustDeriver().derive_sharded(
            A, E, num_shards=2, store=store, spill_bytes=ENTRY_BYTES
        )
        assert sharded.store is store
        sharded.flush(epoch=3)
        assert store.read_manifest()["epoch"] == 3
        assert store.verify() == []
