"""Tests for trust derivation (eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.matrix import UserCategoryMatrix
from repro.trust import TrustDeriver, derive_trust


def make_matrices(a_rows, e_rows, users=None, categories=None):
    users = users or [f"u{i}" for i in range(len(a_rows))]
    categories = categories or [f"c{j}" for j in range(len(a_rows[0]))]
    A = UserCategoryMatrix(users, categories, np.array(a_rows, dtype=float))
    E = UserCategoryMatrix(users, categories, np.array(e_rows, dtype=float))
    return A, E


class TestEquationFive:
    def test_hand_computed_two_by_two(self):
        # A(u0) = [0.5, 0.25]; E(u1) = [0.8, 0.4]
        # T(u0, u1) = (0.5*0.8 + 0.25*0.4)/(0.75) = 0.5/0.75 = 2/3
        A, E = make_matrices([[0.5, 0.25], [0.0, 0.0]], [[0.0, 0.0], [0.8, 0.4]])
        T = derive_trust(A, E)
        assert T.get("u0", "u1") == pytest.approx(2 / 3)

    def test_affinity_weights_matter(self):
        # u0 cares only about c0; u1 is expert only in c1 -> zero trust;
        # u2 is expert only in c0 -> full E value
        A, E = make_matrices(
            [[1.0, 0.0], [0.0, 0.0], [0.0, 0.0]],
            [[0.0, 0.0], [0.0, 0.9], [0.7, 0.0]],
        )
        T = derive_trust(A, E)
        assert not T.contains("u0", "u1")  # zero -> not stored
        assert T.get("u0", "u2") == pytest.approx(0.7)

    def test_zero_affinity_row_produces_nothing(self):
        A, E = make_matrices([[0.0, 0.0]], [[0.9, 0.9]])
        T = derive_trust(A, E)
        assert T.num_entries() == 0

    def test_diagonal_excluded_by_default(self):
        A, E = make_matrices([[1.0]], [[0.9]])
        T = derive_trust(A, E)
        assert not T.contains("u0", "u0")

    def test_diagonal_included_on_request(self):
        A, E = make_matrices([[1.0]], [[0.9]])
        T = derive_trust(A, E, include_self=True)
        assert T.get("u0", "u0") == pytest.approx(0.9)

    def test_min_value_threshold(self):
        A, E = make_matrices(
            [[1.0, 0.0], [0.0, 0.0], [0.0, 0.0]],
            [[0.0, 0.0], [0.05, 0.0], [0.5, 0.0]],
        )
        T = derive_trust(A, E, min_value=0.1)
        assert not T.contains("u0", "u1")  # 0.05 below threshold
        assert T.get("u0", "u2") == pytest.approx(0.5)

    def test_axis_mismatch_rejected(self):
        A, _ = make_matrices([[1.0]], [[0.5]])
        _, E = make_matrices([[1.0]], [[0.5]], users=["other"])
        with pytest.raises(ValidationError, match="user axis"):
            derive_trust(A, E)

    def test_category_mismatch_rejected(self):
        A, _ = make_matrices([[1.0]], [[0.5]])
        _, E = make_matrices([[1.0]], [[0.5]], categories=["different"])
        with pytest.raises(ValidationError, match="category axis"):
            derive_trust(A, E)


class TestBlockedComputation:
    def test_block_size_does_not_change_result(self):
        rng = np.random.default_rng(7)
        n, c = 23, 4
        a = rng.random((n, c))
        e = rng.random((n, c))
        users = [f"u{i}" for i in range(n)]
        cats = [f"c{j}" for j in range(c)]
        A = UserCategoryMatrix(users, cats, a)
        E = UserCategoryMatrix(users, cats, e)
        small = TrustDeriver(block_size=3).derive(A, E)
        large = TrustDeriver(block_size=1000).derive(A, E)
        assert small == large

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            TrustDeriver(block_size=0)
        with pytest.raises(ValidationError):
            TrustDeriver(min_value=-0.1)


class TestDeriveForPairs:
    def test_matches_full_derivation_on_support(self):
        rng = np.random.default_rng(11)
        n, c = 12, 3
        users = [f"u{i}" for i in range(n)]
        cats = [f"c{j}" for j in range(c)]
        A = UserCategoryMatrix(users, cats, rng.random((n, c)))
        E = UserCategoryMatrix(users, cats, rng.random((n, c)))
        full = derive_trust(A, E)
        pairs = set(list(full.support())[:20])
        partial = TrustDeriver().derive_for_pairs(A, E, pairs)
        for source, target in pairs:
            assert partial.get(source, target) == pytest.approx(full.get(source, target))

    def test_stores_zero_entries_to_preserve_support(self):
        A, E = make_matrices([[1.0, 0.0], [0.0, 0.0]], [[0.0, 0.0], [0.0, 0.9]])
        partial = TrustDeriver().derive_for_pairs(A, E, {("u0", "u1")})
        assert partial.contains("u0", "u1")
        assert partial.get("u0", "u1") == 0.0

    def test_zero_affinity_source_gets_zero(self):
        A, E = make_matrices([[0.0]], [[0.9]], users=["u0"])
        E2 = UserCategoryMatrix(["u0", "u1"], ["c0"], np.array([[0.0], [0.9]]))
        A2 = UserCategoryMatrix(["u0", "u1"], ["c0"], np.array([[0.0], [1.0]]))
        partial = TrustDeriver().derive_for_pairs(A2, E2, {("u0", "u1")})
        assert partial.get("u0", "u1") == 0.0

    def test_skips_diagonal_pairs(self):
        A, E = make_matrices([[1.0]], [[0.9]])
        partial = TrustDeriver().derive_for_pairs(A, E, {("u0", "u0")})
        assert partial.num_entries() == 0


unit_matrix = st.tuples(st.integers(2, 6), st.integers(1, 4)).flatmap(
    lambda shape: st.lists(
        st.lists(
            st.floats(0, 1, allow_nan=False, width=32),
            min_size=shape[1],
            max_size=shape[1],
        ),
        min_size=shape[0],
        max_size=shape[0],
    )
)


class TestDerivationProperties:
    @given(unit_matrix, st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_values_bounded_by_target_expertise(self, rows, rnd):
        """T-hat_ij is a weighted mean of E_j*, so it can't exceed max_c E_jc."""
        a = np.array(rows, dtype=float)
        e = np.array(rows, dtype=float).T[: a.shape[1], : a.shape[0]].T
        if e.shape != a.shape:
            e = np.resize(e, a.shape)
        e = np.clip(e, 0, 1)
        users = [f"u{i}" for i in range(a.shape[0])]
        cats = [f"c{j}" for j in range(a.shape[1])]
        T = derive_trust(
            UserCategoryMatrix(users, cats, a), UserCategoryMatrix(users, cats, e)
        )
        for source, target, value in T.entries():
            j = users.index(target)
            assert value <= e[j].max() + 1e-9
            assert 0.0 <= value <= 1.0 + 1e-9


class TestDeriveRegion:
    """derive_region must store bitwise what a full derive stores there."""

    def _random_matrices(self, seed, n=19, c=3):
        rng = np.random.default_rng(seed)
        a = rng.random((n, c)) * (rng.random((n, c)) < 0.7)
        e = rng.random((n, c)) * (rng.random((n, c)) < 0.7)
        users = [f"u{i}" for i in range(n)]
        cats = [f"c{j}" for j in range(c)]
        return (
            UserCategoryMatrix(users, cats, a),
            UserCategoryMatrix(users, cats, e),
        )

    def _region_support(self, full, rows, cols):
        users = full.users
        keep = {
            (s, t)
            for s, t in full.support()
            if users.position(s) in rows or users.position(t) in cols
        }
        return full.restrict_to(keep)

    @pytest.mark.parametrize(
        "rows,cols",
        [
            ((2, 7), (4,)),          # single col exercises the padded path
            ((0,), ()),              # rows only
            ((), (3, 8, 11)),        # cols only
            ((1, 2, 3, 4), (1, 2)),  # overlapping rows and cols
        ],
    )
    def test_bitwise_equals_full_derive_on_region(self, rows, cols):
        A, E = self._random_matrices(23)
        deriver = TrustDeriver()
        full = deriver.derive(A, E)
        region = deriver.derive_region(
            A, E, rows=np.asarray(rows, dtype=np.int64), cols=np.asarray(cols, dtype=np.int64)
        )
        expected = self._region_support(full, set(rows), set(cols))
        assert region.support() == expected.support()
        for s, t, v in region.entries():
            # bitwise: exact float equality, no tolerance
            assert v == full.get(s, t)

    def test_empty_region_is_empty(self):
        A, E = self._random_matrices(3)
        region = TrustDeriver().derive_region(
            A, E, rows=np.array([], dtype=np.int64), cols=np.array([], dtype=np.int64)
        )
        assert region.num_entries() == 0

    def test_block_size_does_not_change_region(self):
        A, E = self._random_matrices(9)
        rows = np.array([1, 5, 6], dtype=np.int64)
        cols = np.array([0, 2], dtype=np.int64)
        small = TrustDeriver(block_size=2).derive_region(A, E, rows=rows, cols=cols)
        large = TrustDeriver(block_size=1000).derive_region(A, E, rows=rows, cols=cols)
        assert small == large

    def test_out_of_range_positions_rejected(self):
        A, E = self._random_matrices(1, n=4)
        with pytest.raises(ValidationError, match="rows positions"):
            TrustDeriver().derive_region(
                A, E, rows=np.array([4]), cols=np.array([], dtype=np.int64)
            )
        with pytest.raises(ValidationError, match="cols positions"):
            TrustDeriver().derive_region(
                A, E, rows=np.array([], dtype=np.int64), cols=np.array([-1])
            )
