"""Tests for matrix <-> networkx conversion."""

import networkx as nx
import pytest

from repro.matrix import LabelIndex, UserPairMatrix
from repro.trust import from_digraph, to_digraph


@pytest.fixture
def matrix():
    m = UserPairMatrix(["a", "b", "c"])
    m.set("a", "b", 0.8)
    m.set("b", "c", 0.4)
    return m


class TestToDigraph:
    def test_edges_and_weights(self, matrix):
        g = to_digraph(matrix)
        assert g.number_of_edges() == 2
        assert g["a"]["b"]["trust"] == pytest.approx(0.8)

    def test_isolated_nodes_kept(self, matrix):
        g = to_digraph(matrix)
        assert set(g.nodes) == {"a", "b", "c"}

    def test_direction_preserved(self, matrix):
        g = to_digraph(matrix)
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_custom_weight_key(self, matrix):
        g = to_digraph(matrix, weight_key="w")
        assert g["a"]["b"]["w"] == pytest.approx(0.8)


class TestFromDigraph:
    def test_roundtrip(self, matrix):
        rebuilt = from_digraph(to_digraph(matrix), matrix.users)
        assert rebuilt == matrix

    def test_default_axis_from_nodes(self):
        g = nx.DiGraph()
        g.add_edge("x", "y", trust=0.5)
        m = from_digraph(g)
        assert m.get("x", "y") == pytest.approx(0.5)

    def test_missing_weight_uses_default(self):
        g = nx.DiGraph()
        g.add_edge("x", "y")
        m = from_digraph(g, LabelIndex(["x", "y"]), default_weight=0.25)
        assert m.get("x", "y") == pytest.approx(0.25)
