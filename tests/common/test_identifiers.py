"""Tests for identifier helpers."""

import pytest

from repro.common.errors import ValidationError
from repro.common.identifiers import (
    IdAllocator,
    category_id,
    object_id,
    review_id,
    user_id,
)


class TestIdFormatting:
    def test_prefixes_distinguish_entity_kinds(self):
        assert user_id(1) == "u000001"
        assert category_id(1) == "c000001"
        assert object_id(1) == "o000001"
        assert review_id(1) == "r000001"

    def test_zero_padded_to_six_digits(self):
        assert user_id(0) == "u000000"
        assert user_id(123456) == "u123456"

    def test_wide_indices_do_not_truncate(self):
        assert user_id(1_234_567) == "u1234567"

    def test_rejects_negative_index(self):
        with pytest.raises(ValidationError):
            user_id(-1)

    def test_rejects_bool_index(self):
        with pytest.raises(ValidationError):
            user_id(True)

    def test_ids_sort_in_index_order_within_padding(self):
        ids = [user_id(i) for i in range(100)]
        assert ids == sorted(ids)


class TestIdAllocator:
    def test_allocates_monotonically(self):
        alloc = IdAllocator("r")
        assert [alloc.next() for _ in range(3)] == ["r000000", "r000001", "r000002"]

    def test_start_offset(self):
        alloc = IdAllocator("u", start=10)
        assert alloc.next() == "u000010"

    def test_allocated_count(self):
        alloc = IdAllocator("o")
        assert alloc.allocated == 0
        alloc.next()
        alloc.next()
        assert alloc.allocated == 2

    def test_rejects_bad_prefix(self):
        with pytest.raises(ValidationError):
            IdAllocator("1")
        with pytest.raises(ValidationError):
            IdAllocator("")

    def test_rejects_negative_start(self):
        with pytest.raises(ValidationError):
            IdAllocator("u", start=-5)
