"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.common.rng import RngFactory, spawn_rng, stable_stream_seed


class TestStableStreamSeed:
    def test_deterministic(self):
        assert stable_stream_seed(7, "users") == stable_stream_seed(7, "users")

    def test_varies_with_name(self):
        assert stable_stream_seed(7, "users") != stable_stream_seed(7, "ratings")

    def test_varies_with_seed(self):
        assert stable_stream_seed(7, "users") != stable_stream_seed(8, "users")

    def test_fits_in_uint64(self):
        for seed in (0, 1, 2**40, -3):
            value = stable_stream_seed(seed, "x")
            assert 0 <= value < 2**64

    def test_rejects_non_int_seed(self):
        with pytest.raises(ValidationError):
            stable_stream_seed("7", "users")  # type: ignore[arg-type]


class TestSpawnRng:
    def test_same_inputs_same_stream(self):
        a = spawn_rng(42, "s").random(16)
        b = spawn_rng(42, "s").random(16)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        a = spawn_rng(42, "s1").random(16)
        b = spawn_rng(42, "s2").random(16)
        assert not np.array_equal(a, b)


class TestRngFactory:
    def test_child_streams_are_reproducible_across_factories(self):
        a = RngFactory(5).child("gen").random(8)
        b = RngFactory(5).child("gen").random(8)
        assert np.array_equal(a, b)

    def test_child_name_can_only_be_taken_once(self):
        factory = RngFactory(5)
        factory.child("gen")
        with pytest.raises(ValueError, match="already taken"):
            factory.child("gen")

    def test_peek_does_not_reserve(self):
        factory = RngFactory(5)
        peeked = factory.peek("gen").random(4)
        taken = factory.child("gen").random(4)
        assert np.array_equal(peeked, taken)

    def test_seed_property(self):
        assert RngFactory(99).seed == 99

    def test_rejects_non_int_seed(self):
        with pytest.raises(ValidationError):
            RngFactory(1.5)  # type: ignore[arg-type]

    def test_adding_stream_does_not_shift_other_stream(self):
        # the core reproducibility property: consuming one stream leaves
        # the other untouched
        f1 = RngFactory(3)
        _ = f1.child("a").random(1000)
        b1 = f1.child("b").random(8)

        f2 = RngFactory(3)
        b2 = f2.child("b").random(8)
        assert np.array_equal(b1, b2)
