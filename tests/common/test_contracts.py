"""Tests for the runtime array-contract layer."""

import numpy as np
import pytest

from repro.common import contracts
from repro.common.contracts import (
    ContractError,
    array_spec,
    checked_arrays,
    contracts_enabled,
)
from repro.common.errors import ValidationError


def make_kernel():
    """A tiny kernel with the spec shapes the real entry points use."""

    @checked_arrays(
        idx=array_spec(ndim=1, kind="iu", non_negative=True, length_of="rows"),
        values=array_spec(ndim=1, kind="f", finite=True, length_of="rows"),
        warm=array_spec(ndim=1, kind="f", optional=True),
    )
    def kernel(idx, values, warm=None):
        return float(values[idx].sum())

    return kernel


IDX = np.array([0, 1, 0], dtype=np.int64)
VALUES = np.array([0.5, 0.25, 0.125], dtype=np.float64)


class TestEnabledChecks:
    @pytest.fixture(autouse=True)
    def _force_checks_on(self, monkeypatch):
        # decoration happens inside each test, so the flag takes effect
        # even when the suite itself runs under REPRO_CHECKS=0
        monkeypatch.setattr(contracts, "CHECKS_ENABLED", True)

    def test_valid_arguments_pass_through(self):
        assert make_kernel()(IDX, VALUES) == pytest.approx(1.25)

    def test_required_argument_must_not_be_none(self):
        with pytest.raises(ContractError, match="must not be None"):
            make_kernel()(None, VALUES)

    def test_optional_argument_may_be_none_or_checked(self):
        kernel = make_kernel()
        assert kernel(IDX, VALUES, warm=None) == pytest.approx(1.25)
        assert kernel(IDX, VALUES, warm=VALUES) == pytest.approx(1.25)
        with pytest.raises(ContractError, match="'warm'"):
            kernel(IDX, VALUES, warm=np.zeros((2, 2)))

    def test_ndim_violation(self):
        with pytest.raises(ContractError, match="must be 1-D"):
            make_kernel()(IDX.reshape(1, 3), VALUES)

    def test_dtype_kind_violation(self):
        with pytest.raises(ContractError, match="dtype kind"):
            make_kernel()(IDX.astype(np.float64), VALUES)

    def test_finite_violation(self):
        bad = VALUES.copy()
        bad[1] = np.nan
        with pytest.raises(ContractError, match="NaN or inf"):
            make_kernel()(IDX, bad)

    def test_non_negative_violation(self):
        with pytest.raises(ContractError, match="negative"):
            make_kernel()(np.array([0, -1, 0], dtype=np.int64), VALUES)

    def test_length_group_violation(self):
        with pytest.raises(ContractError, match="equal length"):
            make_kernel()(IDX, VALUES[:2])

    def test_return_contract(self):
        @checked_arrays(array_spec(ndim=1, finite=True))
        def bad_kernel(n):
            return np.full(n, np.inf)

        with pytest.raises(ContractError, match="<return>"):
            bad_kernel(3)

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(ValidationError, match="unknown parameters"):

            @checked_arrays(missing=array_spec(ndim=1))
            def kernel(x):
                return x

    def test_contract_error_is_a_validation_error(self):
        assert issubclass(ContractError, ValidationError)

    def test_wrapper_keeps_function_identity(self):
        kernel = make_kernel()
        assert kernel.__name__ == "kernel"


class TestDisabledChecks:
    def test_decorator_is_identity_when_disabled(self, monkeypatch):
        monkeypatch.setattr(contracts, "CHECKS_ENABLED", False)

        def kernel(idx, values):
            return len(values)

        decorated = checked_arrays(
            idx=array_spec(ndim=1, kind="i"), values=array_spec(ndim=1, kind="f")
        )(kernel)
        assert decorated is kernel

    def test_violations_pass_silently_when_disabled(self, monkeypatch):
        monkeypatch.setattr(contracts, "CHECKS_ENABLED", False)

        @checked_arrays(values=array_spec(ndim=1, kind="f", finite=True))
        def kernel(values):
            return values

        bad = np.array([np.nan, np.inf])
        assert kernel(bad) is bad

    def test_contracts_enabled_reflects_the_flag(self, monkeypatch):
        assert contracts_enabled() is contracts.CHECKS_ENABLED
        monkeypatch.setattr(contracts, "CHECKS_ENABLED", False)
        assert contracts_enabled() is False


class TestKernelIntegration:
    """The shipped entry points actually carry their contracts."""

    def test_columns_constructor_rejects_length_mismatch(self):
        from repro.community import CommunityColumns
        from repro.matrix import LabelIndex

        if not contracts.CHECKS_ENABLED:
            pytest.skip("contracts compiled out (REPRO_CHECKS=0)")
        with pytest.raises(ContractError, match="equal length"):
            CommunityColumns(
                users=LabelIndex(["u"]),
                categories=LabelIndex(["c"]),
                review_ids=("r",),
                review_writer_idx=np.array([0], dtype=np.int64),
                review_category_idx=np.array([0, 0], dtype=np.int64),
                rater_idx=np.empty(0, dtype=np.int64),
                rating_review_idx=np.empty(0, dtype=np.int64),
                rating_values=np.empty(0, dtype=np.float64),
            )

    def test_writer_matrix_rejects_nan_quality(self):
        from repro.reputation.writer import writer_reputation_matrix

        if not contracts.CHECKS_ENABLED:
            pytest.skip("contracts compiled out (REPRO_CHECKS=0)")
        with pytest.raises(ContractError, match="NaN or inf"):
            writer_reputation_matrix(
                np.array([0], dtype=np.int64),
                np.array([0], dtype=np.int64),
                1,
                1,
                np.array([0], dtype=np.int64),
                np.array([np.nan]),
            )
