"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigError,
    ConvergenceError,
    DatasetError,
    IntegrityError,
    ReproError,
    SchemaError,
    ValidationError,
)


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for exc_type in (
            ValidationError,
            SchemaError,
            IntegrityError,
            ConvergenceError,
            DatasetError,
            ConfigError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_validation_error_is_a_value_error(self):
        # so idiomatic `except ValueError` call sites still work
        assert issubclass(ValidationError, ValueError)

    def test_catching_base_class_catches_subclass(self):
        with pytest.raises(ReproError):
            raise SchemaError("boom")


class TestConvergenceError:
    def test_carries_diagnostics(self):
        err = ConvergenceError("no fixed point", iterations=50, residual=0.3, tolerance=1e-9)
        assert err.iterations == 50
        assert err.residual == 0.3
        assert err.tolerance == 1e-9
        assert "no fixed point" in str(err)

    def test_diagnostics_survive_raise(self):
        with pytest.raises(ConvergenceError) as excinfo:
            raise ConvergenceError("x", iterations=3, residual=1.0, tolerance=0.1)
        assert excinfo.value.iterations == 3
