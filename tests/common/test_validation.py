"""Tests for argument-validation helpers."""

import math

import pytest

from repro.common.errors import ValidationError
from repro.common.validation import (
    require,
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never shown")

    def test_raises_with_message(self):
        with pytest.raises(ValidationError, match="custom message"):
            require(False, "custom message")


class TestRequireType:
    def test_accepts_matching_type(self):
        require_type("x", 3, int)
        require_type("x", "s", str)
        require_type("x", 3.0, (int, float))

    def test_rejects_wrong_type_with_param_name(self):
        with pytest.raises(ValidationError, match="max_iter"):
            require_type("max_iter", "10", int)

    def test_rejects_bool_where_number_expected(self):
        with pytest.raises(ValidationError, match="bool"):
            require_type("count", True, int)


class TestRequirePositive:
    @pytest.mark.parametrize("value", [1, 0.001, 10**9])
    def test_accepts_positive(self, value):
        require_positive("v", value)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValidationError):
            require_positive("v", value)

    @pytest.mark.parametrize("value", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, value):
        with pytest.raises(ValidationError):
            require_positive("v", value)


class TestRequireNonNegative:
    def test_accepts_zero(self):
        require_non_negative("v", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            require_non_negative("v", -1e-9)


class TestRequireInRange:
    def test_inclusive_bounds_accepted(self):
        require_in_range("v", 0.0, 0.0, 1.0)
        require_in_range("v", 1.0, 0.0, 1.0)

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValidationError):
            require_in_range("v", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range_message_names_parameter(self):
        with pytest.raises(ValidationError, match="damping"):
            require_in_range("damping", 2.0, 0.0, 1.0)


class TestRequireFraction:
    @pytest.mark.parametrize("value", [0, 0.5, 1, 0.999999])
    def test_accepts_fractions(self, value):
        require_fraction("f", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1, math.nan])
    def test_rejects_out_of_unit_interval(self, value):
        with pytest.raises(ValidationError):
            require_fraction("f", value)
