"""Tests for Appleseed spreading activation."""

import networkx as nx
import pytest

from repro.common.errors import ValidationError
from repro.propagation import appleseed


def graph(edges):
    g = nx.DiGraph()
    for source, target, weight in edges:
        g.add_edge(source, target, trust=weight)
    return g


class TestAppleseed:
    def test_source_keeps_no_rank(self):
        g = graph([("a", "b", 1.0)])
        ranks = appleseed(g, "a")
        assert ranks["a"] == 0.0

    def test_direct_successor_gains_rank(self):
        g = graph([("a", "b", 1.0)])
        ranks = appleseed(g, "a")
        assert ranks["b"] > 0.0

    def test_energy_conservation_bound(self):
        g = graph([("a", "b", 1.0), ("b", "c", 1.0), ("c", "b", 0.5)])
        ranks = appleseed(g, "a", energy=100.0)
        assert sum(v for node, v in ranks.items() if node != "a") <= 100.0 + 1e-6

    def test_closer_nodes_rank_higher_on_chain(self):
        g = graph([("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0), ("d", "b", 1.0)])
        ranks = appleseed(g, "a")
        assert ranks["b"] > ranks["c"] > ranks["d"]

    def test_weights_split_energy(self):
        g = graph([("a", "strong", 1.0), ("a", "weak", 0.25)])
        ranks = appleseed(g, "a")
        assert ranks["strong"] == pytest.approx(4 * ranks["weak"])

    def test_unreachable_nodes_absent(self):
        g = graph([("a", "b", 1.0), ("c", "d", 1.0)])
        ranks = appleseed(g, "a")
        assert "c" not in ranks
        assert "d" not in ranks

    def test_cycle_converges(self):
        g = graph([("a", "b", 1.0), ("b", "a", 1.0)])
        ranks = appleseed(g, "a")
        assert ranks["b"] > 0.0

    def test_higher_spreading_factor_reaches_deeper(self):
        g = graph([("a", "b", 1.0), ("b", "c", 1.0), ("c", "d", 1.0), ("d", "a", 1.0)])
        shallow = appleseed(g, "a", spreading_factor=0.3)
        deep = appleseed(g, "a", spreading_factor=0.9)
        assert deep["d"] / deep["b"] > shallow["d"] / shallow["b"]

    def test_validation(self):
        g = graph([("a", "b", 1.0)])
        with pytest.raises(ValidationError):
            appleseed(g, "ghost")
        with pytest.raises(ValidationError):
            appleseed(g, "a", energy=0.0)
        with pytest.raises(ValidationError):
            appleseed(g, "a", spreading_factor=1.0)

    def test_deterministic(self):
        g = graph([("a", "b", 0.8), ("b", "c", 0.6), ("c", "a", 1.0)])
        assert appleseed(g, "a") == appleseed(g, "a")
