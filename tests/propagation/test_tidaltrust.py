"""Tests for TidalTrust."""

import networkx as nx
import pytest

from repro.common.errors import ValidationError
from repro.propagation import tidal_trust


def graph(edges):
    g = nx.DiGraph()
    for source, target, weight in edges:
        g.add_edge(source, target, trust=weight)
    return g


class TestBaseCases:
    def test_self_trust_is_one(self):
        g = graph([("a", "b", 0.5)])
        assert tidal_trust(g, "a", "a") == 1.0

    def test_direct_edge_returned(self):
        g = graph([("a", "b", 0.7)])
        assert tidal_trust(g, "a", "b") == pytest.approx(0.7)

    def test_no_path_returns_none(self):
        g = graph([("a", "b", 0.7), ("c", "d", 0.9)])
        assert tidal_trust(g, "a", "d") is None

    def test_reverse_direction_not_used(self):
        g = graph([("b", "a", 0.7)])
        assert tidal_trust(g, "a", "b") is None

    def test_unknown_nodes_rejected(self):
        g = graph([("a", "b", 0.7)])
        with pytest.raises(ValidationError):
            tidal_trust(g, "a", "ghost")


class TestTwoHopInference:
    def test_single_chain(self):
        # a -0.8-> b -0.6-> c : t(a,c) = (0.8 * 0.6) / 0.8 = 0.6
        g = graph([("a", "b", 0.8), ("b", "c", 0.6)])
        assert tidal_trust(g, "a", "c") == pytest.approx(0.6)

    def test_weighted_average_over_neighbours(self):
        # both b1 (0.8) and b2 (0.4) connect a to c; threshold is the max
        # path strength 0.8, so only b1 qualifies
        g = graph(
            [
                ("a", "b1", 0.8),
                ("a", "b2", 0.4),
                ("b1", "c", 0.5),
                ("b2", "c", 1.0),
            ]
        )
        assert tidal_trust(g, "a", "c") == pytest.approx(0.5)

    def test_equal_strength_paths_average(self):
        g = graph(
            [
                ("a", "b1", 0.8),
                ("a", "b2", 0.8),
                ("b1", "c", 0.6),
                ("b2", "c", 1.0),
            ]
        )
        # both qualify: (0.8*0.6 + 0.8*1.0) / 1.6 = 0.8
        assert tidal_trust(g, "a", "c") == pytest.approx(0.8)

    def test_only_shortest_paths_used(self):
        # direct 2-hop path exists; the 3-hop path through d must be ignored
        g = graph(
            [
                ("a", "b", 0.9),
                ("b", "c", 0.4),
                ("a", "d", 1.0),
                ("d", "e", 1.0),
                ("e", "c", 1.0),
            ]
        )
        assert tidal_trust(g, "a", "c") == pytest.approx(0.4)


class TestDeeperChains:
    def test_three_hops(self):
        g = graph([("a", "b", 1.0), ("b", "c", 0.8), ("c", "d", 0.5)])
        # back-propagation: t(c,d)=0.5 (direct), t(b,d)=0.5, t(a,d)=0.5
        assert tidal_trust(g, "a", "d") == pytest.approx(0.5)

    def test_trust_in_unit_interval(self):
        import itertools

        import numpy as np

        rng = np.random.default_rng(3)
        g = nx.DiGraph()
        nodes = [f"n{i}" for i in range(12)]
        for source, target in itertools.permutations(nodes, 2):
            if rng.random() < 0.2:
                g.add_edge(source, target, trust=float(rng.choice([0.2, 0.5, 0.8, 1.0])))
        checked = 0
        for source, target in itertools.permutations(nodes, 2):
            value = tidal_trust(g, source, target)
            if value is not None:
                assert 0.0 <= value <= 1.0
                checked += 1
        assert checked > 10
