"""Tests for Guha et al.'s atomic propagations."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.propagation import GuhaWeights, guha_propagation

USERS = ["a", "b", "c", "d"]


def trust(pairs):
    m = UserPairMatrix(USERS)
    for source, target in pairs:
        m.set(source, target, 1.0)
    return m


class TestAtomicPropagations:
    def test_direct_propagation_two_hops(self):
        # a->b->c: direct-only propagation with 2 steps reaches c
        result = guha_propagation(
            trust([("a", "b"), ("b", "c")]),
            weights=GuhaWeights(direct=1.0, co_citation=0, transpose=0, coupling=0),
            steps=2,
        )
        assert result.get("a", "c") > 0.0

    def test_one_step_does_not_reach_two_hops(self):
        result = guha_propagation(
            trust([("a", "b"), ("b", "c")]),
            weights=GuhaWeights(direct=1.0, co_citation=0, transpose=0, coupling=0),
            steps=1,
        )
        assert not result.contains("a", "c")

    def test_co_citation(self):
        # a trusts both b and c: (T^T T) links the co-cited trustees b and c
        # in both directions ("trusted by the same people")
        matrix = trust([("a", "b"), ("a", "c"), ("d", "c")])
        result = guha_propagation(
            matrix,
            weights=GuhaWeights(direct=0, co_citation=1.0, transpose=0, coupling=0),
            steps=1,
        )
        assert result.get("b", "c") > 0.0
        assert result.get("c", "b") > 0.0
        # d and a share no trustee with anyone... they do: both trust c, so
        # coupling (T T^T) would link d and a -- but co-citation must not
        assert not result.contains("d", "a")

    def test_coupling(self):
        # a and d both trust c: trust coupling (T T^T) links a and d
        matrix = trust([("a", "c"), ("d", "c")])
        result = guha_propagation(
            matrix,
            weights=GuhaWeights(direct=0, co_citation=0, transpose=0, coupling=1.0),
            steps=1,
        )
        assert result.get("a", "d") > 0.0
        assert result.get("d", "a") > 0.0

    def test_transpose(self):
        result = guha_propagation(
            trust([("a", "b")]),
            weights=GuhaWeights(direct=0, co_citation=0, transpose=1.0, coupling=0),
            steps=1,
        )
        assert result.get("b", "a") > 0.0

    def test_diagonal_removed(self):
        result = guha_propagation(trust([("a", "b"), ("b", "a")]), steps=2)
        assert not result.contains("a", "a")
        assert not result.contains("b", "b")

    def test_decay_reduces_later_steps(self):
        matrix = trust([("a", "b"), ("b", "c"), ("c", "d")])
        weights = GuhaWeights(direct=1.0, co_citation=0, transpose=0, coupling=0)
        shallow = guha_propagation(matrix, weights=weights, steps=3, decay=0.1)
        deep = guha_propagation(matrix, weights=weights, steps=3, decay=0.9)
        # 3-hop value (a -> d) relatively stronger with slower decay
        assert deep.get("a", "d") > shallow.get("a", "d")

    def test_top_k_limits_row_size(self):
        pairs = [("a", t) for t in ("b", "c", "d")]
        pairs += [("b", "c"), ("b", "d"), ("c", "d")]
        result = guha_propagation(trust(pairs), steps=3, top_k=2)
        for source in result.source_ids():
            assert result.row_size(source) <= 2

    def test_axis_preserved(self):
        result = guha_propagation(trust([("a", "b")]), steps=1)
        assert list(result.users) == USERS


class TestValidation:
    def test_weights_validation(self):
        with pytest.raises(ValidationError):
            GuhaWeights(direct=-0.1)
        with pytest.raises(ValidationError):
            GuhaWeights(direct=0, co_citation=0, transpose=0, coupling=0)

    def test_parameter_validation(self):
        matrix = trust([("a", "b")])
        with pytest.raises(ValidationError):
            guha_propagation(matrix, steps=0)
        with pytest.raises(ValidationError):
            guha_propagation(matrix, decay=0.0)
        with pytest.raises(ValidationError):
            guha_propagation(matrix, top_k=0)
