"""Tests for the vector-native PropagationScores result type."""

import networkx as nx
import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import LabelIndex
from repro.propagation import PropagationScores, appleseed, eigen_trust


@pytest.fixture
def full_scores():
    return PropagationScores(LabelIndex(["a", "b", "c"]), np.array([0.5, 0.2, 0.3]))


@pytest.fixture
def partial_scores():
    return PropagationScores(
        LabelIndex(["a", "b", "c"]),
        np.array([0.5, 0.9, 0.3]),
        present=np.array([True, False, True]),
    )


class TestMappingView:
    def test_behaves_as_a_dict(self, full_scores):
        assert len(full_scores) == 3
        assert list(full_scores) == ["a", "b", "c"]
        assert full_scores["b"] == 0.2
        assert full_scores.get("b") == 0.2
        assert dict(full_scores.items()) == {"a": 0.5, "b": 0.2, "c": 0.3}
        assert sum(full_scores.values()) == pytest.approx(1.0)

    def test_equals_plain_dict_both_ways(self, full_scores):
        as_dict = {"a": 0.5, "b": 0.2, "c": 0.3}
        assert full_scores == as_dict
        assert as_dict == full_scores
        assert full_scores != {"a": 0.5}

    def test_absent_nodes_are_hidden(self, partial_scores):
        assert len(partial_scores) == 2
        assert list(partial_scores) == ["a", "c"]
        assert "b" not in partial_scores
        assert partial_scores.get("b", -1.0) == -1.0
        with pytest.raises(KeyError):
            partial_scores["b"]
        assert partial_scores == {"a": 0.5, "c": 0.3}

    def test_unknown_label(self, full_scores):
        assert "zzz" not in full_scores
        assert 42 not in full_scores
        assert full_scores.to_dict() == {"a": 0.5, "b": 0.2, "c": 0.3}


class TestVectorView:
    def test_scores_array_covers_the_axis(self, full_scores):
        assert full_scores.scores_array().tolist() == [0.5, 0.2, 0.3]
        assert full_scores.present_mask().all()

    def test_absent_positions_read_zero(self, partial_scores):
        assert partial_scores.scores_array().tolist() == [0.5, 0.0, 0.3]
        assert partial_scores.present_mask().tolist() == [True, False, True]

    def test_array_is_a_copy(self, full_scores):
        full_scores.scores_array()[0] = 99.0
        assert full_scores["a"] == 0.5

    def test_shape_validation(self):
        users = LabelIndex(["a", "b"])
        with pytest.raises(ValidationError):
            PropagationScores(users, np.array([1.0]))
        with pytest.raises(ValidationError):
            PropagationScores(users, np.array([1.0, 2.0]), present=np.array([True]))


class TestAlgorithmsReturnScores:
    @pytest.fixture
    def web(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", trust=1.0)
        g.add_edge("b", "c", trust=0.5)
        g.add_edge("c", "a", trust=0.5)
        g.add_node("loner")
        return g

    def test_eigen_trust_vector_matches_mapping(self, web):
        scores = eigen_trust(web)
        assert isinstance(scores, PropagationScores)
        vector = scores.scores_array()
        for position, label in enumerate(scores.users.labels):
            assert vector[position] == scores[label]
        assert vector.sum() == pytest.approx(1.0)

    def test_appleseed_masks_unreached_nodes(self, web):
        ranks = appleseed(web, "a")
        assert isinstance(ranks, PropagationScores)
        assert "loner" not in ranks
        assert ranks.scores_array()[ranks.users.position("loner")] == 0.0
        assert ranks["b"] > 0.0

    def test_empty_graph_equals_empty_dict(self):
        assert eigen_trust(nx.DiGraph()) == {}
        assert len(eigen_trust(nx.DiGraph()).scores_array()) == 0
