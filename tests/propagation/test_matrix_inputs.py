"""The propagation models accept UserPairMatrix inputs (cached-CSR path).

Each algorithm must produce the same result whether it is handed a
networkx digraph (compatibility path) or the matrix directly.
"""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.propagation import appleseed, eigen_trust, tidal_trust
from repro.trust import to_digraph


@pytest.fixture
def web():
    rng = np.random.default_rng(5)
    users = [f"u{i}" for i in range(30)]
    matrix = UserPairMatrix(users)
    for _ in range(150):
        i, j = rng.integers(30, size=2)
        if i != j:
            matrix.set(users[int(i)], users[int(j)], float(rng.random()))
    return matrix


class TestEigenTrust:
    def test_matrix_equals_graph(self, web):
        from_matrix = eigen_trust(web)
        from_graph = eigen_trust(to_digraph(web))
        assert set(from_matrix) == set(from_graph)
        for node, score in from_graph.items():
            assert from_matrix[node] == pytest.approx(score, abs=1e-9)

    def test_pretrust_on_matrix_input(self, web):
        scores = eigen_trust(web, pretrust={"u0": 1.0})
        assert sum(scores.values()) == pytest.approx(1.0)
        with pytest.raises(ValidationError):
            eigen_trust(web, pretrust={"ghost": 1.0})

    def test_negative_weight_rejected(self):
        matrix = UserPairMatrix(["a", "b"])
        matrix.set("a", "b", -0.5)
        with pytest.raises(ValidationError):
            eigen_trust(matrix)

    def test_empty_matrix(self):
        assert eigen_trust(UserPairMatrix([])) == {}


class TestAppleseed:
    def test_matrix_equals_graph(self, web):
        source = "u0"
        from_matrix = appleseed(web, source)
        from_graph = appleseed(to_digraph(web), source)
        assert set(from_matrix) == set(from_graph)
        for node, rank in from_graph.items():
            assert from_matrix[node] == pytest.approx(rank, abs=1e-9)

    def test_unknown_source_rejected(self, web):
        with pytest.raises(ValidationError):
            appleseed(web, "ghost")

    def test_unreachable_nodes_absent_on_matrix_input(self):
        matrix = UserPairMatrix(["a", "b", "c", "d"])
        matrix.set("a", "b", 1.0)
        matrix.set("c", "d", 1.0)
        ranks = appleseed(matrix, "a")
        assert "c" not in ranks and "d" not in ranks
        assert ranks["a"] == 0.0


class TestTidalTrust:
    def test_matrix_equals_graph(self, web):
        graph = to_digraph(web)
        users = list(web.users)
        rng = np.random.default_rng(9)
        for _ in range(25):
            source, sink = (users[int(k)] for k in rng.integers(30, size=2))
            from_matrix = tidal_trust(web, source, sink)
            from_graph = tidal_trust(graph, source, sink)
            if from_graph is None:
                assert from_matrix is None
            else:
                assert from_matrix == pytest.approx(from_graph, abs=1e-9)

    def test_direct_edge_and_self_trust(self):
        matrix = UserPairMatrix(["a", "b"])
        matrix.set("a", "b", 0.4)
        assert tidal_trust(matrix, "a", "b") == pytest.approx(0.4)
        assert tidal_trust(matrix, "a", "a") == 1.0

    def test_no_path_returns_none(self):
        matrix = UserPairMatrix(["a", "b", "c"])
        matrix.set("a", "b", 1.0)
        assert tidal_trust(matrix, "b", "c") is None

    def test_unknown_nodes_rejected(self):
        matrix = UserPairMatrix(["a"])
        with pytest.raises(ValidationError):
            tidal_trust(matrix, "a", "ghost")
