"""Tests for EigenTrust."""

import networkx as nx
import pytest

from repro.common.errors import ValidationError
from repro.propagation import eigen_trust


def graph(edges):
    g = nx.DiGraph()
    for source, target, weight in edges:
        g.add_edge(source, target, trust=weight)
    return g


class TestEigenTrust:
    def test_scores_sum_to_one(self):
        g = graph([("a", "b", 1.0), ("b", "c", 1.0), ("c", "a", 1.0)])
        scores = eigen_trust(g)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_symmetric_cycle_is_uniform(self):
        g = graph([("a", "b", 1.0), ("b", "c", 1.0), ("c", "a", 1.0)])
        scores = eigen_trust(g)
        for value in scores.values():
            assert value == pytest.approx(1 / 3, abs=1e-6)

    def test_popular_node_scores_higher(self):
        g = graph(
            [
                ("a", "hub", 1.0),
                ("b", "hub", 1.0),
                ("c", "hub", 1.0),
                ("hub", "a", 1.0),
            ]
        )
        scores = eigen_trust(g)
        assert scores["hub"] == max(scores.values())

    def test_empty_graph(self):
        assert eigen_trust(nx.DiGraph()) == {}

    def test_isolated_nodes_handled(self):
        g = graph([("a", "b", 1.0)])
        g.add_node("loner")
        scores = eigen_trust(g)
        assert "loner" in scores
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_pretrust_biases_scores(self):
        g = graph([("a", "b", 1.0), ("b", "a", 1.0), ("a", "c", 1.0), ("c", "a", 1.0)])
        neutral = eigen_trust(g)
        biased = eigen_trust(g, pretrust={"b": 1.0}, alpha=0.5)
        assert biased["b"] > neutral["b"]

    def test_edge_weights_matter(self):
        g = graph([("a", "b", 1.0), ("a", "c", 0.1), ("b", "a", 1.0), ("c", "a", 1.0)])
        scores = eigen_trust(g)
        assert scores["b"] > scores["c"]

    def test_negative_weight_rejected(self):
        g = graph([("a", "b", -0.5)])
        with pytest.raises(ValidationError):
            eigen_trust(g)

    def test_pretrust_validation(self):
        g = graph([("a", "b", 1.0)])
        with pytest.raises(ValidationError, match="unknown node"):
            eigen_trust(g, pretrust={"ghost": 1.0})
        with pytest.raises(ValidationError, match="non-negative"):
            eigen_trust(g, pretrust={"a": -1.0})
        with pytest.raises(ValidationError, match="positive total"):
            eigen_trust(g, pretrust={"a": 0.0})

    def test_deterministic(self):
        g = graph([("a", "b", 0.8), ("b", "c", 0.4), ("c", "a", 1.0)])
        assert eigen_trust(g) == eigen_trust(g)
