"""Tests for out-of-core EigenTrust over a ``ShardedPairMatrix``."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.matrix.labels import LabelIndex
from repro.propagation import eigen_trust
from repro.shard.matrix import ENTRY_BYTES, ShardedPairMatrix


def matching_webs(num_users=24, seed=2, density=0.3, num_shards=3, spill_bytes=None):
    """A matching (UserPairMatrix, ShardedPairMatrix) trust web pair."""
    users = LabelIndex([f"u{i}" for i in range(num_users)])
    rng = np.random.default_rng(seed)
    dense = rng.random((num_users, num_users)) * (
        rng.random((num_users, num_users)) < density
    )
    np.fill_diagonal(dense, 0.0)
    rows, cols = np.nonzero(dense)
    flat = UserPairMatrix.from_arrays(users, rows, cols, dense[rows, cols])
    sharded = ShardedPairMatrix.from_arrays(
        users,
        rows,
        cols,
        dense[rows, cols],
        num_shards=num_shards,
        spill_bytes=spill_bytes,
    )
    return flat, sharded


def assert_scores_identical(reference, streamed):
    np.testing.assert_array_equal(
        streamed.scores_array(), reference.scores_array()
    )
    assert streamed.iterations == reference.iterations
    assert streamed.converged == reference.converged


class TestParity:
    @pytest.mark.parametrize("num_shards", [1, 3, 5])
    def test_bitwise_equal_to_dense(self, num_shards):
        flat, sharded = matching_webs(num_shards=num_shards)
        assert_scores_identical(eigen_trust(flat), eigen_trust(sharded))

    def test_spilled_store_path_identical(self):
        flat, sharded = matching_webs(spill_bytes=ENTRY_BYTES)
        assert sharded.store is not None
        assert_scores_identical(eigen_trust(flat), eigen_trust(sharded))

    def test_dangling_users_identical(self):
        """Users with no outgoing edges exercise the dangling-mass term."""
        users = LabelIndex(["a", "b", "c", "d"])
        flat = UserPairMatrix(users)
        flat.set("a", "b", 1.0)
        flat.set("b", "c", 0.5)  # c and d dangle
        sharded = ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=2
        )
        reference = eigen_trust(flat)
        assert_scores_identical(reference, eigen_trust(sharded))
        assert reference.converged

    def test_empty_shards_identical(self):
        """Shards with no entries at all are skipped, not mis-summed."""
        users = LabelIndex([f"u{i}" for i in range(9)])
        flat = UserPairMatrix(users)
        flat.set("u0", "u8", 1.0)
        flat.set("u8", "u0", 1.0)  # middle shard is empty at 3 shards
        sharded = ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=3
        )
        assert_scores_identical(eigen_trust(flat), eigen_trust(sharded))

    def test_warm_start_and_pretrust_identical(self):
        flat, sharded = matching_webs()
        pretrust = {"u0": 0.5, "u3": 0.5}
        initial = {"u1": 1.0}
        assert_scores_identical(
            eigen_trust(flat, pretrust=pretrust, initial=initial),
            eigen_trust(sharded, pretrust=pretrust, initial=initial),
        )


class TestValidation:
    def test_negative_weights_rejected(self):
        users = LabelIndex(["a", "b", "c", "d"])
        sharded = ShardedPairMatrix(users, num_shards=2)
        sharded.set("c", "d", -0.5)  # negative entry in the second shard
        with pytest.raises(ValidationError, match="non-negative"):
            eigen_trust(sharded)

    def test_empty_matrix_scores_all_users(self):
        users = LabelIndex(["a", "b"])
        scores = eigen_trust(ShardedPairMatrix(users, num_shards=2))
        assert scores.scores_array().shape == (2,)
        assert float(scores.scores_array().sum()) == pytest.approx(1.0)
