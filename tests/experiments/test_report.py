"""Tests for the markdown report builder."""

import pytest

from repro.experiments import build_report, run_pipeline


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self, artifacts):
        return build_report(artifacts, include_extensions=False)

    def test_contains_all_paper_sections(self, report):
        for heading in (
            "## Dataset",
            "Table 2",
            "Table 3",
            "Fig. 3",
            "Table 4",
            "Score gap",
        ):
            assert heading in report

    def test_extensions_toggle(self, report, artifacts):
        assert "Ablations" not in report
        # extensions add the remaining sections (slow; smoke-check on the
        # toggle only via section list of the fast variant)

    def test_markdown_structure(self, report):
        assert report.startswith("# Reproduction report")
        assert report.count("```text") == report.count("```") / 2

    def test_external_community_skips_designation_tables(self, two_category_community):
        artifacts = run_pipeline(community=two_category_community)
        report = build_report(artifacts, include_extensions=False)
        assert "Table 2" not in report
        assert "Table 4" in report

    def test_custom_title(self, artifacts):
        report = build_report(artifacts, title="My Run", include_extensions=False)
        assert report.startswith("# My Run")


class TestReportCli:
    def test_report_command(self, tmp_path, capsys):
        from repro.cli import main

        out_file = str(tmp_path / "report.md")
        assert main(["report", "--users", "120", "--seed", "3", "--out", out_file]) == 0
        with open(out_file) as f:
            content = f.read()
        assert "Table 4" in content
