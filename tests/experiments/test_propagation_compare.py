"""Tests for the §V propagation comparison."""

import pytest

from repro.experiments import (
    render_propagation_comparison,
    run_propagation_comparison,
)


@pytest.fixture(scope="module")
def comparison(artifacts):
    return run_propagation_comparison(artifacts, top_k=15, num_sources=6)


class TestPropagationComparison:
    def test_correlations_in_range(self, comparison):
        assert -1.0 <= comparison.eigentrust_rank_correlation <= 1.0
        assert -1.0 <= comparison.appleseed_mean_rank_correlation <= 1.0

    def test_overlaps_are_fractions(self, comparison):
        assert 0.0 <= comparison.eigentrust_top_k_overlap <= 1.0
        assert 0.0 <= comparison.appleseed_mean_top_k_overlap <= 1.0

    def test_derived_web_agrees_with_explicit(self, comparison):
        """The future-work claim: the derived web is a usable propagation
        substrate, so global rankings must agree far better than chance."""
        assert comparison.eigentrust_rank_correlation > 0.2
        assert comparison.eigentrust_top_k_overlap > 0.2

    def test_appleseed_sources_ran(self, comparison):
        assert comparison.appleseed_sources > 0

    def test_render(self, comparison):
        text = render_propagation_comparison(comparison)
        assert "EigenTrust" in text
        assert "Appleseed" in text
