"""Tests for the per-table experiment runners (shape assertions).

These tests assert the *qualitative shape* the reproduction must preserve
(DESIGN.md §4), not absolute numbers: advisor concentration in Q1, density
orderings, the model-vs-baseline trade-off of Table 4.
"""

import pytest

from repro.common.errors import ConfigError
from repro.experiments import (
    render_fig3,
    render_score_gap,
    render_table2,
    render_table3,
    render_table4,
    run_fig3,
    run_pipeline,
    run_score_gap,
    run_table2,
    run_table3,
    run_table4,
)


class TestTable2:
    def test_advisors_concentrate_in_q1(self, artifacts):
        report = run_table2(artifacts)
        assert report.total_experts > 0
        assert report.overall_q1_fraction > 0.5
        q1, q2, q3, q4 = report.overall_quartiles
        assert q1 > q4  # heavily skewed toward the top

    def test_every_category_has_a_row(self, artifacts):
        report = run_table2(artifacts)
        # advisors explore, so they rate in (almost) every sub-category
        assert len(report.rows) >= 10

    def test_min_activity_reduces_eligible(self, artifacts):
        paper_rule = run_table2(artifacts)
        strict = run_table2(artifacts, min_activity=5)
        assert strict.total_experts < paper_rule.total_experts

    def test_explicit_advisors_override(self, artifacts):
        report = run_table2(artifacts, advisors=list(artifacts.dataset.advisors[:3]))
        per_category_max = max(row.num_experts for row in report.rows)
        assert per_category_max <= 3

    def test_external_community_requires_advisors(self, two_category_community):
        external = run_pipeline(community=two_category_community)
        with pytest.raises(ConfigError):
            run_table2(external)

    def test_render(self, artifacts):
        text = render_table2(run_table2(artifacts))
        assert "Table 2" in text
        assert "Overall" in text
        assert "Q1(Top)" in text


class TestTable3:
    def test_top_reviewers_concentrate_in_q1(self, artifacts):
        report = run_table3(artifacts)
        assert report.total_experts > 0
        assert report.overall_q1_fraction > 0.4
        q1, _, _, q4 = report.overall_quartiles
        assert q1 > q4

    def test_raters_cleaner_than_writers(self, artifacts):
        """The paper's Table 2 (98.4%) beats its Table 3 (89.4%)."""
        raters = run_table2(artifacts)
        writers = run_table3(artifacts)
        assert raters.overall_q1_fraction >= writers.overall_q1_fraction

    def test_external_community_requires_reviewers(self, two_category_community):
        external = run_pipeline(community=two_category_community)
        with pytest.raises(ConfigError):
            run_table3(external)

    def test_render(self, artifacts):
        text = render_table3(run_table3(artifacts))
        assert "Table 3" in text
        assert "TopReviewers" in text


class TestFig3:
    def test_density_ordering(self, artifacts):
        """T-hat must be much denser than R, which is denser than T∩R."""
        report = run_fig3(artifacts)
        assert report.derived_density > report.connection_density > 0
        assert report.connection_entries > report.trust_in_connections
        assert report.densification_vs_trust > 2.0

    def test_overlap_regions_partition_trust(self, artifacts):
        report = run_fig3(artifacts)
        assert (
            report.trust_in_connections + report.trust_outside_connections
            == report.trust_entries
        )

    def test_trust_outside_connections_nonempty(self, artifacts):
        # the word-of-mouth region (T - R) the paper highlights
        report = run_fig3(artifacts)
        assert report.trust_outside_connections > 0

    def test_render(self, artifacts):
        text = render_fig3(run_fig3(artifacts))
        assert "Fig. 3" in text
        assert "denser than" in text


class TestTable4:
    def test_paper_orderings_hold(self, artifacts):
        result = run_table4(artifacts)
        assert result.orderings_hold, (
            f"model {result.model} vs baseline {result.baseline}"
        )

    def test_model_recall_beats_baseline(self, artifacts):
        result = run_table4(artifacts)
        assert result.model.recall > result.baseline.recall + 0.1

    def test_baseline_recall_equals_precision(self, artifacts):
        """Structural property of binarising on R's support at k_i."""
        result = run_table4(artifacts)
        assert result.baseline.recall == pytest.approx(
            result.baseline.precision_in_r, abs=0.03
        )

    def test_model_trades_precision_for_recall(self, artifacts):
        result = run_table4(artifacts)
        assert result.model.precision_in_r < result.baseline.precision_in_r
        assert (
            result.model.nontrust_as_trust_rate
            > result.baseline.nontrust_as_trust_rate
        )

    def test_counts_consistent(self, artifacts):
        result = run_table4(artifacts)
        for metrics in (result.model, result.baseline):
            assert (
                metrics.true_positives + metrics.false_positives_in_r
                == metrics.predicted_in_r
            )
            assert metrics.true_positives <= metrics.trust_in_r

    def test_render(self, artifacts):
        text = render_table4(run_table4(artifacts))
        assert "Table 4" in text
        assert "T-hat (our model)" in text
        assert "B (baseline)" in text


class TestScoreGap:
    def test_both_regions_populated(self, artifacts):
        report = run_score_gap(artifacts)
        assert report.trusted_count > 0
        assert report.untrusted_count > 0

    def test_means_are_close(self, artifacts):
        """Honest reproduction: predicted R-T scores look like predicted
        R∩T scores (the paper's future-trust reading), so the two means
        must be within 10% of each other."""
        report = run_score_gap(artifacts)
        assert report.untrusted_mean == pytest.approx(report.trusted_mean, rel=0.10)

    def test_render(self, artifacts):
        text = render_score_gap(run_score_gap(artifacts))
        assert "mean gap" in text
