"""Tests for the reputation-model comparison experiment."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments import run_pipeline
from repro.experiments.reputation_baselines import (
    render_reputation_baselines,
    run_reputation_baselines,
)


@pytest.fixture(scope="module")
def comparison(artifacts):
    return run_reputation_baselines(artifacts)


class TestReputationBaselines:
    def test_three_models_each(self, comparison):
        assert set(comparison.rater_q1) == {
            "riggs (paper)",
            "mean received",
            "activity volume",
        }
        assert set(comparison.writer_q1) == set(comparison.rater_q1)

    def test_riggs_beats_baselines(self, comparison):
        """The paper's model must outrank both simpler alternatives."""
        riggs = comparison.rater_q1["riggs (paper)"]
        assert riggs > comparison.rater_q1["mean received"]
        assert riggs > comparison.rater_q1["activity volume"]
        riggs_w = comparison.writer_q1["riggs (paper)"]
        assert riggs_w > comparison.writer_q1["mean received"]
        assert riggs_w > comparison.writer_q1["activity volume"]

    def test_fractions(self, comparison):
        for value in list(comparison.rater_q1.values()) + list(
            comparison.writer_q1.values()
        ):
            assert 0.0 <= value <= 1.0

    def test_requires_synthetic_dataset(self, two_category_community):
        external = run_pipeline(community=two_category_community)
        with pytest.raises(ConfigError):
            run_reputation_baselines(external)

    def test_render(self, comparison):
        text = render_reputation_baselines(comparison)
        assert "Reputation-model comparison" in text
        assert "riggs (paper)" in text
