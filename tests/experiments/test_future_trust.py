"""Tests for the future-trust experiment."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments import (
    render_future_trust,
    run_future_trust,
    run_pipeline,
)


@pytest.fixture(scope="module")
def result(artifacts):
    return run_future_trust(artifacts, seed=1)


class TestFutureTrust:
    def test_edge_partition(self, result, artifacts):
        nontrust = len(
            artifacts.connections.subtract_support(artifacts.ground_truth)
        )
        assert result.predicted_edges + result.unpredicted_edges == nontrust

    def test_conversions_bounded(self, result):
        assert 0 <= result.predicted_converted <= result.predicted_edges
        assert 0 <= result.unpredicted_converted <= result.unpredicted_edges

    def test_predicted_edges_convert_more(self, result):
        """The paper's future-trust claim, tested causally."""
        assert result.lift > 1.0

    def test_rates_are_fractions(self, result):
        assert 0.0 <= result.predicted_rate <= 1.0
        assert 0.0 <= result.unpredicted_rate <= 1.0

    def test_requires_synthetic_dataset(self, two_category_community):
        external = run_pipeline(community=two_category_community)
        with pytest.raises(ConfigError):
            run_future_trust(external)

    def test_render(self, result):
        text = render_future_trust(result)
        assert "Future-trust check" in text
        assert "lift" in text

    def test_lift_edge_cases(self):
        from repro.experiments.future_trust import FutureTrustResult

        no_base = FutureTrustResult(
            predicted_edges=10, unpredicted_edges=10,
            predicted_converted=5, unpredicted_converted=0,
        )
        assert no_base.lift == float("inf")
        nothing = FutureTrustResult(
            predicted_edges=0, unpredicted_edges=0,
            predicted_converted=0, unpredicted_converted=0,
        )
        assert nothing.lift == 0.0
