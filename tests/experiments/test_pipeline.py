"""Tests for the shared pipeline."""

import pytest

from repro.affinity import AffinityConfig
from repro.experiments import run_pipeline
from repro.reputation import RiggsConfig
from repro.trust import TrustDeriver


class TestPipelineArtifacts:
    def test_axes_consistent(self, artifacts):
        users = artifacts.derived.users
        assert artifacts.connections.users == users
        assert artifacts.baseline.users == users
        assert artifacts.ground_truth.users == users
        assert artifacts.expertise.users == users
        assert artifacts.affiliation.users == users

    def test_baseline_support_is_connection_support(self, artifacts):
        assert artifacts.baseline.support() == artifacts.connections.support()

    def test_generousness_in_unit_interval(self, artifacts):
        for k in artifacts.generousness_by_user.values():
            assert 0.0 <= k <= 1.0

    def test_binary_matrices_are_binary(self, artifacts):
        for matrix in (artifacts.derived_binary, artifacts.baseline_binary):
            values = {v for _, _, v in matrix.entries()}
            assert values <= {1.0}

    def test_derived_has_only_positive_entries(self, artifacts):
        assert all(v > 0 for _, _, v in artifacts.derived.entries())

    def test_derived_much_denser_than_connections(self, artifacts):
        assert artifacts.derived.num_entries() > 3 * artifacts.connections.num_entries()

    def test_dataset_attached(self, artifacts, small_dataset):
        assert artifacts.dataset is small_dataset

    def test_category_names(self, artifacts):
        names = artifacts.category_names()
        assert names["c000000"] == "Action/Adventure"


class TestPipelineConfigs:
    def test_explicit_community_source(self, two_category_community):
        artifacts = run_pipeline(community=two_category_community)
        assert artifacts.dataset is None
        assert artifacts.community is two_category_community

    def test_config_overrides_change_result(self, small_dataset):
        default = run_pipeline(dataset=small_dataset)
        unweighted = run_pipeline(
            dataset=small_dataset,
            riggs_config=RiggsConfig(weight_by_rater_reputation=False),
        )
        assert default.expertise.to_array().sum() != pytest.approx(
            unweighted.expertise.to_array().sum()
        )

    def test_affinity_config_respected(self, small_dataset):
        writing_only = run_pipeline(
            dataset=small_dataset, affinity_config=AffinityConfig(mode="writing_only")
        )
        # pure raters have zero affiliation rows under writing_only
        raters_only = [
            u
            for u in writing_only.community.user_ids()
            if writing_only.community.reviews_by_writer(u) == []
            and writing_only.community.ratings_by_rater(u) != []
        ]
        assert raters_only, "fixture should contain pure raters"
        for user in raters_only[:10]:
            assert writing_only.affiliation.user_row(user).sum() == 0.0

    def test_deriver_threshold_respected(self, small_dataset):
        thresholded = run_pipeline(
            dataset=small_dataset, deriver=TrustDeriver(min_value=0.2)
        )
        assert all(v > 0.2 for _, _, v in thresholded.derived.entries())
