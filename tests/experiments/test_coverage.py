"""Tests for the path-coverage experiment."""

import pytest

from repro.experiments import render_coverage, run_coverage


@pytest.fixture(scope="module")
def coverage(artifacts):
    return run_coverage(artifacts, samples=80, seed=0)


class TestCoverage:
    def test_both_webs_analysed(self, coverage):
        assert set(coverage) == {"explicit", "derived"}

    def test_derived_web_covers_more_pairs(self, coverage):
        """The framework's point: the derived web supports vastly more
        path-based trust queries than the sparse explicit web."""
        assert (
            coverage["derived"].reachable_pair_fraction
            > coverage["explicit"].reachable_pair_fraction
        )

    def test_more_users_can_start_queries(self, coverage):
        assert coverage["derived"].sources_fraction >= coverage["explicit"].sources_fraction

    def test_fractions_are_fractions(self, coverage):
        for analysis in coverage.values():
            assert 0.0 <= analysis.sources_fraction <= 1.0
            assert 0.0 <= analysis.reachable_pair_fraction <= 1.0 + 1e-9
            assert 0.0 <= analysis.largest_scc_fraction <= 1.0

    def test_render(self, coverage):
        text = render_coverage(coverage)
        assert "Path coverage" in text
        assert "explicit web T" in text
        assert "more source-sink" in text


class TestCoverageCli:
    def test_cli_command(self, capsys):
        from repro.cli import main

        assert main(["coverage", "--users", "150", "--seed", "3"]) == 0
        assert "Path coverage" in capsys.readouterr().out
