"""Shared experiment fixtures: one small pipeline run per test session."""

import pytest

from repro.datasets import CommunityProfile, generate_community
from repro.experiments import run_pipeline

#: Small but structurally faithful profile: all 12 sub-categories, smaller
#: population so the full suite stays fast.
SMALL_PROFILE = CommunityProfile(num_users=250, num_advisors=12, num_top_reviewers=16)


@pytest.fixture(scope="session")
def small_dataset():
    return generate_community(SMALL_PROFILE, seed=7)


@pytest.fixture(scope="session")
def artifacts(small_dataset):
    return run_pipeline(dataset=small_dataset)
