"""Tests for the sensitivity sweeps."""

import pytest

from repro.common.errors import ConfigError
from repro.datasets import CommunityProfile
from repro.experiments.sensitivity import (
    render_sensitivity,
    run_sensitivity,
)

SMALL = CommunityProfile(num_users=150, num_advisors=8, num_top_reviewers=10)


@pytest.fixture(scope="module")
def noise_sweep():
    return run_sensitivity(
        "rating_noise", [0.1, 0.4], base_profile=SMALL, seed=3
    )


class TestRunSensitivity:
    def test_one_point_per_value(self, noise_sweep):
        assert [p.value for p in noise_sweep] == [0.1, 0.4]
        assert all(p.parameter == "rating_noise" for p in noise_sweep)

    def test_recall_advantage_positive_across_sweep(self, noise_sweep):
        """The headline conclusion must not hinge on the noise setting."""
        for point in noise_sweep:
            assert point.recall_advantage > 0

    def test_parameter_actually_varies_outcome(self, noise_sweep):
        a, b = noise_sweep
        assert a.result.model.recall != b.result.model.recall

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError, match="not sweepable"):
            run_sensitivity("ghost_knob", [1, 2], base_profile=SMALL)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            run_sensitivity("rating_noise", [], base_profile=SMALL)

    def test_population_sweep(self):
        points = run_sensitivity("num_users", [100, 180], base_profile=SMALL, seed=3)
        assert points[0].result.model.trust_in_r < points[1].result.model.trust_in_r


class TestRenderSensitivity:
    def test_render(self, noise_sweep):
        text = render_sensitivity(noise_sweep)
        assert "Sensitivity of Table 4 to rating_noise" in text
        assert "advantage" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_sensitivity([])
