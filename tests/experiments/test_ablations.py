"""Tests for the ablation experiments."""

import pytest

from repro.experiments.ablations import render_ablations, run_ablations


@pytest.fixture(scope="module")
def results(small_dataset):
    return run_ablations(small_dataset)


class TestAblations:
    def test_all_configurations_present(self, results):
        names = [result.name for result in results]
        assert names[0] == "default (paper)"
        assert any("A1" in name for name in names)
        assert any("A2" in name for name in names)
        assert sum("A3" in name for name in names) == 2
        assert any("A4" in name for name in names)

    def test_metrics_in_unit_interval(self, results):
        for result in results:
            assert 0.0 <= result.metrics.recall <= 1.0
            assert 0.0 <= result.metrics.precision_in_r <= 1.0
            assert 0.0 <= result.metrics.nontrust_as_trust_rate <= 1.0
            assert 0.0 <= result.auc <= 1.0

    def test_ablations_actually_change_something(self, results):
        default = results[0]
        changed = [
            r for r in results[1:] if r.metrics.recall != default.metrics.recall
        ]
        assert len(changed) >= 2

    def test_default_recall_reasonable(self, results):
        assert results[0].metrics.recall > 0.5

    def test_render(self, results):
        text = render_ablations(results)
        assert "Ablations" in text
        assert "default (paper)" in text
