"""Tests for the Table-4 metrics."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.metrics import validate_trust

USERS = ["a", "b", "c", "d", "e"]


def matrix(pairs):
    m = UserPairMatrix(USERS)
    for source, target in pairs:
        m.set(source, target, 1.0)
    return m


@pytest.fixture
def relations():
    """R = 4 pairs; T = 3 pairs, 2 inside R; predictions vary per test."""
    R = matrix([("a", "b"), ("a", "c"), ("b", "c"), ("b", "d")])
    T = matrix([("a", "b"), ("b", "c"), ("c", "d")])  # (c,d) outside R
    return R, T


class TestValidateTrust:
    def test_perfect_predictor(self, relations):
        R, T = relations
        predicted = matrix([("a", "b"), ("b", "c")])
        m = validate_trust(predicted, R, T)
        assert m.recall == 1.0
        assert m.precision_in_r == 1.0
        assert m.nontrust_as_trust_rate == 0.0
        assert m.trust_in_r == 2
        assert m.nontrust_in_r == 2

    def test_all_predicted(self, relations):
        R, T = relations
        predicted = matrix(R.support())
        m = validate_trust(predicted, R, T)
        assert m.recall == 1.0
        assert m.precision_in_r == pytest.approx(0.5)
        assert m.nontrust_as_trust_rate == 1.0

    def test_nothing_predicted(self, relations):
        R, T = relations
        m = validate_trust(matrix([]), R, T)
        assert m.recall == 0.0
        assert m.precision_in_r == 0.0  # empty denominator -> 0
        assert m.nontrust_as_trust_rate == 0.0

    def test_partial_predictor(self, relations):
        R, T = relations
        predicted = matrix([("a", "b"), ("a", "c")])  # one TP, one FP
        m = validate_trust(predicted, R, T)
        assert m.recall == pytest.approx(0.5)
        assert m.precision_in_r == pytest.approx(0.5)
        assert m.nontrust_as_trust_rate == pytest.approx(0.5)
        assert m.true_positives == 1
        assert m.false_positives_in_r == 1

    def test_predictions_outside_r_ignored(self, relations):
        R, T = relations
        predicted = matrix([("a", "b"), ("c", "d"), ("d", "e")])  # only (a,b) in R
        m = validate_trust(predicted, R, T)
        assert m.predicted_in_r == 1
        assert m.recall == pytest.approx(0.5)
        assert m.precision_in_r == 1.0

    def test_trust_outside_r_not_in_recall_denominator(self, relations):
        R, T = relations
        # (c, d) is trusted but not in R: recall denominator must be 2, not 3
        predicted = matrix([("a", "b"), ("b", "c")])
        assert validate_trust(predicted, R, T).recall == 1.0

    def test_axis_mismatch(self, relations):
        R, T = relations
        with pytest.raises(ValidationError):
            validate_trust(UserPairMatrix(["a", "b"]), R, T)
