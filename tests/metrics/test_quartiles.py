"""Tests for the Table-2/3 quartile methodology."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserCategoryMatrix
from repro.metrics import quartile_distribution


def reputation_matrix(num_users=8):
    """Users u0..u7 with reputation descending in user index for c0."""
    users = [f"u{i}" for i in range(num_users)]
    values = np.zeros((num_users, 2))
    values[:, 0] = np.linspace(1.0, 0.1, num_users)
    values[:, 1] = np.linspace(0.1, 1.0, num_users)
    return UserCategoryMatrix(users, ["c0", "c1"], values)


class TestQuartileDistribution:
    def test_top_user_lands_in_q1(self):
        report = quartile_distribution(
            reputation_matrix(), ["u0"], {"c0": [f"u{i}" for i in range(8)]}
        )
        assert len(report.rows) == 1
        assert report.rows[0].quartile_counts == (1, 0, 0, 0)

    def test_bottom_user_lands_in_q4(self):
        report = quartile_distribution(
            reputation_matrix(), ["u7"], {"c0": [f"u{i}" for i in range(8)]}
        )
        assert report.rows[0].quartile_counts == (0, 0, 0, 1)

    def test_quartiles_by_position(self):
        # 8 users: positions 0-1 Q1, 2-3 Q2, 4-5 Q3, 6-7 Q4
        report = quartile_distribution(
            reputation_matrix(),
            [f"u{i}" for i in range(8)],
            {"c0": [f"u{i}" for i in range(8)]},
        )
        assert report.rows[0].quartile_counts == (2, 2, 2, 2)

    def test_expert_absent_from_category_excluded(self):
        report = quartile_distribution(
            reputation_matrix(), ["u0", "ghost-user"], {"c0": [f"u{i}" for i in range(8)]}
        )
        assert report.rows[0].num_experts == 1

    def test_category_without_experts_skipped(self):
        report = quartile_distribution(
            reputation_matrix(),
            ["u0"],
            {"c0": [f"u{i}" for i in range(8)], "c1": ["u5", "u6"]},
        )
        assert [row.category_id for row in report.rows] == ["c0"]

    def test_ranking_differs_per_category(self):
        # in c1 reputations are reversed: u7 is the top user
        report = quartile_distribution(
            reputation_matrix(), ["u7"], {"c1": [f"u{i}" for i in range(8)]}
        )
        assert report.rows[0].quartile_counts == (1, 0, 0, 0)

    def test_overall_aggregation(self):
        report = quartile_distribution(
            reputation_matrix(),
            ["u0", "u7"],
            {"c0": [f"u{i}" for i in range(8)], "c1": [f"u{i}" for i in range(8)]},
        )
        assert report.total_experts == 4
        assert report.overall_quartiles == (2, 0, 0, 2)
        assert report.overall_q1_fraction == pytest.approx(0.5)

    def test_min_activity_filter(self):
        counts = {"c0": {"u0": 1, "u1": 10}}
        report = quartile_distribution(
            reputation_matrix(),
            ["u0", "u1"],
            {"c0": [f"u{i}" for i in range(8)]},
            min_activity_users=counts,
            min_activity=5,
        )
        assert report.rows[0].num_experts == 1  # u0 filtered out

    def test_min_activity_validation(self):
        with pytest.raises(ValidationError):
            quartile_distribution(reputation_matrix(), [], {}, min_activity=0)

    def test_category_names_applied(self):
        report = quartile_distribution(
            reputation_matrix(),
            ["u0"],
            {"c0": [f"u{i}" for i in range(8)]},
            category_names={"c0": "Dramas"},
        )
        assert report.rows[0].category_name == "Dramas"

    def test_duplicate_experts_counted_once(self):
        report = quartile_distribution(
            reputation_matrix(), ["u0", "u0"], {"c0": [f"u{i}" for i in range(8)]}
        )
        assert report.rows[0].num_experts == 1

    def test_small_population_quartiles(self):
        # 2 active users: top -> Q1, bottom -> Q3 (position 1 of 2 -> 4*1//2 = 2)
        report = quartile_distribution(
            reputation_matrix(), ["u0", "u1"], {"c0": ["u0", "u1"]}
        )
        assert report.rows[0].quartile_counts == (1, 0, 1, 0)

    def test_q1_fraction_empty_report(self):
        report = quartile_distribution(reputation_matrix(), [], {"c0": ["u0"]})
        assert report.overall_q1_fraction == 0.0
        assert report.rows == ()
