"""Tests for the aligned-vector agreement metrics."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.metrics import spearman_rank_correlation, top_k_overlap


class TestSpearman:
    def test_identical_order_is_one(self):
        a = np.array([0.1, 0.4, 0.2, 0.9])
        assert spearman_rank_correlation(a, a * 3.0 + 1.0) == pytest.approx(1.0)

    def test_reversed_order_is_minus_one(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_side_is_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert spearman_rank_correlation(a, np.zeros(3)) == 0.0
        assert spearman_rank_correlation(np.full(3, 7.0), a) == 0.0

    def test_too_short_is_zero(self):
        assert spearman_rank_correlation(np.array([1.0]), np.array([2.0])) == 0.0

    def test_ties_get_average_ranks(self):
        # scipy.stats.spearmanr([1, 2, 2, 3], [1, 2, 3, 4]) = 0.9486832...
        a = np.array([1.0, 2.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rank_correlation(a, b) == pytest.approx(0.9486832980505138)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            spearman_rank_correlation(np.zeros(3), np.zeros(4))


class TestTopKOverlap:
    def test_identical_vectors_overlap_fully(self):
        a = np.array([0.9, 0.1, 0.5, 0.7])
        assert top_k_overlap(a, a.copy(), 2) == 1.0

    def test_disjoint_tops(self):
        a = np.array([1.0, 0.9, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.9, 1.0])
        assert top_k_overlap(a, b, 2) == 0.0

    def test_partial_overlap(self):
        a = np.array([1.0, 0.9, 0.8, 0.0])
        b = np.array([1.0, 0.0, 0.8, 0.9])
        assert top_k_overlap(a, b, 3) == pytest.approx(2 / 3)

    def test_k_larger_than_vector(self):
        a = np.array([0.2, 0.1])
        b = np.array([0.1, 0.2])
        # both top sets are the whole axis, normalised by len not k
        assert top_k_overlap(a, b, 10) == 1.0

    def test_ties_break_by_position(self):
        a = np.array([0.5, 0.5, 0.0])
        b = np.array([0.5, 0.0, 0.5])
        assert top_k_overlap(a, b, 1) == 1.0

    def test_empty_vectors(self):
        assert top_k_overlap(np.zeros(0), np.zeros(0), 3) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            top_k_overlap(np.zeros(3), np.zeros(2), 1)
        with pytest.raises(ValidationError):
            top_k_overlap(np.zeros(3), np.zeros(3), 0)
