"""Tests for the §IV.C score-gap analysis."""

import pytest

from repro.matrix import UserPairMatrix
from repro.metrics import score_gap_analysis

USERS = ["a", "b", "c", "d"]


def scores(entries):
    m = UserPairMatrix(USERS)
    for source, target, value in entries:
        m.set(source, target, value)
    return m


def binary(pairs):
    m = UserPairMatrix(USERS)
    for source, target in pairs:
        m.set(source, target, 1.0)
    return m


class TestScoreGap:
    def test_separates_regions(self):
        derived = scores([("a", "b", 0.9), ("a", "c", 0.4), ("a", "d", 0.7)])
        predicted = binary([("a", "b"), ("a", "c"), ("a", "d")])
        R = binary([("a", "b"), ("a", "c"), ("a", "d")])
        T = binary([("a", "b")])
        report = score_gap_analysis(derived, predicted, R, T)
        assert report.trusted_count == 1
        assert report.untrusted_count == 2
        assert report.trusted_mean == pytest.approx(0.9)
        assert report.untrusted_mean == pytest.approx(0.55)
        assert report.untrusted_min == pytest.approx(0.4)
        assert report.mean_gap == pytest.approx(-0.35)

    def test_only_predicted_pairs_analysed(self):
        derived = scores([("a", "b", 0.9), ("a", "c", 0.1)])
        predicted = binary([("a", "b")])  # (a, c) not predicted
        R = binary([("a", "b"), ("a", "c")])
        T = binary([])
        report = score_gap_analysis(derived, predicted, R, T)
        assert report.untrusted_count == 1
        assert report.untrusted_mean == pytest.approx(0.9)

    def test_pairs_outside_r_ignored(self):
        derived = scores([("b", "c", 0.8)])
        predicted = binary([("b", "c")])
        R = binary([])  # (b, c) predicted but not a connection
        T = binary([("b", "c")])
        report = score_gap_analysis(derived, predicted, R, T)
        assert report.trusted_count == 0
        assert report.untrusted_count == 0
        assert report.trusted_mean == 0.0

    def test_gap_properties(self):
        derived = scores([("a", "b", 0.2), ("a", "c", 0.6)])
        predicted = binary([("a", "b"), ("a", "c")])
        R = binary([("a", "b"), ("a", "c")])
        T = binary([("a", "b")])
        report = score_gap_analysis(derived, predicted, R, T)
        # untrusted (0.6) scores above trusted (0.2): positive gaps
        assert report.mean_gap == pytest.approx(0.4)
        assert report.min_gap == pytest.approx(0.4)
