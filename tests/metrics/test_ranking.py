"""Tests for ranking metrics (AUC, precision@k)."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.metrics import precision_at_k, ranking_auc

USERS = ["a", "b", "c", "d", "e"]


def scores(entries):
    m = UserPairMatrix(USERS)
    for source, target, value in entries:
        m.set(source, target, value)
    return m


def binary(pairs):
    m = UserPairMatrix(USERS)
    for source, target in pairs:
        m.set(source, target, 1.0)
    return m


class TestRankingAuc:
    def test_perfect_separation(self):
        s = scores([("a", "b", 0.9), ("a", "c", 0.8), ("a", "d", 0.1), ("a", "e", 0.2)])
        R = binary([("a", "b"), ("a", "c"), ("a", "d"), ("a", "e")])
        T = binary([("a", "b"), ("a", "c")])
        assert ranking_auc(s, R, T) == pytest.approx(1.0)

    def test_inverted_separation(self):
        s = scores([("a", "b", 0.1), ("a", "c", 0.9)])
        R = binary([("a", "b"), ("a", "c")])
        T = binary([("a", "b")])
        assert ranking_auc(s, R, T) == pytest.approx(0.0)

    def test_ties_give_half_credit(self):
        s = scores([("a", "b", 0.5), ("a", "c", 0.5)])
        R = binary([("a", "b"), ("a", "c")])
        T = binary([("a", "b")])
        assert ranking_auc(s, R, T) == pytest.approx(0.5)

    def test_missing_scores_count_as_zero(self):
        s = scores([("a", "b", 0.3)])
        R = binary([("a", "b"), ("a", "c")])
        T = binary([("a", "b")])
        assert ranking_auc(s, R, T) == pytest.approx(1.0)

    def test_empty_class_returns_half(self):
        s = scores([("a", "b", 0.3)])
        R = binary([("a", "b")])
        assert ranking_auc(s, R, binary([])) == 0.5
        assert ranking_auc(s, R, binary([("a", "b")])) == 0.5

    def test_axis_mismatch(self):
        with pytest.raises(ValidationError):
            ranking_auc(UserPairMatrix(["x"]), binary([]), binary([]))


class TestPrecisionAtK:
    def test_top1_hit(self):
        s = scores([("a", "b", 0.9), ("a", "c", 0.2)])
        R = binary([("a", "b"), ("a", "c")])
        T = binary([("a", "b")])
        assert precision_at_k(s, R, T, k=1) == 1.0

    def test_top1_miss(self):
        s = scores([("a", "b", 0.2), ("a", "c", 0.9)])
        R = binary([("a", "b"), ("a", "c")])
        T = binary([("a", "b")])
        assert precision_at_k(s, R, T, k=1) == 0.0

    def test_averaged_over_users(self):
        s = scores([("a", "b", 0.9), ("b", "c", 0.1)])
        R = binary([("a", "b"), ("b", "c")])
        T = binary([("a", "b")])  # a hits, b misses
        assert precision_at_k(s, R, T, k=1) == pytest.approx(0.5)

    def test_k_larger_than_row(self):
        s = scores([("a", "b", 0.9)])
        R = binary([("a", "b")])
        T = binary([("a", "b")])
        assert precision_at_k(s, R, T, k=10) == 1.0

    def test_k_validation(self):
        with pytest.raises(ValidationError):
            precision_at_k(scores([]), binary([]), binary([]), k=0)

    def test_no_connections(self):
        assert precision_at_k(scores([]), binary([]), binary([]), k=1) == 0.0
