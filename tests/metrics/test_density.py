"""Tests for the Fig.-3 density report."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.metrics import density_report

USERS = ["a", "b", "c", "d"]


def matrix(pairs):
    m = UserPairMatrix(USERS)
    for source, target in pairs:
        m.set(source, target, 1.0)
    return m


class TestDensityReport:
    @pytest.fixture
    def report(self):
        derived = matrix([("a", "b"), ("a", "c"), ("b", "c"), ("c", "a"), ("d", "a")])
        R = matrix([("a", "b"), ("b", "c"), ("c", "d")])
        T = matrix([("a", "b"), ("c", "a")])
        return density_report(derived, R, T)

    def test_entry_counts(self, report):
        assert report.derived_entries == 5
        assert report.connection_entries == 3
        assert report.trust_entries == 2

    def test_overlap_regions(self, report):
        assert report.trust_in_connections == 1  # (a, b)
        assert report.trust_outside_connections == 1  # (c, a)
        assert report.nontrust_in_connections == 2  # (b, c), (c, d)

    def test_densities_over_ordered_pairs(self, report):
        assert report.derived_density == pytest.approx(5 / 12)
        assert report.connection_density == pytest.approx(3 / 12)
        assert report.trust_density == pytest.approx(2 / 12)

    def test_densification_ratios(self, report):
        assert report.densification_vs_trust == pytest.approx(2.5)
        assert report.densification_vs_connections == pytest.approx(5 / 3)

    def test_zero_trust_edges(self):
        derived = matrix([("a", "b")])
        report = density_report(derived, matrix([]), matrix([]))
        assert report.densification_vs_trust == 0.0
        assert report.densification_vs_connections == 0.0

    def test_axis_mismatch(self):
        with pytest.raises(ValidationError):
            density_report(matrix([]), UserPairMatrix(["x"]), matrix([]))
