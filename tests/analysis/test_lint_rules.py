"""Unit tests for the invariant linter: each rule firing and passing.

Every rule is exercised through :func:`repro.analysis.lint_source` on a
minimal bad source (the rule fires) and its fixed counterpart (no
findings), plus the waiver and scope mechanics the CI gate relies on.
"""

import pathlib
import textwrap

import pytest

from repro.analysis import RULES, lint_source
from repro.analysis.lint import lint_paths, main

TYPED_PATH = "src/repro/matrix/example.py"


def rules_of(findings):
    return [f.rule for f in findings]


def lint(source, path="<string>"):
    return lint_source(textwrap.dedent(source), path)


# --------------------------------------------------------------------------- R1


class TestR1CacheInvalidation:
    BAD = """
        class UserPairMatrix:
            def set(self, key, value):
                self._store[key] = value
        """

    def test_fires_on_mutator_without_invalidation(self):
        findings = lint(self.BAD)
        assert rules_of(findings) == ["R1"]
        assert "UserPairMatrix.set()" in findings[0].message

    def test_passes_when_hook_is_called(self):
        findings = lint(
            """
            class UserPairMatrix:
                def set(self, key, value):
                    self._store[key] = value
                    self._invalidate()
            """
        )
        assert findings == []

    def test_passes_when_cache_attr_is_assigned(self):
        findings = lint(
            """
            class UserPairMatrix:
                def accumulate(self, key, value):
                    self._vals[key] += value
                    self._csr = None
            """
        )
        assert findings == []

    def test_community_uses_its_own_protocol(self):
        bad = lint(
            """
            class Community:
                def add_user(self, user):
                    self._rows.append(user)
            """
        )
        assert rules_of(bad) == ["R1", "R7"]
        good = lint(
            """
            class Community:
                def add_user(self, user):
                    self._rows.append(user)
                    self._record("user", user_id=user)
            """
        )
        assert good == []

    def test_private_methods_are_exempt(self):
        findings = lint(
            """
            class UserPairMatrix:
                def _flush(self):
                    self._store = {}
            """
        )
        assert findings == []

    def test_mutating_call_on_private_state_counts_as_write(self):
        findings = lint(
            """
            class Community:
                def add_trust(self, statement):
                    self._db.insert("trust", statement)
            """
        )
        assert rules_of(findings) == ["R1", "R7"]

    def test_read_only_methods_are_clean(self):
        findings = lint(
            """
            class UserPairMatrix:
                def get(self, key):
                    return self._store[key]
            """
        )
        assert findings == []

    def test_other_classes_are_not_checked(self):
        findings = lint(
            """
            class SomethingElse:
                def set(self, key, value):
                    self._store[key] = value
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- R2


class TestR2HotPathColumnar:
    @pytest.mark.parametrize(
        "call",
        ["entries", "support", "iter_ratings", "iter_reviews",
         "direct_connections", "rating_triples"],
    )
    def test_fires_on_each_slow_call(self, call):
        findings = lint(
            f"""
            # repro: hot-path
            def f(m):
                return list(m.{call}())
            """
        )
        assert rules_of(findings) == ["R2"]
        assert f".{call}()" in findings[0].message

    def test_silent_without_hot_path_marker(self):
        findings = lint(
            """
            def f(m):
                return list(m.entries())
            """
        )
        assert findings == []

    def test_columnar_equivalents_are_clean(self):
        findings = lint(
            """
            # repro: hot-path
            def f(m, columns):
                rows, cols, vals = m.entries_arrays()
                return columns.direct_connection_arrays()
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- R3


class TestR3SetDrivenAccumulation:
    def test_fires_on_aug_assign_in_set_loop(self):
        findings = lint(
            """
            def f(pairs, weight):
                total = 0.0
                chosen = set(pairs)
                for p in chosen:
                    total += weight[p]
                return total
            """
        )
        assert rules_of(findings) == ["R3"]

    def test_fires_on_sum_over_set_generator(self):
        findings = lint(
            """
            def f(keys, values):
                return sum(values[k] for k in set(keys))
            """
        )
        assert rules_of(findings) == ["R3"]

    def test_fires_on_sum_of_set_returning_call(self):
        findings = lint(
            """
            def f(matrix):
                shared = matrix.intersect_support(matrix)
                return sum(shared)
            """
        )
        assert rules_of(findings) == ["R3"]

    def test_sorted_iteration_is_clean(self):
        findings = lint(
            """
            def f(pairs, weight):
                total = 0.0
                for p in sorted(set(pairs)):
                    total += weight[p]
                return total
            """
        )
        assert findings == []

    def test_integer_counting_is_exempt(self):
        findings = lint(
            """
            def f(pairs):
                count = 0
                for p in set(pairs):
                    count += 1
                return count
            """
        )
        assert findings == []

    def test_only_applies_to_numeric_modules(self):
        source = """
            def f(pairs, weight):
                total = 0.0
                for p in set(pairs):
                    total += weight[p]
                return total
            """
        assert rules_of(lint(source, "src/repro/trust/x.py")) == ["R3"]
        assert lint(source, "src/repro/datasets/x.py") == []


# --------------------------------------------------------------------------- R4


class TestR4WriteOnceColumns:
    def test_fires_on_assignment_outside_init(self):
        findings = lint(
            """
            class CommunityColumns:
                def __init__(self):
                    self.rating_values = None

                def refresh(self, values):
                    self.rating_values = values
            """
        )
        assert rules_of(findings) == ["R4"]
        assert "rating_values" in findings[0].message

    def test_underscore_memos_are_allowed(self):
        findings = lint(
            """
            class CommunityColumns:
                def writing_counts_matrix(self):
                    self._writing_counts = 1
                    return self._writing_counts
            """
        )
        assert findings == []

    def test_fires_on_consumer_attribute_write(self):
        findings = lint(
            """
            def f(community, values):
                cols = community.columns()
                cols.rating_values = values
            """
        )
        assert rules_of(findings) == ["R4"]

    def test_fires_on_consumer_element_write(self):
        findings = lint(
            """
            def f(community):
                cols = community.columns()
                cols.srt_values[0] = 1.0
            """
        )
        assert rules_of(findings) == ["R4"]

    def test_reading_columns_is_clean(self):
        findings = lint(
            """
            def f(community):
                cols = community.columns()
                return cols.srt_values.sum()
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- R5


class TestR5StrictAnnotations:
    def test_fires_on_unannotated_function_in_typed_package(self):
        findings = lint(
            """
            def f(x, y):
                return x + y
            """,
            TYPED_PATH,
        )
        assert rules_of(findings) == ["R5"]
        assert "x, y, return" in findings[0].message

    def test_self_and_cls_are_exempt(self):
        findings = lint(
            """
            class Thing:
                def method(self, x: int) -> int:
                    return x

                @classmethod
                def build(cls) -> "Thing":
                    return cls()
            """,
            TYPED_PATH,
        )
        assert findings == []

    def test_star_args_need_annotations(self):
        findings = lint(
            """
            def f(*args, **kwargs) -> None:
                pass
            """,
            TYPED_PATH,
        )
        assert rules_of(findings) == ["R5"]

    def test_fully_annotated_is_clean(self):
        findings = lint(
            """
            def f(x: int, *, flag: bool = False) -> int:
                return x if flag else -x
            """,
            TYPED_PATH,
        )
        assert findings == []

    def test_untyped_packages_are_not_checked(self):
        source = """
            def f(x):
                return x
            """
        assert lint(source, "src/repro/datasets/x.py") == []
        assert lint(source) == []

    def test_obs_package_is_strict_typed(self):
        findings = lint(
            """
            def f(x):
                return x
            """,
            "src/repro/obs/example.py",
        )
        assert rules_of(findings) == ["R5"]


# --------------------------------------------------------------------------- R6


class TestR6ContextManagedSpans:
    def test_fires_on_bare_span_call(self):
        findings = lint(
            """
            def f(obs):
                handle = obs.span("step1.fit")
                work()
            """
        )
        assert rules_of(findings) == ["R6"]
        assert "with-item" in findings[0].message

    def test_fires_on_bare_module_level_span(self):
        findings = lint(
            """
            def f():
                span("step1.fit")
            """
        )
        assert rules_of(findings) == ["R6"]

    def test_with_statement_is_clean(self):
        findings = lint(
            """
            def f(obs):
                with obs.span("step1.fit", mode="batched"):
                    work()
            """
        )
        assert findings == []

    def test_with_as_target_is_clean(self):
        findings = lint(
            """
            def f(obs):
                with obs.span("step1.fit") as record:
                    return record
            """
        )
        assert findings == []

    def test_enter_context_is_clean(self):
        findings = lint(
            """
            def f(obs, stack):
                stack.enter_context(obs.span("step1.fit"))
            """
        )
        assert findings == []

    def test_fires_on_start_stop_span(self):
        findings = lint(
            """
            def f(obs):
                obs.start_span("step1.fit")
                work()
                obs.stop_span()
            """
        )
        assert rules_of(findings) == ["R6", "R6"]
        assert "start_span" in findings[0].message

    def test_waiver_applies(self):
        findings = lint(
            """
            def f(obs):
                return obs.span("step1.fit")  # repro: allow(R6): factory shim
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- R7


class TestR7MutatorsEmitDeltas:
    def test_fires_when_mutator_only_invalidates(self):
        findings = lint(
            """
            class Community:
                def add_user(self, user):
                    self._rows.append(user)
                    self._mutated()
            """
        )
        assert rules_of(findings) == ["R7"]
        assert "self._record" in findings[0].message

    def test_passes_when_mutator_records_a_delta(self):
        findings = lint(
            """
            class Community:
                def add_user(self, user):
                    self._rows.append(user)
                    self._record("user", user_id=user)
            """
        )
        assert findings == []

    def test_read_only_methods_are_exempt(self):
        findings = lint(
            """
            class Community:
                def user_ids(self):
                    return list(self._rows)
            """
        )
        assert findings == []

    def test_private_helpers_are_exempt(self):
        findings = lint(
            """
            class Community:
                def _rebuild(self):
                    self._rows.append(None)
                    self._mutated()
            """
        )
        assert findings == []

    def test_other_classes_are_exempt(self):
        findings = lint(
            """
            class UserPairMatrix:
                def set(self, key, value):
                    self._store[key] = value
                    self._invalidate()
            """
        )
        assert findings == []

    def test_waivable(self):
        findings = lint(
            """
            class Community:
                def bulk_import(self, rows):  # repro: allow(R7): log elsewhere
                    self._rows.extend(rows)
                    self._mutated()
            """
        )
        assert findings == []

    def test_real_community_module_is_clean(self):
        source = pathlib.Path("src/repro/community/community.py").read_text()
        findings = lint_source(source, "src/repro/community/community.py")
        assert findings == []


# ----------------------------------------------------------------- waivers etc.


class TestWaivers:
    def test_same_line_waiver(self):
        findings = lint(
            """
            # repro: hot-path
            def f(m):
                return list(m.entries())  # repro: allow(R2): test waiver
            """
        )
        assert findings == []

    def test_line_above_waiver(self):
        findings = lint(
            """
            # repro: hot-path
            def f(m):
                # repro: allow(R2): test waiver
                return list(m.entries())
            """
        )
        assert findings == []

    def test_waiver_two_lines_above_does_not_apply(self):
        findings = lint(
            """
            # repro: hot-path
            def f(m):
                # repro: allow(R2): too far away
                pass
                return list(m.entries())
            """
        )
        assert rules_of(findings) == ["R2"]

    def test_waiver_is_rule_specific(self):
        findings = lint(
            """
            # repro: hot-path
            def f(m):
                return list(m.entries())  # repro: allow(R3): wrong rule
            """
        )
        assert rules_of(findings) == ["R2"]

    def test_multiple_rules_in_one_waiver(self):
        findings = lint(
            """
            # repro: hot-path
            def f(pairs, m):
                # repro: allow(R2, R3): both at once
                return sum(x for x in set(m.entries()))
            """
        )
        assert findings == []


class TestEntryPoints:
    def test_syntax_error_reported_as_finding(self):
        findings = lint_source("def f(:\n")
        assert rules_of(findings) == ["E0"]

    def test_findings_render_clickable(self):
        findings = lint(
            """
            # repro: hot-path
            def f(m):
                return list(m.entries())
            """,
            "src/repro/trust/x.py",
        )
        rendered = findings[0].render()
        assert rendered.startswith("src/repro/trust/x.py:")
        assert " R2 " in rendered

    def test_lint_paths_walks_directories(self, tmp_path):
        bad = tmp_path / "pkg" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("total = sum(x for x in set(range(3)))\n")
        (tmp_path / "pkg" / "clean.py").write_text("VALUE = 1\n")
        findings = lint_paths([str(tmp_path)])
        assert rules_of(findings) == ["R3"]
        assert findings[0].path == str(bad)

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("total = sum(x for x in set(range(3)))\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr()
        assert "R3" in out.out
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main([str(clean)]) == 0

    def test_main_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_repo_source_tree_is_clean(self):
        # the self-check the CI gate runs; every finding must be fixed or
        # carry an explicit waiver
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        assert [f.render() for f in lint_paths([str(src)])] == []
