"""Tests for the affiliation matrix A (eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.affinity import AffinityConfig, AffinityEstimator, affiliation_matrix
from repro.affinity.affiliation import _combine
from repro.common.errors import ValidationError


class TestAffinityConfig:
    def test_default_mode(self):
        assert AffinityConfig().mode == "both"

    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError):
            AffinityConfig(mode="everything")


class TestPaperFormula:
    def test_hand_computed_entries(self, two_category_community):
        """Check eq. 4 term by term on the fixture.

        dave: ratings movies=2 (ra1, rb1), books=1 (rc1); writes nothing.
        A(dave, movies) = (2/2 + 0)/2 = 0.5 ; A(dave, books) = (1/2 + 0)/2 = 0.25
        alice: rates books=1; writes movies=2.
        A(alice, movies) = (0 + 2/2)/2 = 0.5 ; A(alice, books) = (1/1 + 0)/2 = 0.5
        bob: rates movies=2; writes movies=1.
        A(bob, movies) = (2/2 + 1/1)/2 = 1.0 ; A(bob, books) = 0
        """
        A = affiliation_matrix(two_category_community)
        assert A.get("dave", "movies") == pytest.approx(0.5)
        assert A.get("dave", "books") == pytest.approx(0.25)
        assert A.get("alice", "movies") == pytest.approx(0.5)
        assert A.get("alice", "books") == pytest.approx(0.5)
        assert A.get("bob", "movies") == pytest.approx(1.0)
        assert A.get("bob", "books") == 0.0

    def test_inactive_user_all_zero(self, two_category_community):
        A = affiliation_matrix(two_category_community)
        assert A.get("eve", "movies") == 0.0
        assert A.get("eve", "books") == 0.0

    def test_most_active_category_dominates(self, two_category_community):
        A = affiliation_matrix(two_category_community)
        assert A.get("dave", "movies") > A.get("dave", "books")


class TestModes:
    def test_ratings_only(self, two_category_community):
        A = affiliation_matrix(two_category_community, AffinityConfig(mode="ratings_only"))
        assert A.get("dave", "movies") == pytest.approx(1.0)
        assert A.get("dave", "books") == pytest.approx(0.5)
        # writer-only activity disappears
        assert A.get("carol", "books") == 0.0

    def test_writing_only(self, two_category_community):
        A = affiliation_matrix(two_category_community, AffinityConfig(mode="writing_only"))
        assert A.get("carol", "books") == pytest.approx(1.0)
        assert A.get("dave", "movies") == 0.0

    def test_both_is_mean_of_single_modes(self, two_category_community):
        both = affiliation_matrix(two_category_community)
        ratings = affiliation_matrix(
            two_category_community, AffinityConfig(mode="ratings_only")
        )
        writing = affiliation_matrix(
            two_category_community, AffinityConfig(mode="writing_only")
        )
        np.testing.assert_allclose(
            both.to_array(), (ratings.to_array() + writing.to_array()) / 2
        )

    def test_estimator_class_equivalent_to_function(self, two_category_community):
        assert AffinityEstimator().fit(two_category_community) == affiliation_matrix(
            two_category_community
        )


count_matrices = st.integers(0, 20).flatmap(
    lambda _: st.tuples(st.integers(1, 6), st.integers(1, 5)).flatmap(
        lambda shape: st.tuples(
            st.lists(
                st.lists(st.integers(0, 50), min_size=shape[1], max_size=shape[1]),
                min_size=shape[0],
                max_size=shape[0],
            ),
            st.lists(
                st.lists(st.integers(0, 50), min_size=shape[1], max_size=shape[1]),
                min_size=shape[0],
                max_size=shape[0],
            ),
        )
    )
)


class TestCombineProperties:
    @given(count_matrices)
    @settings(max_examples=60, deadline=None)
    def test_values_in_unit_interval(self, matrices):
        ratings, writings = (np.array(m, dtype=float) for m in matrices)
        for mode in ("both", "ratings_only", "writing_only"):
            values = _combine(ratings, writings, mode)
            assert values.min() >= 0.0
            assert values.max() <= 1.0 + 1e-12

    @given(count_matrices)
    @settings(max_examples=60, deadline=None)
    def test_each_active_user_has_a_full_affinity_category(self, matrices):
        # eq. 4 normalises by the row max, so any user with rating activity
        # has some category whose rating term equals exactly 1
        ratings, writings = (np.array(m, dtype=float) for m in matrices)
        values = _combine(ratings, writings, "ratings_only")
        for i in range(ratings.shape[0]):
            if ratings[i].max() > 0:
                assert values[i].max() == pytest.approx(1.0)
            else:
                assert values[i].max() == 0.0

    @given(count_matrices)
    @settings(max_examples=60, deadline=None)
    def test_row_order_preserved_under_scaling(self, matrices):
        # multiplying a user's counts by a constant must not change their
        # affinity vector (eq. 4 is scale-free per user)
        ratings, writings = (np.array(m, dtype=float) for m in matrices)
        before = _combine(ratings, writings, "both")
        after = _combine(ratings * 3, writings * 3, "both")
        np.testing.assert_allclose(before, after)
