"""Tests for the lazy Query layer."""

import pytest

from repro.common.errors import ValidationError
from repro.store import Column, Query, Schema, Table


@pytest.fixture
def reviews():
    table = Table(
        Schema(
            name="reviews",
            columns=[
                Column("review_id", str),
                Column("writer_id", str),
                Column("category_id", str),
                Column("quality", float),
            ],
            primary_key=("review_id",),
        )
    )
    rows = [
        ("r1", "u1", "c1", 0.9),
        ("r2", "u1", "c2", 0.4),
        ("r3", "u2", "c1", 0.7),
        ("r4", "u3", "c1", 0.2),
        ("r5", "u2", "c2", 0.6),
    ]
    for review_id, writer, category, quality in rows:
        table.insert(
            {
                "review_id": review_id,
                "writer_id": writer,
                "category_id": category,
                "quality": quality,
            }
        )
    return table


class TestWhere:
    def test_single_filter(self, reviews):
        result = Query(reviews).where(category_id="c1").all()
        assert {r["review_id"] for r in result} == {"r1", "r3", "r4"}

    def test_chained_filters_and(self, reviews):
        result = Query(reviews).where(category_id="c1").where(writer_id="u2").all()
        assert [r["review_id"] for r in result] == ["r3"]

    def test_where_unknown_column(self, reviews):
        with pytest.raises(ValidationError):
            Query(reviews).where(ghost=1)

    def test_builder_does_not_mutate_parent(self, reviews):
        base = Query(reviews).where(category_id="c1")
        _ = base.where(writer_id="u2")
        assert len(base.all()) == 3


class TestFilterOrderLimit:
    def test_predicate_filter(self, reviews):
        result = Query(reviews).filter(lambda r: r["quality"] >= 0.6).all()
        assert {r["review_id"] for r in result} == {"r1", "r3", "r5"}

    def test_order_by_ascending(self, reviews):
        result = Query(reviews).order_by("quality").values("review_id")
        assert result == ["r4", "r2", "r5", "r3", "r1"]

    def test_order_by_descending(self, reviews):
        result = Query(reviews).order_by("quality", descending=True).values("review_id")
        assert result == ["r1", "r3", "r5", "r2", "r4"]

    def test_limit(self, reviews):
        result = Query(reviews).order_by("quality", descending=True).limit(2).all()
        assert [r["review_id"] for r in result] == ["r1", "r3"]

    def test_limit_zero(self, reviews):
        assert Query(reviews).limit(0).all() == []

    def test_negative_limit_rejected(self, reviews):
        with pytest.raises(ValidationError):
            Query(reviews).limit(-1)


class TestTerminals:
    def test_first(self, reviews):
        row = Query(reviews).where(writer_id="u2").order_by("quality").first()
        assert row["review_id"] == "r5"

    def test_first_empty(self, reviews):
        assert Query(reviews).where(writer_id="ghost-free").first() is None

    def test_count_fast_path_matches_slow_path(self, reviews):
        fast = Query(reviews).where(category_id="c1").count()
        slow = Query(reviews).where(category_id="c1").filter(lambda r: True).count()
        assert fast == slow == 3

    def test_count_respects_limit(self, reviews):
        assert Query(reviews).limit(2).count() == 2

    def test_select_projection(self, reviews):
        rows = Query(reviews).where(writer_id="u1").select("review_id").all()
        assert all(set(r) == {"review_id"} for r in rows)

    def test_select_unknown_column(self, reviews):
        with pytest.raises(ValidationError):
            Query(reviews).select("ghost")

    def test_values(self, reviews):
        values = Query(reviews).where(category_id="c2").order_by("quality").values("quality")
        assert values == [0.4, 0.6]

    def test_values_ignores_projection(self, reviews):
        q = Query(reviews).select("review_id")
        assert sorted(q.values("writer_id")) == ["u1", "u1", "u2", "u2", "u3"]
