"""Tests for Database: FK enforcement and cross-table integrity."""

import pytest

from repro.common.errors import IntegrityError, ValidationError
from repro.store import Column, Database, ForeignKey, Schema


@pytest.fixture
def db():
    db = Database("test")
    db.create_table(
        Schema(
            name="users",
            columns=[Column("user_id", str)],
            primary_key=("user_id",),
        )
    )
    db.create_table(
        Schema(
            name="reviews",
            columns=[Column("review_id", str), Column("writer_id", str)],
            primary_key=("review_id",),
            foreign_keys=(ForeignKey("writer_id", "users"),),
        )
    )
    return db


class TestTableManagement:
    def test_create_and_fetch(self, db):
        assert db.table("users").name == "users"
        assert db.table_names == ("users", "reviews")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(ValidationError, match="already exists"):
            db.create_table(
                Schema(name="users", columns=[Column("user_id", str)], primary_key=("user_id",))
            )

    def test_unknown_table_rejected(self, db):
        with pytest.raises(ValidationError, match="no table"):
            db.table("ghost")

    def test_fk_to_unknown_table_rejected_at_creation(self, db):
        with pytest.raises(ValidationError, match="unknown"):
            db.create_table(
                Schema(
                    name="bad",
                    columns=[Column("x", str)],
                    primary_key=("x",),
                    foreign_keys=(ForeignKey("x", "ghost"),),
                )
            )

    def test_fk_to_composite_pk_rejected(self, db):
        db.create_table(
            Schema(
                name="pairs",
                columns=[Column("a", str), Column("b", str)],
                primary_key=("a", "b"),
            )
        )
        with pytest.raises(ValidationError, match="single-column"):
            db.create_table(
                Schema(
                    name="bad",
                    columns=[Column("x", str)],
                    primary_key=("x",),
                    foreign_keys=(ForeignKey("x", "pairs"),),
                )
            )

    def test_contains(self, db):
        assert "users" in db
        assert "ghost" not in db


class TestForeignKeyEnforcement:
    def test_valid_reference_accepted(self, db):
        db.insert("users", {"user_id": "u1"})
        db.insert("reviews", {"review_id": "r1", "writer_id": "u1"})
        assert db.table("reviews").get("r1")["writer_id"] == "u1"

    def test_dangling_reference_rejected(self, db):
        with pytest.raises(IntegrityError, match="does not reference"):
            db.insert("reviews", {"review_id": "r1", "writer_id": "ghost"})

    def test_failed_fk_insert_leaves_table_unchanged(self, db):
        with pytest.raises(IntegrityError):
            db.insert("reviews", {"review_id": "r1", "writer_id": "ghost"})
        assert len(db.table("reviews")) == 0

    def test_nullable_fk_column_accepts_none(self):
        db = Database("t")
        db.create_table(
            Schema(name="users", columns=[Column("user_id", str)], primary_key=("user_id",))
        )
        db.create_table(
            Schema(
                name="posts",
                columns=[Column("post_id", str), Column("editor_id", str, nullable=True)],
                primary_key=("post_id",),
                foreign_keys=(ForeignKey("editor_id", "users"),),
            )
        )
        db.insert("posts", {"post_id": "p1", "editor_id": None})
        assert db.table("posts").get("p1")["editor_id"] is None

    def test_insert_many_stops_at_first_violation(self, db):
        db.insert("users", {"user_id": "u1"})
        rows = [
            {"review_id": "r1", "writer_id": "u1"},
            {"review_id": "r2", "writer_id": "ghost"},
            {"review_id": "r3", "writer_id": "u1"},
        ]
        with pytest.raises(IntegrityError):
            db.insert_many("reviews", rows)
        assert len(db.table("reviews")) == 1


class TestVerifyIntegrity:
    def test_clean_database_reports_nothing(self, db):
        db.insert("users", {"user_id": "u1"})
        db.insert("reviews", {"review_id": "r1", "writer_id": "u1"})
        assert db.verify_integrity() == []

    def test_bypassed_write_is_caught(self, db):
        # writes through Table.insert skip FK checks; verify_integrity finds them
        db.table("reviews").insert({"review_id": "r1", "writer_id": "ghost"})
        problems = db.verify_integrity()
        assert len(problems) == 1
        assert "ghost" in problems[0]

    def test_stats(self, db):
        db.insert("users", {"user_id": "u1"})
        assert db.stats() == {"users": 1, "reviews": 0}
