"""Tests for Table: CRUD, indexes, constraints, queries."""

import pytest

from repro.common.errors import IntegrityError, SchemaError, ValidationError
from repro.store import Column, Schema, Table


@pytest.fixture
def table():
    return Table(
        Schema(
            name="ratings",
            columns=[
                Column("rater_id", str),
                Column("review_id", str),
                Column("value", float),
            ],
            primary_key=("rater_id", "review_id"),
        )
    )


def fill(table, rows):
    for rater, review, value in rows:
        table.insert({"rater_id": rater, "review_id": review, "value": value})


class TestInsertAndGet:
    def test_roundtrip(self, table):
        table.insert({"rater_id": "u1", "review_id": "r1", "value": 0.8})
        assert table.get("u1", "r1") == {"rater_id": "u1", "review_id": "r1", "value": 0.8}

    def test_get_returns_copy(self, table):
        table.insert({"rater_id": "u1", "review_id": "r1", "value": 0.8})
        row = table.get("u1", "r1")
        row["value"] = 99.0
        assert table.get("u1", "r1")["value"] == 0.8

    def test_duplicate_pk_rejected(self, table):
        table.insert({"rater_id": "u1", "review_id": "r1", "value": 0.8})
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            table.insert({"rater_id": "u1", "review_id": "r1", "value": 0.2})

    def test_schema_violation_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"rater_id": "u1", "review_id": "r1", "value": "high"})

    def test_maybe_get_absent_returns_none(self, table):
        assert table.maybe_get("u1", "r1") is None

    def test_get_absent_raises(self, table):
        with pytest.raises(IntegrityError, match="no row"):
            table.get("u1", "r1")

    def test_contains(self, table):
        table.insert({"rater_id": "u1", "review_id": "r1", "value": 0.8})
        assert table.contains("u1", "r1")
        assert not table.contains("u1", "r2")

    def test_insert_many_counts(self, table):
        n = table.insert_many(
            {"rater_id": "u1", "review_id": f"r{i}", "value": 0.2} for i in range(5)
        )
        assert n == 5
        assert len(table) == 5


class TestDelete:
    def test_delete_removes_row(self, table):
        fill(table, [("u1", "r1", 0.8)])
        table.delete("u1", "r1")
        assert not table.contains("u1", "r1")
        assert len(table) == 0

    def test_delete_absent_raises(self, table):
        with pytest.raises(IntegrityError):
            table.delete("u1", "r1")

    def test_delete_updates_indexes(self, table):
        table.create_index("review_id")
        fill(table, [("u1", "r1", 0.8), ("u2", "r1", 0.6)])
        table.delete("u1", "r1")
        assert [r["rater_id"] for r in table.find(review_id="r1")] == ["u2"]


class TestFind:
    def test_unindexed_scan(self, table):
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6), ("u2", "r1", 0.2)])
        rows = table.find(rater_id="u1")
        assert {r["review_id"] for r in rows} == {"r1", "r2"}

    def test_indexed_lookup_matches_scan(self, table):
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6), ("u2", "r1", 0.2)])
        scan = table.find(review_id="r1")
        table.create_index("review_id")
        indexed = table.find(review_id="r1")
        assert sorted(r["rater_id"] for r in scan) == sorted(r["rater_id"] for r in indexed)

    def test_index_covers_rows_inserted_after_creation(self, table):
        table.create_index("review_id")
        fill(table, [("u1", "r1", 0.8), ("u2", "r1", 0.4)])
        assert len(table.find(review_id="r1")) == 2

    def test_multi_column_indexed_find(self, table):
        table.create_index("rater_id", "review_id")
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6)])
        rows = table.find(rater_id="u1", review_id="r2")
        assert [r["value"] for r in rows] == [0.6]

    def test_find_empty_filter_returns_all(self, table):
        fill(table, [("u1", "r1", 0.8), ("u2", "r2", 0.6)])
        assert len(table.find()) == 2

    def test_find_unknown_column_raises(self, table):
        with pytest.raises(ValidationError):
            table.find(ghost=1)

    def test_find_returns_copies(self, table):
        fill(table, [("u1", "r1", 0.8)])
        table.find(rater_id="u1")[0]["value"] = 99.0
        assert table.get("u1", "r1")["value"] == 0.8


class TestCountDistinctGroup:
    def test_count_all_and_filtered(self, table):
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6), ("u2", "r1", 0.2)])
        assert table.count() == 3
        assert table.count(rater_id="u1") == 2

    def test_count_uses_index(self, table):
        table.create_index("rater_id")
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6)])
        assert table.count(rater_id="u1") == 2

    def test_distinct_preserves_first_seen_order(self, table):
        fill(table, [("u2", "r1", 0.8), ("u1", "r2", 0.6), ("u2", "r3", 0.2)])
        assert table.distinct("rater_id") == ["u2", "u1"]

    def test_group_count(self, table):
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6), ("u2", "r1", 0.2)])
        assert table.group_count("rater_id") == {("u1",): 2, ("u2",): 1}

    def test_aggregate(self, table):
        fill(table, [("u1", "r1", 0.8), ("u1", "r2", 0.6)])
        assert table.aggregate("value", sum, rater_id="u1") == pytest.approx(1.4)


class TestUniqueConstraint:
    @pytest.fixture
    def reviews(self):
        return Table(
            Schema(
                name="reviews",
                columns=[
                    Column("review_id", str),
                    Column("writer_id", str),
                    Column("object_id", str),
                ],
                primary_key=("review_id",),
                unique=(("writer_id", "object_id"),),
            )
        )

    def test_violation_rejected(self, reviews):
        reviews.insert({"review_id": "r1", "writer_id": "u1", "object_id": "o1"})
        with pytest.raises(IntegrityError, match="unique constraint"):
            reviews.insert({"review_id": "r2", "writer_id": "u1", "object_id": "o1"})

    def test_failed_insert_leaves_table_unchanged(self, reviews):
        reviews.insert({"review_id": "r1", "writer_id": "u1", "object_id": "o1"})
        with pytest.raises(IntegrityError):
            reviews.insert({"review_id": "r2", "writer_id": "u1", "object_id": "o1"})
        assert len(reviews) == 1
        # and a subsequent legal insert still works
        reviews.insert({"review_id": "r2", "writer_id": "u1", "object_id": "o2"})
        assert len(reviews) == 2

    def test_same_object_different_writer_allowed(self, reviews):
        reviews.insert({"review_id": "r1", "writer_id": "u1", "object_id": "o1"})
        reviews.insert({"review_id": "r2", "writer_id": "u2", "object_id": "o1"})
        assert len(reviews) == 2


class TestIndexManagement:
    def test_create_index_requires_known_columns(self, table):
        with pytest.raises(ValidationError):
            table.create_index("ghost")

    def test_create_index_twice_is_noop(self, table):
        table.create_index("review_id")
        fill(table, [("u1", "r1", 0.5)])
        table.create_index("review_id")
        assert len(table.find(review_id="r1")) == 1

    def test_has_index(self, table):
        assert not table.has_index("review_id")
        table.create_index("review_id")
        assert table.has_index("review_id")
