"""Tests for table schemas."""

import pytest

from repro.common.errors import SchemaError, ValidationError
from repro.store import Column, ForeignKey, Schema


def make_schema(**overrides):
    defaults = dict(
        name="reviews",
        columns=[
            Column("review_id", str),
            Column("writer_id", str),
            Column("score", float, check=lambda v: 0 <= v <= 1),
            Column("note", str, nullable=True),
        ],
        primary_key=("review_id",),
    )
    defaults.update(overrides)
    return Schema(**defaults)


class TestColumn:
    def test_validate_accepts_correct_type(self):
        assert Column("x", int).validate(3) == 3

    def test_float_column_coerces_int(self):
        value = Column("x", float).validate(2)
        assert value == 2.0
        assert isinstance(value, float)

    def test_rejects_bool_for_numeric_columns(self):
        with pytest.raises(SchemaError, match="bool"):
            Column("x", int).validate(True)
        with pytest.raises(SchemaError, match="bool"):
            Column("x", float).validate(False)

    def test_nullable_accepts_none(self):
        assert Column("x", str, nullable=True).validate(None) is None

    def test_non_nullable_rejects_none(self):
        with pytest.raises(SchemaError, match="not nullable"):
            Column("x", str).validate(None)

    def test_check_predicate_enforced(self):
        col = Column("score", float, check=lambda v: 0 <= v <= 1)
        assert col.validate(0.5) == 0.5
        with pytest.raises(SchemaError, match="failed its check"):
            col.validate(1.5)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValidationError):
            Column("not a name", int)


class TestSchemaConstruction:
    def test_valid_schema_builds(self):
        schema = make_schema()
        assert schema.column_names == ("review_id", "writer_id", "score", "note")

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            make_schema(columns=[Column("a", int), Column("a", str)], primary_key=("a",))

    def test_primary_key_required(self):
        with pytest.raises(ValidationError, match="primary key"):
            make_schema(primary_key=())

    def test_primary_key_must_be_declared_column(self):
        with pytest.raises(ValidationError, match="ghost"):
            make_schema(primary_key=("ghost",))

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(ValidationError, match="ghost"):
            make_schema(foreign_keys=(ForeignKey("ghost", "users"),))

    def test_unique_columns_must_exist(self):
        with pytest.raises(ValidationError, match="ghost"):
            make_schema(unique=(("ghost",),))

    def test_bad_table_name_rejected(self):
        with pytest.raises(ValidationError):
            make_schema(name="no good")


class TestRowValidation:
    def test_valid_row_passes_and_is_copied(self):
        schema = make_schema()
        row = {"review_id": "r1", "writer_id": "u1", "score": 0.5, "note": None}
        clean = schema.validate_row(row)
        assert clean == row
        assert clean is not row

    def test_missing_column_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="missing column"):
            schema.validate_row({"review_id": "r1", "writer_id": "u1", "score": 0.5})

    def test_unknown_column_rejected(self):
        schema = make_schema()
        with pytest.raises(SchemaError, match="unknown columns"):
            schema.validate_row(
                {
                    "review_id": "r1",
                    "writer_id": "u1",
                    "score": 0.5,
                    "note": None,
                    "extra": 1,
                }
            )

    def test_pk_extraction(self):
        schema = make_schema()
        row = schema.validate_row(
            {"review_id": "r9", "writer_id": "u1", "score": 0.1, "note": None}
        )
        assert schema.pk_of(row) == ("r9",)

    def test_column_lookup_unknown_name(self):
        with pytest.raises(ValidationError, match="no column"):
            make_schema().column("nope")
