"""Model-based property tests: the Table against a plain-dict reference."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import IntegrityError
from repro.store import Column, Schema, Table


def make_table():
    return Table(
        Schema(
            name="kv",
            columns=[Column("key", str), Column("group", str), Column("value", float)],
            primary_key=("key",),
        )
    )


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "overwrite"]),
        st.integers(0, 15),           # key space
        st.sampled_from("abc"),       # group
        st.floats(0, 1, allow_nan=False),
    ),
    max_size=60,
)


class TestTableAgainstDictModel:
    @given(operations)
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_model(self, ops):
        table = make_table()
        table.create_index("group")
        model: dict[str, dict] = {}

        for op, key_num, group, value in ops:
            key = f"k{key_num}"
            row = {"key": key, "group": group, "value": value}
            if op == "insert":
                if key in model:
                    try:
                        table.insert(row)
                        raise AssertionError("duplicate PK must raise")
                    except IntegrityError:
                        pass
                else:
                    table.insert(row)
                    model[key] = row
            elif op == "delete":
                if key in model:
                    table.delete(key)
                    del model[key]
                else:
                    try:
                        table.delete(key)
                        raise AssertionError("deleting absent PK must raise")
                    except IntegrityError:
                        pass
            else:  # overwrite = delete + insert when present
                if key in model:
                    table.delete(key)
                    table.insert(row)
                    model[key] = row

        # full-state equivalence
        assert len(table) == len(model)
        for key, row in model.items():
            assert table.get(key) == row
        # indexed lookups agree with brute force over the model
        for group in "abc":
            expected = sorted(k for k, r in model.items() if r["group"] == group)
            actual = sorted(r["key"] for r in table.find(group=group))
            assert actual == expected
        # group counts agree
        counts = table.group_count("group")
        for group in "abc":
            expected_count = sum(1 for r in model.values() if r["group"] == group)
            assert counts.get((group,), 0) == expected_count
