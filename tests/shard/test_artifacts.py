"""Tests for the artifact save/load facade."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.engine import cold_artifacts
from repro.matrix import UserCategoryMatrix, UserPairMatrix
from repro.propagation.scores import PropagationScores
from repro.shard import ArtifactStore, ShardStore
from repro.shard.matrix import ShardedPairMatrix


@pytest.fixture
def pipeline_artifacts(two_category_community):
    return cold_artifacts(two_category_community)


def save_all(store, artifacts, *, epoch=0, num_shards=2):
    return store.save(
        expertise=artifacts.expertise,
        affiliation=artifacts.affiliation,
        derived=artifacts.derived,
        scores=artifacts.scores,
        epoch=epoch,
        num_shards=num_shards,
    )


class TestSaveLoad:
    def test_round_trip_is_bitwise(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        manifest = save_all(store, pipeline_artifacts, epoch=13)
        assert manifest["epoch"] == 13
        assert manifest["derived"]["entries"] == pipeline_artifacts.derived.num_entries()

        loaded = store.load()
        assert loaded.epoch == 13
        assert loaded.derived == pipeline_artifacts.derived
        np.testing.assert_array_equal(
            loaded.expertise.values_view(),
            pipeline_artifacts.expertise.values_view(),
        )
        np.testing.assert_array_equal(
            loaded.affiliation.values_view(),
            pipeline_artifacts.affiliation.values_view(),
        )
        np.testing.assert_array_equal(
            loaded.scores.scores_array(), pipeline_artifacts.scores.scores_array()
        )
        assert loaded.scores.converged == pipeline_artifacts.scores.converged
        assert loaded.scores.iterations == pipeline_artifacts.scores.iterations

    def test_loaded_derived_is_sharded_and_mmapped(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        save_all(store, pipeline_artifacts)
        loaded = store.load()
        assert isinstance(loaded.derived, ShardedPairMatrix)
        keys, _ = loaded.derived.shard_entries(0)
        assert isinstance(keys, np.memmap)

    def test_sharded_input_from_foreign_store_is_copied(
        self, tmp_path, pipeline_artifacts
    ):
        foreign = ShardStore(tmp_path / "foreign")
        sharded = ShardedPairMatrix.from_arrays(
            pipeline_artifacts.derived.users,
            *pipeline_artifacts.derived.entries_arrays(),
            num_shards=2,
            store=foreign,
        )
        store = ArtifactStore(tmp_path / "a")
        store.save(
            expertise=pipeline_artifacts.expertise,
            affiliation=pipeline_artifacts.affiliation,
            derived=sharded,
            scores=pipeline_artifacts.scores,
        )
        assert store.load().derived == pipeline_artifacts.derived

    def test_mismatched_axes_rejected(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        foreign = UserCategoryMatrix(["x", "y"], ["c"])
        with pytest.raises(ValidationError, match="user axis"):
            store.save(
                expertise=foreign,
                affiliation=pipeline_artifacts.affiliation,
                derived=pipeline_artifacts.derived,
                scores=pipeline_artifacts.scores,
            )

    def test_mismatched_scores_rejected(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        foreign = PropagationScores(["x"], np.asarray([1.0]))
        with pytest.raises(ValidationError, match="scores"):
            store.save(
                expertise=pipeline_artifacts.expertise,
                affiliation=pipeline_artifacts.affiliation,
                derived=pipeline_artifacts.derived,
                scores=foreign,
            )

    def test_load_without_manifest_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="manifest"):
            ArtifactStore(tmp_path / "empty").load()


class TestVerify:
    def test_clean_store_verifies(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        save_all(store, pipeline_artifacts)
        assert store.verify() == []

    def test_flat_payload_corruption_detected(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        save_all(store, pipeline_artifacts)
        with open(tmp_path / "a" / "expertise.npy", "r+b") as handle:
            handle.seek(-1, 2)
            handle.write(b"\x42")
        assert store.verify() == ["expertise.npy"]

    def test_derived_shard_corruption_detected(self, tmp_path, pipeline_artifacts):
        store = ArtifactStore(tmp_path / "a")
        save_all(store, pipeline_artifacts)
        with open(tmp_path / "a" / "derived" / "shard_00000.vals.npy", "r+b") as handle:
            handle.seek(-1, 2)
            handle.write(b"\x42")
        assert store.verify() == ["derived/shard_00000.vals.npy"]


class TestInMemoryShardingEquivalence:
    def test_sharded_save_of_flat_matrix_preserves_entries(
        self, tmp_path, pipeline_artifacts
    ):
        derived = pipeline_artifacts.derived
        assert isinstance(derived, UserPairMatrix)
        for shards in (1, 2, 3):
            store = ArtifactStore(tmp_path / f"s{shards}")
            save_all(store, pipeline_artifacts, num_shards=shards)
            assert store.load().derived == derived
