"""Tests for the directory-backed shard store."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.shard import ShardStore
from repro.shard.store import FORMAT, MANIFEST_NAME


@pytest.fixture
def store(tmp_path):
    return ShardStore(tmp_path / "store")


class TestArrays:
    def test_write_read_round_trip(self, store):
        values = np.arange(10, dtype=np.int64)
        written = store.write_array("a.npy", values)
        assert written > 0
        loaded = store.read_array("a.npy")
        np.testing.assert_array_equal(np.asarray(loaded), values)

    def test_read_is_memory_mapped_by_default(self, store):
        store.write_array("a.npy", np.arange(4, dtype=np.float64))
        loaded = store.read_array("a.npy")
        assert isinstance(loaded, np.memmap)

    def test_read_heap_copy_on_request(self, store):
        store.write_array("a.npy", np.arange(4, dtype=np.float64))
        loaded = store.read_array("a.npy", mmap=False)
        assert not isinstance(loaded, np.memmap)

    def test_read_missing_payload_rejected(self, store):
        with pytest.raises(ValidationError, match="missing"):
            store.read_array("ghost.npy")

    @pytest.mark.parametrize("name", ["a/b.npy", "..\\up.npy", ".hidden"])
    def test_path_rejects_traversal_and_dotfiles(self, store, name):
        with pytest.raises(ValidationError):
            store.path(name)


class TestManifest:
    def test_round_trip(self, store):
        store.write_manifest({"format": FORMAT, "n_users": 3})
        assert store.has_manifest()
        assert store.read_manifest()["n_users"] == 3

    def test_missing_manifest_rejected(self, store):
        assert not store.has_manifest()
        with pytest.raises(ValidationError, match="manifest"):
            store.read_manifest()

    def test_foreign_format_rejected(self, store):
        store.write_manifest({"format": "something/else"})
        with pytest.raises(ValidationError, match="format"):
            store.read_manifest()


class TestLabels:
    def test_round_trip_preserves_order(self, store):
        store.write_labels(("u1", "u0", "zed"))
        assert store.read_labels() == ("u1", "u0", "zed")

    def test_newlines_in_labels_rejected(self, store):
        with pytest.raises(ValidationError, match="newline"):
            store.write_labels(("ok", "bad\nlabel"))

    def test_missing_labels_file_rejected(self, store):
        with pytest.raises(ValidationError, match="user axis"):
            store.read_labels()


class TestIntegrity:
    def test_checksum_is_stable(self, store):
        store.write_array("a.npy", np.arange(5, dtype=np.int64))
        assert store.checksum("a.npy") == store.checksum("a.npy")

    def test_checksum_changes_with_content(self, store):
        store.write_array("a.npy", np.arange(5, dtype=np.int64))
        before = store.checksum("a.npy")
        store.write_array("a.npy", np.arange(1, 6, dtype=np.int64))
        assert store.checksum("a.npy") != before

    def test_verify_clean_store(self, store):
        store.write_array("a.npy", np.arange(5, dtype=np.int64))
        store.write_manifest(
            {"format": FORMAT, "checksums": {"a.npy": store.checksum("a.npy")}}
        )
        assert store.verify() == []

    def test_verify_detects_corruption(self, store):
        store.write_array("a.npy", np.arange(5, dtype=np.int64))
        store.write_manifest(
            {"format": FORMAT, "checksums": {"a.npy": store.checksum("a.npy")}}
        )
        with open(store.path("a.npy"), "r+b") as handle:
            handle.seek(-1, 2)
            handle.write(b"\xff")
        assert store.verify() == ["a.npy"]

    def test_verify_detects_missing_payload(self, store):
        store.write_manifest({"format": FORMAT, "checksums": {"gone.npy": "00"}})
        assert store.verify() == ["gone.npy"]


class TestTemporary:
    def test_temporary_store_is_usable(self):
        store = ShardStore.temporary()
        store.write_array("a.npy", np.arange(3, dtype=np.int64))
        assert store.path(MANIFEST_NAME).parent.exists()
