"""Tests for the sharded out-of-core pair matrix."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix
from repro.matrix.labels import LabelIndex
from repro.shard import ShardLayout, ShardStore
from repro.shard.matrix import ENTRY_BYTES, ShardedPairMatrix


@pytest.fixture
def users():
    return LabelIndex([f"u{i}" for i in range(8)])


def random_pair(users, seed=3, density=0.4):
    """A matching (UserPairMatrix, ShardedPairMatrix) pair of random content."""
    n = len(users)
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) * (rng.random((n, n)) < density)
    rows, cols = np.nonzero(dense)
    flat = UserPairMatrix.from_arrays(users, rows, cols, dense[rows, cols])
    sharded = ShardedPairMatrix.from_arrays(
        users, rows, cols, dense[rows, cols], num_shards=3
    )
    return flat, sharded


class TestWrites:
    def test_set_block_round_trip(self, users):
        m = ShardedPairMatrix(users, num_shards=3)
        m.set_block([0, 3, 7], [1, 2, 0], [0.5, 0.25, 0.75])
        assert m.get("u0", "u1") == 0.5
        assert m.get("u3", "u2") == 0.25
        assert m.get("u7", "u0") == 0.75
        assert m.num_entries() == 3

    def test_point_set(self, users):
        m = ShardedPairMatrix(users, num_shards=2)
        m.set("u2", "u5", 0.125)
        assert m.get("u2", "u5") == 0.125
        assert m.contains("u2", "u5")
        assert not m.contains("u5", "u2")

    def test_later_writes_win(self, users):
        m = ShardedPairMatrix(users, num_shards=2)
        m.set_block([1, 1], [2, 2], [0.1, 0.9])
        assert m.get("u1", "u2") == 0.9
        m.set("u1", "u2", 0.3)
        assert m.get("u1", "u2") == 0.3

    def test_matches_user_pair_matrix_semantics(self, users):
        flat, sharded = random_pair(users)
        assert sharded == flat
        np.testing.assert_array_equal(sharded.support_keys(), flat.support_keys())
        np.testing.assert_array_equal(sharded.values(), flat.values())
        for a, b in zip(sharded.entries_arrays(), flat.entries_arrays()):
            np.testing.assert_array_equal(a, b)

    def test_set_block_validates_shapes(self, users):
        m = ShardedPairMatrix(users, num_shards=2)
        with pytest.raises(ValidationError, match="equal-length"):
            m.set_block([0, 1], [1], [0.5])
        with pytest.raises(ValidationError, match="values shape"):
            m.set_block([0, 1], [1, 2], [0.5, 0.6, 0.7])

    def test_set_block_validates_bounds_and_finiteness(self, users):
        m = ShardedPairMatrix(users, num_shards=2)
        with pytest.raises(ValidationError, match="positions"):
            m.set_block([0], [99], [0.5])
        with pytest.raises(ValidationError, match="finite"):
            m.set_block([0], [1], [float("nan")])

    def test_scalar_value_broadcast(self, users):
        m = ShardedPairMatrix(users, num_shards=2)
        m.set_block([0, 4], [1, 5], 0.5)
        assert m.get("u0", "u1") == 0.5
        assert m.get("u4", "u5") == 0.5

    def test_layout_must_match_axis(self, users):
        with pytest.raises(ValidationError, match="layout"):
            ShardedPairMatrix(users, ShardLayout.even(5, 2))


class TestSetShardEntries:
    def test_replaces_shard_content(self, users):
        n = len(users)
        m = ShardedPairMatrix(users, ShardLayout(n_rows=n, bounds=(0, 4, 8)))
        m.set("u1", "u1", 0.9)
        keys = np.asarray([0 * n + 1, 2 * n + 3], dtype=np.int64)
        m.set_shard_entries(0, keys, np.asarray([0.5, 0.25]))
        assert m.get("u0", "u1") == 0.5
        assert m.get("u2", "u3") == 0.25
        assert not m.contains("u1", "u1")  # pending write discarded

    def test_rejects_keys_outside_shard(self, users):
        n = len(users)
        m = ShardedPairMatrix(users, ShardLayout(n_rows=n, bounds=(0, 4, 8)))
        with pytest.raises(ValidationError, match="keys must lie"):
            m.set_shard_entries(0, np.asarray([5 * n], dtype=np.int64), np.asarray([0.5]))

    def test_rejects_unsorted_keys(self, users):
        n = len(users)
        m = ShardedPairMatrix(users, ShardLayout(n_rows=n, bounds=(0, 4, 8)))
        with pytest.raises(ValidationError, match="strictly increasing"):
            m.set_shard_entries(
                0, np.asarray([5, 2], dtype=np.int64), np.asarray([0.5, 0.6])
            )


class TestShardViews:
    def test_shard_csr_stacks_to_full_matrix(self, users):
        flat, sharded = random_pair(users)
        from scipy import sparse

        stacked = sparse.vstack(
            [sharded.shard_csr(s) for s in range(sharded.num_shards)]
        ).toarray()
        np.testing.assert_array_equal(stacked, flat.csr().toarray())

    def test_shard_entries_cover_key_ranges(self, users):
        _, sharded = random_pair(users)
        n = len(users)
        for s in range(sharded.num_shards):
            keys, vals = sharded.shard_entries(s)
            lo, hi = sharded.layout.key_range(s, n)
            assert keys.shape == vals.shape
            if keys.shape[0]:
                assert lo <= int(keys[0]) and int(keys[-1]) < hi

    def test_density_matches_flat(self, users):
        flat, sharded = random_pair(users)
        assert sharded.density() == flat.density()

    def test_to_pair_matrix_round_trip(self, users):
        flat, sharded = random_pair(users)
        assert sharded.to_pair_matrix() == flat

    def test_equality_is_symmetric_across_backends(self, users):
        flat, sharded = random_pair(users)
        assert sharded == flat
        assert flat == sharded  # UserPairMatrix.__eq__ returns NotImplemented

    def test_unhashable(self, users):
        _, sharded = random_pair(users)
        with pytest.raises(TypeError, match="unhashable"):
            hash(sharded)


class TestPersistence:
    def test_flush_open_round_trip(self, users, tmp_path):
        flat, _ = random_pair(users)
        store = ShardStore(tmp_path / "m")
        sharded = ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=3, store=store
        )
        manifest = sharded.flush(epoch=7)
        assert manifest["epoch"] == 7
        assert manifest["entries"] == flat.num_entries()
        reopened = ShardedPairMatrix.open(store)
        assert reopened == flat
        assert reopened.users == users

    def test_open_reads_are_memory_mapped(self, users, tmp_path):
        flat, _ = random_pair(users)
        store = ShardStore(tmp_path / "m")
        ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=2, store=store
        ).flush()
        reopened = ShardedPairMatrix.open(store)
        keys, _vals = reopened.shard_entries(0)
        assert isinstance(keys, np.memmap)

    def test_flush_without_store_rejected(self, users):
        m = ShardedPairMatrix(users, num_shards=2)
        with pytest.raises(ValidationError, match="no store"):
            m.flush()

    def test_flushed_store_verifies(self, users, tmp_path):
        flat, _ = random_pair(users)
        store = ShardStore(tmp_path / "m")
        ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=2, store=store
        ).flush()
        assert store.verify() == []

    def test_corruption_fails_verification(self, users, tmp_path):
        flat, _ = random_pair(users)
        store = ShardStore(tmp_path / "m")
        ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=2, store=store
        ).flush()
        with open(store.path("shard_00000.vals.npy"), "r+b") as handle:
            handle.seek(-1, 2)
            handle.write(b"\x13")
        assert store.verify() == ["shard_00000.vals.npy"]

    def test_spill_keeps_result_identical(self, users):
        flat, _ = random_pair(users)
        spilled = ShardedPairMatrix.from_arrays(
            users, *flat.entries_arrays(), num_shards=3, spill_bytes=ENTRY_BYTES
        )
        assert spilled == flat
        assert spilled.store is not None  # auto temp store

    def test_spill_budget_must_be_positive(self, users):
        with pytest.raises(ValidationError, match="spill_bytes"):
            ShardedPairMatrix(users, num_shards=2, spill_bytes=0)

    def test_writes_after_spill_merge_with_disk(self, users):
        m = ShardedPairMatrix(users, num_shards=2, spill_bytes=ENTRY_BYTES)
        m.set_block([0, 1], [1, 2], [0.5, 0.25])  # spills shard 0
        m.set("u0", "u1", 0.75)  # overwrite lands on the spilled shard
        assert m.get("u0", "u1") == 0.75
        assert m.get("u1", "u2") == 0.25


class TestPatchWith:
    def _dense(self, matrix, n):
        out = np.zeros((n, n))
        rows, cols, vals = matrix.entries_arrays()
        out[rows, cols] = vals
        return out

    def test_patch_matches_user_pair_matrix(self, users):
        n = len(users)
        rng = np.random.default_rng(9)
        old_dense = (rng.random((n, n)) * (rng.random((n, n)) < 0.5)).round(3)
        np.fill_diagonal(old_dense, 0.0)
        rows_idx, cols_idx = np.nonzero(old_dense)
        flat = UserPairMatrix.from_arrays(
            users, rows_idx, cols_idx, old_dense[rows_idx, cols_idx]
        )
        sharded = ShardedPairMatrix.from_arrays(
            users, rows_idx, cols_idx, old_dense[rows_idx, cols_idx], num_shards=3
        )
        rows, cols = np.asarray([1, 6]), np.asarray([2])
        region = UserPairMatrix(users)
        region.set_block([1, 6, 0, 1], [3, 2, 2, 2], [0.9, 0.8, 0.7, 0.6])

        expected, expected_kept = flat.patched(users, region, rows=rows, cols=cols)
        kept, patched_shards = sharded.patch_with(region, rows=rows, cols=cols)
        assert kept == expected_kept
        assert patched_shards == sharded.num_shards  # cols touch every shard
        assert sharded == expected

    def test_rows_only_patch_touches_owning_shards_only(self, users):
        n = len(users)
        layout = ShardLayout(n_rows=n, bounds=(0, 4, 8))
        sharded = ShardedPairMatrix.from_arrays(
            users, [0, 5], [1, 6], [0.5, 0.25], layout=layout
        )
        region = UserPairMatrix(users)
        region.set("u1", "u3", 0.9)
        kept, patched_shards = sharded.patch_with(
            region, rows=np.asarray([1]), cols=np.empty(0, dtype=np.int64)
        )
        assert patched_shards == 1
        assert kept == 2  # both old entries outside the changed row survive
        assert sharded.get("u1", "u3") == 0.9

    def test_patch_rejects_foreign_axis(self, users):
        sharded = ShardedPairMatrix(users, num_shards=2)
        region = UserPairMatrix(LabelIndex(["a", "b"]))
        with pytest.raises(ValidationError, match="user axis"):
            sharded.patch_with(
                region, rows=np.asarray([0]), cols=np.empty(0, dtype=np.int64)
            )

    def test_patch_rejects_out_of_range_positions(self, users):
        sharded = ShardedPairMatrix(users, num_shards=2)
        region = UserPairMatrix(users)
        with pytest.raises(ValidationError, match="rows positions"):
            sharded.patch_with(
                region, rows=np.asarray([99]), cols=np.empty(0, dtype=np.int64)
            )
