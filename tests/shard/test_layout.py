"""Tests for the row-block shard layout."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.shard import ShardLayout


class TestConstruction:
    def test_even_split_covers_all_rows(self):
        layout = ShardLayout.even(10, 4)
        assert layout.bounds[0] == 0
        assert layout.bounds[-1] == 10
        assert layout.num_shards == 4
        assert sum(layout.rows_in(s) for s in range(4)) == 10

    def test_even_split_is_near_equal(self):
        layout = ShardLayout.even(100, 3)
        sizes = [layout.rows_in(s) for s in range(layout.num_shards)]
        assert max(sizes) - min(sizes) <= 1

    def test_even_clamps_shards_to_rows(self):
        layout = ShardLayout.even(2, 8)
        assert layout.num_shards == 2
        assert all(layout.rows_in(s) >= 1 for s in range(layout.num_shards))

    def test_even_zero_rows_single_empty_shard(self):
        layout = ShardLayout.even(0, 4)
        assert layout.num_shards == 1
        assert layout.rows_in(0) == 0

    def test_even_rejects_nonpositive_shards(self):
        with pytest.raises(ValidationError):
            ShardLayout.even(10, 0)

    def test_for_rows_per_shard(self):
        layout = ShardLayout.for_rows_per_shard(10, 4)
        assert layout.bounds == (0, 4, 8, 10)

    def test_for_rows_per_shard_exact_multiple(self):
        layout = ShardLayout.for_rows_per_shard(8, 4)
        assert layout.bounds == (0, 4, 8)

    def test_for_rows_per_shard_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ShardLayout.for_rows_per_shard(10, 0)

    def test_bounds_must_start_at_zero(self):
        with pytest.raises(ValidationError):
            ShardLayout(n_rows=5, bounds=(1, 5))

    def test_bounds_must_end_at_n_rows(self):
        with pytest.raises(ValidationError):
            ShardLayout(n_rows=5, bounds=(0, 4))

    def test_bounds_must_be_monotonic(self):
        with pytest.raises(ValidationError):
            ShardLayout(n_rows=5, bounds=(0, 3, 2, 5))

    def test_negative_rows_rejected(self):
        with pytest.raises(ValidationError):
            ShardLayout(n_rows=-1, bounds=(0, -1))


class TestQueries:
    def test_row_range(self):
        layout = ShardLayout(n_rows=10, bounds=(0, 3, 7, 10))
        assert layout.row_range(0) == (0, 3)
        assert layout.row_range(1) == (3, 7)
        assert layout.row_range(2) == (7, 10)

    def test_row_range_rejects_out_of_range_shard(self):
        layout = ShardLayout.even(10, 2)
        with pytest.raises(ValidationError):
            layout.row_range(2)
        with pytest.raises(ValidationError):
            layout.row_range(-1)

    def test_shard_of_rows_assigns_every_row_once(self):
        layout = ShardLayout(n_rows=10, bounds=(0, 3, 7, 10))
        shards = layout.shard_of_rows(np.arange(10, dtype=np.int64))
        expected = [0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
        assert shards.tolist() == expected

    def test_shard_of_rows_boundary_rows_belong_to_upper_shard(self):
        layout = ShardLayout(n_rows=10, bounds=(0, 5, 10))
        shards = layout.shard_of_rows(np.asarray([4, 5], dtype=np.int64))
        assert shards.tolist() == [0, 1]

    def test_shards_for_rows_unique_sorted(self):
        layout = ShardLayout(n_rows=10, bounds=(0, 3, 7, 10))
        touched = layout.shards_for_rows(np.asarray([9, 0, 1, 8], dtype=np.int64))
        assert touched.tolist() == [0, 2]

    def test_shards_for_rows_empty(self):
        layout = ShardLayout.even(10, 2)
        assert layout.shards_for_rows(np.empty(0, dtype=np.int64)).size == 0

    def test_key_range_scales_rows_by_columns(self):
        layout = ShardLayout(n_rows=10, bounds=(0, 3, 7, 10))
        assert layout.key_range(1, 10) == (30, 70)

    def test_iteration_yields_ordered_triples(self):
        layout = ShardLayout(n_rows=10, bounds=(0, 3, 7, 10))
        assert list(layout) == [(0, 0, 3), (1, 3, 7), (2, 7, 10)]

    def test_layout_is_frozen(self):
        layout = ShardLayout.even(10, 2)
        with pytest.raises(AttributeError):
            layout.n_rows = 5
