"""Property tests: the sharded path is bitwise-equal to the in-memory one.

Random communities (affiliation/expertise pairs), random shard layouts
and random spill budgets -- ``derive_sharded`` must equal ``derive``
entry for entry, and eigentrust over the sharded matrix must reproduce
the dense scores and iteration count exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix import UserCategoryMatrix
from repro.propagation import eigen_trust
from repro.shard import ShardLayout, ShardStore
from repro.shard.matrix import ENTRY_BYTES, ShardedPairMatrix
from repro.trust import TrustDeriver


@st.composite
def communities(draw):
    """A random (affiliation, expertise) pair on a shared user axis."""
    num_users = draw(st.integers(2, 12))
    num_categories = draw(st.integers(1, 4))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    density = draw(st.floats(0.1, 1.0))

    def unit_matrix():
        values = rng.random((num_users, num_categories))
        return values * (rng.random((num_users, num_categories)) < density)

    users = [f"u{i}" for i in range(num_users)]
    categories = [f"c{j}" for j in range(num_categories)]
    A = UserCategoryMatrix(users, categories, unit_matrix())
    E = UserCategoryMatrix(users, categories, unit_matrix())
    return A, E


@st.composite
def sharding(draw):
    """A (num_shards, spill_bytes | None) configuration."""
    num_shards = draw(st.integers(1, 6))
    spill = draw(
        st.one_of(st.none(), st.just(ENTRY_BYTES), st.integers(1, 10_000))
    )
    return num_shards, spill


class TestDeriveSharded:
    @given(communities(), sharding())
    @settings(max_examples=60, deadline=None)
    def test_bitwise_equal_to_derive(self, matrices, config):
        A, E = matrices
        num_shards, spill = config
        deriver = TrustDeriver()
        dense = deriver.derive(A, E)
        sharded = deriver.derive_sharded(
            A, E, num_shards=num_shards, spill_bytes=spill
        )
        assert sharded == dense
        for a, b in zip(sharded.entries_arrays(), dense.entries_arrays()):
            np.testing.assert_array_equal(a, b)

    @given(communities(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_layout_bitwise_equal(self, matrices, data):
        """Uneven, hand-drawn shard bounds must not change a single bit."""
        A, E = matrices
        n = len(A.users)
        cuts = data.draw(
            st.lists(st.integers(0, n), max_size=4).map(sorted), label="cuts"
        )
        bounds = tuple(dict.fromkeys([0, *cuts, n]))
        layout = ShardLayout(n_rows=n, bounds=bounds)
        deriver = TrustDeriver()
        dense = deriver.derive(A, E)
        assert deriver.derive_sharded(A, E, layout=layout) == dense

    @given(communities(), sharding())
    @settings(max_examples=30, deadline=None)
    def test_flush_open_round_trip_bitwise(self, tmp_path_factory, matrices, config):
        A, E = matrices
        num_shards, spill = config
        store = ShardStore(tmp_path_factory.mktemp("prop") / "s")
        sharded = TrustDeriver().derive_sharded(
            A, E, num_shards=num_shards, store=store, spill_bytes=spill
        )
        sharded.flush()
        assert ShardedPairMatrix.open(store) == TrustDeriver().derive(A, E)


class TestEigentrustSharded:
    @given(communities(), sharding())
    @settings(max_examples=40, deadline=None)
    def test_scores_and_iterations_match_dense(self, matrices, config):
        A, E = matrices
        num_shards, spill = config
        deriver = TrustDeriver()
        dense = deriver.derive(A, E)
        sharded = deriver.derive_sharded(
            A, E, num_shards=num_shards, spill_bytes=spill
        )
        reference = eigen_trust(dense)
        streamed = eigen_trust(sharded)
        np.testing.assert_array_equal(
            streamed.scores_array(), reference.scores_array()
        )
        assert streamed.iterations == reference.iterations
        assert streamed.converged == reference.converged
