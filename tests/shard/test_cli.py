"""Tests for the ``repro shard`` CLI subcommand."""

import numpy as np
import pytest

from repro.cli import main
from repro.shard import ShardStore
from repro.shard.store import FORMAT


@pytest.fixture
def built_store(tmp_path):
    store_dir = str(tmp_path / "artifacts")
    assert (
        main(["shard", "build", "--store", store_dir, "--users", "60", "--seed", "11"])
        == 0
    )
    return store_dir


class TestBuild:
    def test_build_reports_summary(self, capsys, tmp_path):
        store_dir = str(tmp_path / "artifacts")
        assert main(["shard", "build", "--store", store_dir, "--users", "60"]) == 0
        out = capsys.readouterr().out
        assert "derived pairs" in out
        assert "60 users" in out
        assert store_dir in out

    def test_build_writes_trace(self, tmp_path, capsys):
        store_dir = str(tmp_path / "artifacts")
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "shard",
                    "build",
                    "--store",
                    store_dir,
                    "--users",
                    "60",
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        assert trace.exists()


class TestInspect:
    def test_inspect_prints_manifest_tables(self, built_store, capsys):
        assert main(["shard", "inspect", "--store", built_store]) == 0
        out = capsys.readouterr().out
        assert "Artifacts:" in out
        assert "epoch" in out
        assert "Shards" in out
        assert "[0," in out  # first row range


class TestVerify:
    def test_verify_clean_artifact_store(self, built_store, capsys):
        assert main(["shard", "verify", "--store", built_store]) == 0
        out = capsys.readouterr().out
        assert "all checksums match" in out

    def test_verify_fails_on_corruption(self, built_store, tmp_path, capsys):
        target = tmp_path / "artifacts" / "expertise.npy"
        with open(target, "r+b") as handle:
            handle.seek(-1, 2)
            handle.write(b"\x42")
        assert main(["shard", "verify", "--store", built_store]) == 1
        out = capsys.readouterr().out
        assert "CHECKSUM MISMATCH" in out
        assert "expertise.npy" in out

    def test_verify_accepts_bare_shard_store(self, tmp_path, capsys):
        store = ShardStore(tmp_path / "bare")
        store.write_array("a.npy", np.arange(4, dtype=np.int64))
        store.write_manifest(
            {"format": FORMAT, "checksums": {"a.npy": store.checksum("a.npy")}}
        )
        assert main(["shard", "verify", "--store", str(tmp_path / "bare")]) == 0
        assert "verified 1 payloads" in capsys.readouterr().out
