"""Shared fixtures: small hand-built communities with known structure."""

import pytest

from repro.community import (
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)


@pytest.fixture
def two_category_community():
    """A deterministic 5-user, 2-category community.

    Structure (categories: ``movies``, ``books``):

    - **alice** writes two movie reviews (ra1 on m1, ra2 on m2);
    - **bob** writes one movie review (rb1 on m1) and rates alice's reviews;
    - **carol** writes one book review (rc1 on b1);
    - **dave** only rates (movies and books);
    - **eve** is completely inactive.

    Ratings: bob->ra1 1.0, dave->ra1 0.8, bob->ra2 0.8, dave->rb1 0.4,
    alice->rc1 0.6, dave->rc1 0.6.

    Explicit trust: bob->alice, dave->alice, alice->carol.
    """
    return Community.from_records(
        name="fixture",
        users=["alice", "bob", "carol", "dave", "eve"],
        categories=["movies", "books"],
        objects=[
            ReviewedObject("m1", "movies"),
            ReviewedObject("m2", "movies"),
            ReviewedObject("b1", "books"),
        ],
        reviews=[
            Review("ra1", "alice", "m1"),
            Review("ra2", "alice", "m2"),
            Review("rb1", "bob", "m1"),
            Review("rc1", "carol", "b1"),
        ],
        ratings=[
            ReviewRating("bob", "ra1", 1.0),
            ReviewRating("dave", "ra1", 0.8),
            ReviewRating("bob", "ra2", 0.8),
            ReviewRating("dave", "rb1", 0.4),
            ReviewRating("alice", "rc1", 0.6),
            ReviewRating("dave", "rc1", 0.6),
        ],
        trust=[
            TrustStatement("bob", "alice"),
            TrustStatement("dave", "alice"),
            TrustStatement("alice", "carol"),
        ],
    )
