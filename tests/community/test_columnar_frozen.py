"""The cached columnar snapshot is physically read-only.

``Community.columns()`` hands the same :class:`CommunityColumns` object to
every consumer, so each array is frozen with ``setflags(write=False)``:
an accidental in-place write raises instead of silently corrupting the
shared cache (the runtime counterpart of the R4 lint rule).
"""

import numpy as np
import pytest

COLUMN_ATTRS = [
    "review_writer_idx",
    "review_category_idx",
    "review_cat_starts",
    "rater_idx",
    "rating_review_idx",
    "rating_category_idx",
    "rating_values",
    "srt_rater_idx",
    "srt_review_idx",
    "srt_values",
    "rating_cat_starts",
]


@pytest.fixture
def columns(two_category_community):
    return two_category_community.columns()


class TestFrozenColumns:
    @pytest.mark.parametrize("attr", COLUMN_ATTRS)
    def test_column_is_read_only(self, columns, attr):
        array = getattr(columns, attr)
        assert not array.flags.writeable
        with pytest.raises(ValueError):
            array[0] = 0

    @pytest.mark.parametrize("attr", COLUMN_ATTRS)
    def test_empty_community_columns_are_read_only(self, attr):
        from repro.community import Community

        community = Community("empty")
        community.add_user("u")
        community.add_category("c")
        assert not getattr(community.columns(), attr).flags.writeable

    def test_memo_matrices_are_read_only(self, columns):
        for matrix in (columns.writing_counts_matrix(), columns.rating_counts_matrix()):
            assert not matrix.flags.writeable
            with pytest.raises(ValueError):
                matrix[0, 0] = 7

    def test_memo_matrices_copy_is_mutable(self, columns):
        copy = columns.writing_counts_matrix().copy()
        copy[0, 0] = 7  # the documented escape hatch
        assert columns.writing_counts_matrix()[0, 0] == 2  # alice x movies

    def test_pair_group_memo_is_read_only(self, columns):
        for array in columns._grouped_pairs():
            assert not array.flags.writeable

    def test_fancy_indexed_reads_are_private_copies(self, columns):
        sl = columns.ratings_slice("movies")
        values = columns.srt_values[sl].copy()
        values[:] = -1.0  # mutating the copy must not reach the cache
        assert np.all(columns.srt_values[sl] != -1.0)

    def test_readers_still_work_on_frozen_state(self, columns):
        assert columns.rating_triples("movies")
        assert columns.writing_counts("movies") == {"alice": 2, "bob": 1}
        assert columns.direct_connections()
        rater, writer, counts, means = columns.direct_connection_arrays()
        assert len(rater) == len(writer) == len(counts) == len(means)
