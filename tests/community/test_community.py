"""Tests for the Community aggregate."""

import pytest

from repro.common.errors import IntegrityError, ValidationError
from repro.community import (
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)


@pytest.fixture
def community():
    """A small two-category community.

    c1 (movies): object o1 reviewed by u1 (r1) and u2 (r2); o2 reviewed by u1 (r3).
    c2 (books):  object o3 reviewed by u3 (r4).
    Ratings: u2->r1 (0.8), u3->r1 (1.0), u1->r2 (0.6), u2->r4 (0.4).
    Trust: u2 -> u1.
    """
    c = Community("test")
    for user in ("u1", "u2", "u3"):
        c.add_user(user)
    c.add_category("c1", "movies")
    c.add_category("c2", "books")
    c.add_object(ReviewedObject("o1", "c1"))
    c.add_object(ReviewedObject("o2", "c1"))
    c.add_object(ReviewedObject("o3", "c2"))
    c.add_review(Review("r1", "u1", "o1"))
    c.add_review(Review("r2", "u2", "o1"))
    c.add_review(Review("r3", "u1", "o2"))
    c.add_review(Review("r4", "u3", "o3"))
    c.add_rating(ReviewRating("u2", "r1", 0.8))
    c.add_rating(ReviewRating("u3", "r1", 1.0))
    c.add_rating(ReviewRating("u1", "r2", 0.6))
    c.add_rating(ReviewRating("u2", "r4", 0.4))
    c.add_trust(TrustStatement("u2", "u1"))
    return c


class TestRegistration:
    def test_counts(self, community):
        assert community.num_users() == 3
        assert community.num_categories() == 2
        assert community.num_reviews() == 4
        assert community.num_ratings() == 4
        assert community.num_trust_edges() == 1

    def test_duplicate_user_rejected(self, community):
        with pytest.raises(IntegrityError):
            community.add_user("u1")

    def test_object_requires_existing_category(self, community):
        with pytest.raises(IntegrityError):
            community.add_object(ReviewedObject("oX", "ghost"))

    def test_user_ids_order(self, community):
        assert community.user_ids() == ["u1", "u2", "u3"]

    def test_has_user(self, community):
        assert community.has_user("u1")
        assert not community.has_user("ghost")


class TestDomainRules:
    def test_one_review_per_writer_object(self, community):
        with pytest.raises(IntegrityError, match="unique"):
            community.add_review(Review("r9", "u1", "o1"))

    def test_review_requires_existing_object(self, community):
        with pytest.raises(IntegrityError, match="unknown object"):
            community.add_review(Review("r9", "u1", "ghost"))

    def test_review_requires_existing_writer(self, community):
        with pytest.raises(IntegrityError):
            community.add_review(Review("r9", "ghost", "o3"))

    def test_no_self_rating(self, community):
        with pytest.raises(IntegrityError, match="own review"):
            community.add_rating(ReviewRating("u1", "r1", 0.8))

    def test_one_rating_per_rater_review(self, community):
        with pytest.raises(IntegrityError, match="duplicate primary key"):
            community.add_rating(ReviewRating("u2", "r1", 0.2))

    def test_rating_requires_existing_review(self, community):
        with pytest.raises(IntegrityError, match="unknown review"):
            community.add_rating(ReviewRating("u2", "ghost", 0.2))

    def test_trust_requires_existing_users(self, community):
        with pytest.raises(IntegrityError):
            community.add_trust(TrustStatement("u1", "ghost"))

    def test_duplicate_trust_rejected(self, community):
        with pytest.raises(IntegrityError):
            community.add_trust(TrustStatement("u2", "u1"))


class TestCategoryScopedReads:
    def test_reviews_in_category(self, community):
        ids = {r.review_id for r in community.reviews_in_category("c1")}
        assert ids == {"r1", "r2", "r3"}

    def test_review_category_inherited_from_object(self, community):
        assert community.review_category("r1") == "c1"
        assert community.review_category("r4") == "c2"

    def test_review_writer(self, community):
        assert community.review_writer("r2") == "u2"

    def test_unknown_review_raises(self, community):
        with pytest.raises(ValidationError):
            community.review_category("ghost")

    def test_unknown_category_raises(self, community):
        with pytest.raises(ValidationError):
            community.reviews_in_category("ghost")

    def test_num_reviews_per_category(self, community):
        assert community.num_reviews("c1") == 3
        assert community.num_reviews("c2") == 1

    def test_num_ratings_per_category(self, community):
        assert community.num_ratings("c1") == 3
        assert community.num_ratings("c2") == 1

    def test_object_ids_scoped(self, community):
        assert community.object_ids("c1") == ["o1", "o2"]


class TestRatingsAccess:
    def test_ratings_of_review(self, community):
        assert community.ratings_of_review("r1") == [("u2", 0.8), ("u3", 1.0)]

    def test_ratings_of_unrated_review(self, community):
        assert community.ratings_of_review("r3") == []

    def test_reviews_by_writer_scoped(self, community):
        assert set(community.reviews_by_writer("u1")) == {"r1", "r3"}
        assert community.reviews_by_writer("u1", "c1") == ["r1", "r3"]
        assert community.reviews_by_writer("u1", "c2") == []

    def test_ratings_by_rater_scoped(self, community):
        assert community.ratings_by_rater("u2") == [("r1", 0.8), ("r4", 0.4)]
        assert community.ratings_by_rater("u2", "c2") == [("r4", 0.4)]


class TestActivityCounts:
    def test_writing_counts(self, community):
        assert community.writing_counts("c1") == {"u1": 2, "u2": 1}
        assert community.writing_counts("c2") == {"u3": 1}

    def test_rating_counts(self, community):
        assert community.rating_counts("c1") == {"u2": 1, "u3": 1, "u1": 1}
        assert community.rating_counts("c2") == {"u2": 1}


class TestPairwiseRelations:
    def test_direct_connections(self, community):
        pairs = community.direct_connections()
        assert pairs[("u2", "u1")] == [0.8]
        assert pairs[("u3", "u1")] == [1.0]
        assert pairs[("u1", "u2")] == [0.6]
        assert pairs[("u2", "u3")] == [0.4]
        assert len(pairs) == 4

    def test_multiple_ratings_same_pair_accumulate(self, community):
        # u2 also rates r3 (another review by u1)
        community.add_rating(ReviewRating("u2", "r3", 0.2))
        pairs = community.direct_connections()
        assert pairs[("u2", "u1")] == [0.8, 0.2]

    def test_trust_edges(self, community):
        assert community.trust_edges() == [("u2", "u1")]
        assert community.trusts("u2", "u1")
        assert not community.trusts("u1", "u2")


class TestBulkConstruction:
    def test_from_records_roundtrip(self, community):
        rebuilt = Community.from_records(
            users=community.user_ids(),
            categories=community.category_ids(),
            objects=[
                ReviewedObject("o1", "c1"),
                ReviewedObject("o2", "c1"),
                ReviewedObject("o3", "c2"),
            ],
            reviews=list(community.iter_reviews()),
            ratings=list(community.iter_ratings()),
            trust=[TrustStatement(s, t) for s, t in community.trust_edges()],
        )
        assert rebuilt.summary() == community.summary()
        assert rebuilt.direct_connections() == community.direct_connections()

    def test_summary_keys(self, community):
        assert set(community.summary()) == {
            "users",
            "categories",
            "objects",
            "reviews",
            "ratings",
            "trust",
        }

    def test_database_integrity_clean(self, community):
        assert community.database.verify_integrity() == []
