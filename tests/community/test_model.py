"""Tests for community value types."""

import pytest

from repro.common.errors import ValidationError
from repro.community import (
    HELPFULNESS_SCALE,
    Category,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
    User,
)
from repro.community.model import is_on_scale


class TestHelpfulnessScale:
    def test_five_stages_matching_the_paper(self):
        assert HELPFULNESS_SCALE == (0.2, 0.4, 0.6, 0.8, 1.0)

    @pytest.mark.parametrize("value", HELPFULNESS_SCALE)
    def test_stage_values_on_scale(self, value):
        assert is_on_scale(value)

    def test_tolerates_float_noise(self):
        assert is_on_scale(0.2 + 1e-12)
        assert is_on_scale(1.0 - 1e-12)

    @pytest.mark.parametrize("value", [0.0, 0.3, 1.2, -0.2, "0.2", True, None])
    def test_off_scale_values(self, value):
        assert not is_on_scale(value)


class TestEntityValidation:
    def test_user_requires_nonempty_id(self):
        with pytest.raises(ValidationError):
            User(user_id="")

    def test_category_requires_nonempty_id(self):
        with pytest.raises(ValidationError):
            Category(category_id="")

    def test_object_requires_category(self):
        with pytest.raises(ValidationError):
            ReviewedObject(object_id="o1", category_id="")

    def test_review_requires_all_ids(self):
        with pytest.raises(ValidationError):
            Review(review_id="r1", writer_id="", object_id="o1")

    def test_rating_requires_scale_value(self):
        with pytest.raises(ValidationError, match="rating value"):
            ReviewRating(rater_id="u1", review_id="r1", value=0.5)

    def test_rating_on_scale_accepted(self):
        rating = ReviewRating(rater_id="u1", review_id="r1", value=0.8)
        assert rating.value == 0.8

    def test_trust_statement_rejects_self_trust(self):
        with pytest.raises(ValidationError, match="themselves"):
            TrustStatement(truster_id="u1", trustee_id="u1")

    def test_entities_are_frozen(self):
        user = User(user_id="u1")
        with pytest.raises(AttributeError):
            user.user_id = "u2"

    def test_entities_are_hashable(self):
        assert len({User("u1"), User("u1"), User("u2")}) == 2
