"""Tests for the structured change log: Delta records and epoch semantics."""

import pytest

from repro.common.errors import ValidationError
from repro.community import (
    ChangeLog,
    Community,
    Delta,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)


class TestChangeLog:
    def test_fresh_log_is_empty_at_epoch_zero(self):
        log = ChangeLog()
        assert log.epoch == 0
        assert len(log) == 0
        assert log.since(0) == ()

    def test_record_assigns_monotonic_epochs(self):
        log = ChangeLog()
        first = log.record("user", user_id="alice")
        second = log.record("rating", user_id="bob", category_id="movies")
        assert (first.epoch, second.epoch) == (1, 2)
        assert log.epoch == 2
        assert list(log) == [first, second]

    def test_record_rejects_unknown_kind(self):
        with pytest.raises(ValidationError):
            ChangeLog().record("merge")

    def test_since_returns_suffix_oldest_first(self):
        log = ChangeLog()
        for i in range(4):
            log.record("user", user_id=f"u{i}")
        tail = log.since(2)
        assert [d.epoch for d in tail] == [3, 4]
        assert log.since(4) == ()
        assert len(log.since(0)) == 4

    @pytest.mark.parametrize("cursor", [-1, 5])
    def test_since_rejects_out_of_range_cursor(self, cursor):
        log = ChangeLog()
        log.record("user", user_id="a")
        with pytest.raises(ValidationError):
            log.since(cursor)

    def test_count_growth_ignores_unencoded_kinds(self):
        log = ChangeLog()
        log.record("user", user_id="a")
        log.record("category", category_id="c")
        log.record("object", target_id="o1", category_id="c")
        log.record("review", user_id="a", category_id="c", target_id="r1")
        log.record("rating", user_id="b", category_id="c", target_id="r1")
        log.record("trust", user_id="a", target_id="b")
        log.record("touch")
        assert log.count_growth(0) == (1, 1, 1, 1)
        assert log.count_growth(log.epoch) == (0, 0, 0, 0)

    def test_deltas_are_immutable(self):
        delta = ChangeLog().record("user", user_id="a")
        with pytest.raises(AttributeError):
            delta.kind = "trust"


class TestMutatorsEmitDeltas:
    """Every Community mutator appends exactly one structured delta (rule R7)."""

    def test_full_mutation_sequence(self):
        community = Community("log")
        community.add_user("alice")
        community.add_user("bob")
        community.add_category("movies")
        community.add_object(ReviewedObject("m1", "movies"))
        community.add_review(Review("r1", "alice", "m1"))
        community.add_rating(ReviewRating("bob", "r1", 0.8))
        community.add_trust(TrustStatement("bob", "alice"))

        log = community.change_log
        assert log.epoch == 7
        kinds = [d.kind for d in log]
        assert kinds == [
            "user", "user", "category", "object", "review", "rating", "trust",
        ]
        rating = log.since(5)[0]
        assert rating == Delta(
            epoch=6,
            kind="rating",
            user_id="bob",
            category_id="movies",
            target_id="r1",
        )
        trust = log.since(6)[0]
        assert (trust.user_id, trust.target_id) == ("bob", "alice")

    def test_review_delta_carries_object_category(self, two_category_community):
        epoch = two_category_community.change_log.epoch
        two_category_community.add_review(Review("rb7", "bob", "m2"))
        (delta,) = two_category_community.change_log.since(epoch)
        assert delta.kind == "review"
        assert delta.category_id == "movies"
        assert delta.user_id == "bob"

    def test_failed_mutation_logs_nothing(self, two_category_community):
        epoch = two_category_community.change_log.epoch
        from repro.common.errors import IntegrityError

        with pytest.raises(IntegrityError):
            two_category_community.add_review(Review("rx", "bob", "ghost"))
        assert two_category_community.change_log.epoch == epoch

    def test_touch_records_explicit_recompute(self, two_category_community):
        epoch = two_category_community.change_log.epoch
        two_category_community.touch("movies")
        two_category_community.touch()
        targeted, blanket = two_category_community.change_log.since(epoch)
        assert (targeted.kind, targeted.category_id) == ("touch", "movies")
        assert (blanket.kind, blanket.category_id) == ("touch", None)

    def test_touch_unknown_category_rejected(self, two_category_community):
        with pytest.raises(ValidationError):
            two_category_community.touch("ghost")

    def test_logs_are_per_community(self):
        a, b = Community("a"), Community("b")
        a.add_user("u1")
        assert a.change_log.epoch == 1
        assert b.change_log.epoch == 0
        with pytest.raises(ValidationError):
            b.change_log.since(1)


class TestCompaction:
    def filled_log(self, n=5):
        log = ChangeLog()
        for i in range(n):
            log.record("user", user_id=f"u{i}")
        return log

    def test_compact_drops_prefix_and_advances_floor(self):
        log = self.filled_log(5)
        assert log.compact(3) == 3
        assert log.floor == 3
        assert len(log) == 2
        assert log.epoch == 5  # epochs are never renamed

    def test_retained_deltas_keep_their_epochs(self):
        log = self.filled_log(5)
        log.compact(3)
        assert [d.epoch for d in log.since(3)] == [4, 5]

    def test_compact_defaults_to_everything(self):
        log = self.filled_log(4)
        assert log.compact() == 4
        assert len(log) == 0
        assert log.since(4) == ()

    def test_since_rejects_cursor_below_floor(self):
        log = self.filled_log(5)
        log.compact(3)
        with pytest.raises(ValidationError, match=r"\[3, 5\]"):
            log.since(2)

    def test_compact_is_idempotent(self):
        log = self.filled_log(5)
        log.compact(3)
        assert log.compact(3) == 0
        assert log.compact(2) == 0  # below the floor is a no-op, not an error
        assert log.floor == 3

    def test_compact_rejects_out_of_range_point(self):
        log = self.filled_log(3)
        with pytest.raises(ValidationError):
            log.compact(7)
        with pytest.raises(ValidationError):
            log.compact(-1)

    def test_compact_empty_log_is_noop(self):
        log = ChangeLog()
        assert log.compact() == 0
        assert log.floor == 0

    def test_recording_resumes_after_compaction(self):
        log = self.filled_log(3)
        log.compact()
        delta = log.record("user", user_id="late")
        assert delta.epoch == 4
        assert log.since(3) == (delta,)
