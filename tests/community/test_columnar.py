"""Tests for the cached columnar view of a community's reviews and ratings."""

import numpy as np
import pytest

from repro.community import (
    CommunityColumns,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)


def scan_direct_connections(community):
    """Row-scan oracle for the relation R (first-seen order, insertion values)."""
    writers = {
        row["review_id"]: row["writer_id"]
        for row in community.database.table("reviews").rows()
    }
    pairs = {}
    for row in community.database.table("ratings").rows():
        pairs.setdefault((row["rater_id"], writers[row["review_id"]]), []).append(
            row["value"]
        )
    return pairs


class TestEncoding:
    def test_axes_cover_community(self, two_category_community):
        columns = two_category_community.columns()
        assert list(columns.users) == two_category_community.user_ids()
        assert list(columns.categories) == ["movies", "books"]
        assert columns.num_reviews == 4
        assert columns.num_ratings == 6

    def test_review_axis_is_category_major(self, two_category_community):
        columns = two_category_community.columns()
        assert np.array_equal(
            columns.review_category_idx, np.sort(columns.review_category_idx)
        )
        # movies reviews (ra1, ra2, rb1) precede the books review (rc1)
        assert columns.review_ids == ("ra1", "ra2", "rb1", "rc1")
        assert columns.reviews_slice("movies") == slice(0, 3)
        assert columns.reviews_slice("books") == slice(3, 4)

    def test_writer_column_matches_reviews(self, two_category_community):
        columns = two_category_community.columns()
        labels = columns.users.labels
        writers = [labels[i] for i in columns.review_writer_idx.tolist()]
        assert writers == ["alice", "alice", "bob", "carol"]

    def test_rating_columns_keep_insertion_order(self, two_category_community):
        columns = two_category_community.columns()
        labels = columns.users.labels
        raters = [labels[i] for i in columns.rater_idx.tolist()]
        assert raters == ["bob", "dave", "bob", "dave", "alice", "dave"]
        assert columns.rating_values.tolist() == [1.0, 0.8, 0.8, 0.4, 0.6, 0.6]


class TestReaders:
    def test_rating_triples_match_legacy_shape(self, two_category_community):
        columns = two_category_community.columns()
        assert columns.rating_triples("movies") == [
            ("bob", "ra1", 1.0),
            ("dave", "ra1", 0.8),
            ("bob", "ra2", 0.8),
            ("dave", "rb1", 0.4),
        ]
        assert columns.rating_triples("books") == [
            ("alice", "rc1", 0.6),
            ("dave", "rc1", 0.6),
        ]

    def test_counts_first_seen_order(self, two_category_community):
        columns = two_category_community.columns()
        assert columns.writing_counts("movies") == {"alice": 2, "bob": 1}
        assert columns.rating_counts("movies") == {"bob": 2, "dave": 2}
        assert list(columns.rating_counts("movies")) == ["bob", "dave"]

    def test_count_matrices(self, two_category_community):
        columns = two_category_community.columns()
        writing = columns.writing_counts_matrix()
        rating = columns.rating_counts_matrix()
        users = columns.users
        movies = columns.categories.position("movies")
        assert writing[users.position("alice"), movies] == 2
        assert writing[users.position("eve"), :].sum() == 0
        assert rating[users.position("dave"), :].sum() == 3

    def test_direct_connections_match_row_scan(self, two_category_community):
        columns = two_category_community.columns()
        expected = scan_direct_connections(two_category_community)
        got = columns.direct_connections()
        assert got == expected
        assert list(got) == list(expected)  # first-seen key order too

    def test_direct_connection_arrays_drop_self_pairs(self, two_category_community):
        # add_rating forbids self-ratings, so plant one through the raw
        # store (as a bulk import could) -- the pair layer must drop it
        two_category_community.database.insert(
            "ratings",
            {
                "rater_id": "alice",
                "review_id": "ra1",
                "category_id": "movies",
                "value": 0.8,
            },
        )
        columns = two_category_community.columns()
        rater, writer, counts, means = columns.direct_connection_arrays()
        labels = columns.users.labels
        pairs = {
            (labels[r], labels[w]): (int(c), float(m))
            for r, w, c, m in zip(rater, writer, counts, means)
        }
        assert ("alice", "alice") not in pairs
        assert pairs[("bob", "alice")] == (2, pytest.approx(0.9))
        with_self = columns.direct_connection_arrays(include_self=True)
        n_self = sum(1 for r, w in zip(with_self[0], with_self[1]) if r == w)
        assert n_self == 1


class TestCaching:
    def test_cache_hit_returns_same_object(self, two_category_community):
        assert two_category_community.columns() is two_category_community.columns()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: c.add_user("frank"),
            lambda c: c.add_category("music"),
            lambda c: c.add_review(Review("rb9", "bob", "m2")),
            lambda c: c.add_rating(ReviewRating("carol", "ra1", 0.2)),
        ],
    )
    def test_encoded_mutations_rebuild_snapshot(self, two_category_community, mutate):
        before = two_category_community.columns()
        version = two_category_community.version
        mutate(two_category_community)
        assert two_category_community.version == version + 1
        assert two_category_community.columns() is not before

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda c: c.add_object(ReviewedObject("m9", "movies")),
            lambda c: c.add_trust(TrustStatement("carol", "bob")),
        ],
    )
    def test_unencoded_mutations_keep_snapshot(self, two_category_community, mutate):
        # objects and trust statements never enter the columnar view, so
        # their (announced) deltas are pure cache hits
        before = two_category_community.columns()
        mutate(two_category_community)
        assert two_category_community.columns() is before

    def test_mutation_is_reflected_in_new_view(self, two_category_community):
        two_category_community.columns()
        two_category_community.add_rating(ReviewRating("carol", "ra1", 0.2))
        assert two_category_community.columns().rating_counts("movies")["carol"] == 1

    def test_direct_database_insert_is_caught(self, two_category_community):
        before = two_category_community.columns()
        # bypass the add_* API entirely; the row-count cache key still trips
        two_category_community.database.insert("users", {"user_id": "zoe", "name": ""})
        after = two_category_community.columns()
        assert after is not before
        assert "zoe" in after.users

    def test_from_community_standalone_snapshot(self, two_category_community):
        snapshot = CommunityColumns.from_community(two_category_community)
        two_category_community.add_user("frank")
        assert "frank" not in snapshot.users
        assert "frank" in two_category_community.columns().users


class TestCommunityDelegation:
    def test_community_methods_route_through_columns(self, two_category_community):
        community = two_category_community
        columns = community.columns()
        for category in community.category_ids():
            assert community.rating_triples(category) == columns.rating_triples(category)
            assert community.writing_counts(category) == columns.writing_counts(category)
            assert community.rating_counts(category) == columns.rating_counts(category)
        assert community.direct_connections() == columns.direct_connections()
