"""Version counter and columns() cache currency across all mutators.

Invariant (satellite of the R1 lint rule): every successful ``add_*`` call
bumps ``Community.version`` exactly once and the next ``columns()`` call
reflects it; failed adds leave both untouched.  Mutations the snapshot
encodes (users, categories, reviews, ratings) produce a new snapshot
object; object/trust deltas are announced cache hits, because the
columnar view does not encode them.  Bulk loads that insert through
``community.database`` directly do not bump the version but are still
caught by the row-count part of the cache key.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import IntegrityError
from repro.community import (
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)

MUTATIONS = [
    ("add_user", lambda c: c.add_user("frank")),
    ("add_category", lambda c: c.add_category("music")),
    ("add_object", lambda c: c.add_object(ReviewedObject("m3", "movies"))),
    ("add_review", lambda c: c.add_review(Review("rb2", "bob", "m2"))),
    ("add_rating", lambda c: c.add_rating(ReviewRating("carol", "ra1", 0.8))),
    ("add_trust", lambda c: c.add_trust(TrustStatement("carol", "bob"))),
]


class TestSingleMutators:
    @pytest.mark.parametrize("mutate", [m for _, m in MUTATIONS], ids=[n for n, _ in MUTATIONS])
    def test_bumps_version_exactly_once(self, two_category_community, mutate):
        before = two_category_community.version
        mutate(two_category_community)
        assert two_category_community.version == before + 1

    ENCODED = ("add_user", "add_category", "add_review", "add_rating")

    @pytest.mark.parametrize("name,mutate", MUTATIONS, ids=[n for n, _ in MUTATIONS])
    def test_columns_cache_stays_current(self, two_category_community, name, mutate):
        cached = two_category_community.columns()
        assert two_category_community.columns() is cached  # stable when idle
        mutate(two_category_community)
        rebuilt = two_category_community.columns()
        if name in self.ENCODED:
            assert rebuilt is not cached
        else:
            # object/trust deltas are cache hits: the snapshot encodes
            # neither, so the cached view is still the current one
            assert rebuilt is cached
        assert two_category_community.columns() is rebuilt

    def test_failed_add_review_leaves_state_alone(self, two_category_community):
        cached = two_category_community.columns()
        before = two_category_community.version
        with pytest.raises(IntegrityError):
            two_category_community.add_review(Review("rx", "bob", "no-such-object"))
        assert two_category_community.version == before
        assert two_category_community.columns() is cached

    def test_failed_self_rating_leaves_state_alone(self, two_category_community):
        cached = two_category_community.columns()
        before = two_category_community.version
        with pytest.raises(IntegrityError):
            two_category_community.add_rating(ReviewRating("alice", "ra1", 1.0))
        assert two_category_community.version == before
        assert two_category_community.columns() is cached


class TestDirectDatabaseInserts:
    """Bulk loads bypassing add_* must still invalidate the columnar view."""

    def test_user_insert_is_caught_by_row_counts(self, two_category_community):
        community = two_category_community
        cached = community.columns()
        version = community.version
        community.database.insert("users", {"user_id": "zed", "name": ""})
        assert community.version == version  # no bump: this is the raw store
        rebuilt = community.columns()
        assert rebuilt is not cached
        assert "zed" in rebuilt.users

    def test_rating_insert_is_caught_by_row_counts(self, two_category_community):
        community = two_category_community
        cached = community.columns()
        community.database.insert(
            "ratings",
            {
                "rater_id": "eve",
                "review_id": "ra1",
                "category_id": "movies",
                "value": 0.7,
            },
        )
        rebuilt = community.columns()
        assert rebuilt is not cached
        assert rebuilt.num_ratings == cached.num_ratings + 1


# ----------------------------------------------------------------- property test

OPS = ("user", "category", "object", "review", "rating", "trust")


class MutationDriver:
    """Applies self-contained mutations, counting the add_* calls made."""

    def __init__(self):
        self.community = Community("prop")
        self.counters = dict.fromkeys(("user", "category", "object", "review"), 0)

    def _fresh(self, kind):
        self.counters[kind] += 1
        return f"{kind}{self.counters[kind]}"

    def _fresh_user(self):
        user_id = self._fresh("user")
        self.community.add_user(user_id)
        return user_id, 1

    def _fresh_review(self):
        adds = 0
        if not self.counters["category"]:
            self.community.add_category(self._fresh("category"))
            adds += 1
        writer, n = self._fresh_user()
        adds += n
        object_id = self._fresh("object")
        self.community.add_object(
            ReviewedObject(object_id, f"category{self.counters['category']}")
        )
        review_id = self._fresh("review")
        self.community.add_review(Review(review_id, writer, object_id))
        return review_id, adds + 2

    def apply(self, op):
        """Run one operation; returns the number of add_* calls it made."""
        community = self.community
        if op == "user":
            return self._fresh_user()[1]
        if op == "category":
            community.add_category(self._fresh("category"))
            return 1
        if op == "object":
            adds = 0
            if not self.counters["category"]:
                community.add_category(self._fresh("category"))
                adds += 1
            community.add_object(
                ReviewedObject(
                    self._fresh("object"), f"category{self.counters['category']}"
                )
            )
            return adds + 1
        if op == "review":
            return self._fresh_review()[1]
        if op == "rating":
            review_id, adds = self._fresh_review()
            rater, n = self._fresh_user()  # fresh id, never the writer
            community.add_rating(ReviewRating(rater, review_id, 0.6))
            return adds + n + 1
        if op == "trust":
            truster, n1 = self._fresh_user()
            trustee, n2 = self._fresh_user()
            community.add_trust(TrustStatement(truster, trustee))
            return n1 + n2 + 1
        raise AssertionError(op)


def _encoded_counts(community):
    return (
        community.num_users(),
        len(community.category_ids()),
        community.num_reviews(),
        community.num_ratings(),
    )


@given(ops=st.lists(st.sampled_from(OPS), max_size=12))
@settings(max_examples=25, deadline=None)
def test_version_counts_successful_adds_and_columns_never_stale(ops):
    driver = MutationDriver()
    for op in ops:
        cached = driver.community.columns()
        before = driver.community.version
        counts = _encoded_counts(driver.community)
        adds = driver.apply(op)
        assert adds >= 1
        assert driver.community.version == before + adds
        rebuilt = driver.community.columns()
        if _encoded_counts(driver.community) != counts:
            assert rebuilt is not cached
        else:
            # pure object/trust growth: announced deltas, cache hit
            assert rebuilt is cached
        assert len(rebuilt.users) == driver.community.num_users()
        assert rebuilt.num_reviews == driver.community.num_reviews()
        assert rebuilt.num_ratings == driver.community.num_ratings()
        assert driver.community.columns() is rebuilt
