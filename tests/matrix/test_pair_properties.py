"""Model-based property tests: UserPairMatrix against a plain-dict model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matrix import UserPairMatrix

USERS = [f"u{i}" for i in range(5)]

operations = st.lists(
    st.tuples(
        st.sampled_from(["set", "accumulate", "discard"]),
        st.integers(0, 4),
        st.integers(0, 4),
        st.floats(-10, 10, allow_nan=False, allow_infinity=False, width=32),
    ),
    max_size=80,
)


class TestPairMatrixAgainstDictModel:
    @given(operations)
    @settings(max_examples=100, deadline=None)
    def test_matches_reference_model(self, ops):
        matrix = UserPairMatrix(USERS)
        model: dict[tuple[str, str], float] = {}

        for op, i, j, value in ops:
            source, target = USERS[i], USERS[j]
            if op == "set":
                matrix.set(source, target, value)
                model[(source, target)] = float(value)
            elif op == "accumulate":
                matrix.accumulate(source, target, value)
                model[(source, target)] = model.get((source, target), 0.0) + float(value)
            else:
                matrix.discard(source, target)
                model.pop((source, target), None)

        assert matrix.num_entries() == len(model)
        assert matrix.support() == set(model)
        for (source, target), expected in model.items():
            assert matrix.get(source, target) == pytest.approx(expected)
            assert matrix.contains(source, target)
        # row views agree
        for source in USERS:
            expected_row = {
                t: v for (s, t), v in model.items() if s == source
            }
            actual_row = matrix.row(source)
            assert set(actual_row) == set(expected_row)
            for target, v in expected_row.items():
                assert actual_row[target] == pytest.approx(v)
        # csr round trip preserves everything stored (zeros kept explicitly)
        rebuilt = UserPairMatrix.from_csr(matrix.to_csr(), matrix.users, keep_zeros=True)
        non_zero_support = {pair for pair, v in model.items() if v != 0.0}
        assert non_zero_support <= rebuilt.support() <= set(model)

    @given(operations)
    @settings(max_examples=50, deadline=None)
    def test_density_consistent(self, ops):
        matrix = UserPairMatrix(USERS)
        for op, i, j, value in ops:
            if op == "set":
                matrix.set(USERS[i], USERS[j], value)
        assert matrix.density() == pytest.approx(matrix.num_entries() / (5 * 4))
