"""Regression tests: every UserPairMatrix mutator invalidates the caches.

The csr()/lookup caches are shared views of the consolidated state; a
mutator that forgets to drop them would hand stale matrices to the
propagation and metrics layers (the invariant the R1 lint rule encodes).
"""

import numpy as np
import pytest

from repro.matrix import UserPairMatrix

USERS = ["u0", "u1", "u2"]


@pytest.fixture
def warm_matrix():
    """A consolidated matrix with both caches populated."""
    matrix = UserPairMatrix(USERS)
    matrix.set_block([0, 1], [1, 2], [0.5, 0.25])
    matrix.csr()
    matrix.get("u0", "u1")  # builds the key lookup
    assert matrix._csr is not None and matrix._lookup is not None
    return matrix


class TestMutatorInvalidation:
    def test_set_drops_both_caches(self, warm_matrix):
        warm_matrix.set("u2", "u0", 0.75)
        assert warm_matrix._csr is None
        assert warm_matrix._lookup is None

    def test_set_block_drops_both_caches(self, warm_matrix):
        warm_matrix.set_block([2], [1], [0.75])
        assert warm_matrix._csr is None
        assert warm_matrix._lookup is None

    def test_accumulate_new_pair_drops_both_caches(self, warm_matrix):
        warm_matrix.accumulate("u2", "u0", 0.1)
        assert warm_matrix._csr is None
        assert warm_matrix._lookup is None

    def test_accumulate_in_place_drops_csr_keeps_lookup(self, warm_matrix):
        # the fast path updates the value array in place: key positions are
        # unchanged, so the lookup stays valid but the csr data is stale
        lookup = warm_matrix._lookup
        warm_matrix.accumulate("u0", "u1", 0.1)
        assert warm_matrix._csr is None
        assert warm_matrix._lookup is lookup
        assert warm_matrix.get("u0", "u1") == pytest.approx(0.6)

    def test_discard_drops_both_caches(self, warm_matrix):
        warm_matrix.discard("u0", "u1")
        assert warm_matrix._csr is None
        assert warm_matrix._lookup is None

    def test_discard_of_absent_pair_keeps_caches(self, warm_matrix):
        csr = warm_matrix._csr
        warm_matrix.discard("u2", "u2")
        assert warm_matrix._csr is csr


class TestRebuiltViewsAreFresh:
    """The caches are not just dropped -- the rebuilt views see the write."""

    @pytest.mark.parametrize(
        "mutate, expected",
        [
            (lambda m: m.set("u0", "u1", 0.9), 0.9),
            (lambda m: m.set_block([0], [1], [0.9]), 0.9),
            (lambda m: m.accumulate("u0", "u1", 0.4), 0.9),
        ],
        ids=["set", "set_block", "accumulate"],
    )
    def test_csr_reflects_mutation(self, warm_matrix, mutate, expected):
        mutate(warm_matrix)
        assert warm_matrix.csr().toarray()[0, 1] == pytest.approx(expected)

    def test_csr_reflects_discard(self, warm_matrix):
        warm_matrix.discard("u0", "u1")
        dense = warm_matrix.csr().toarray()
        assert dense[0, 1] == 0.0
        assert not warm_matrix.contains("u0", "u1")

    def test_accumulate_onto_pending_state_consolidates_first(self):
        # accumulate after buffered point writes must fold them in before
        # taking the in-place fast path
        matrix = UserPairMatrix(USERS)
        matrix.set("u0", "u1", 0.5)
        matrix.accumulate("u0", "u1", 0.25)
        assert matrix.get("u0", "u1") == pytest.approx(0.75)
        assert matrix.csr()[0, 1] == pytest.approx(0.75)

    def test_cached_csr_is_read_only(self, warm_matrix):
        with pytest.raises(ValueError):
            warm_matrix.csr().data[0] = 99.0
        assert np.all(warm_matrix.to_csr().data == warm_matrix.csr().data)
