"""Tests for UserPairMatrix."""

import numpy as np
import pytest
from scipy import sparse

from repro.common.errors import ValidationError
from repro.matrix import LabelIndex, UserPairMatrix


@pytest.fixture
def matrix():
    m = UserPairMatrix(["u1", "u2", "u3"])
    m.set("u1", "u2", 0.8)
    m.set("u1", "u3", 0.3)
    m.set("u2", "u1", 0.5)
    return m


class TestWrites:
    def test_set_get(self, matrix):
        assert matrix.get("u1", "u2") == pytest.approx(0.8)

    def test_get_default_for_absent(self, matrix):
        assert matrix.get("u3", "u1") == 0.0
        assert matrix.get("u3", "u1", default=-1.0) == -1.0

    def test_overwrite_does_not_double_count(self, matrix):
        matrix.set("u1", "u2", 0.9)
        assert matrix.num_entries() == 3
        assert matrix.get("u1", "u2") == pytest.approx(0.9)

    def test_explicit_zero_is_stored(self, matrix):
        matrix.set("u3", "u1", 0.0)
        assert matrix.contains("u3", "u1")
        assert matrix.num_entries() == 4

    def test_accumulate(self, matrix):
        matrix.accumulate("u1", "u2", 0.1)
        matrix.accumulate("u3", "u2", 1.0)
        assert matrix.get("u1", "u2") == pytest.approx(0.9)
        assert matrix.get("u3", "u2") == pytest.approx(1.0)

    def test_discard(self, matrix):
        matrix.discard("u1", "u2")
        assert not matrix.contains("u1", "u2")
        assert matrix.num_entries() == 2
        matrix.discard("u1", "u2")  # no-op
        assert matrix.num_entries() == 2

    def test_non_finite_rejected(self, matrix):
        with pytest.raises(ValidationError):
            matrix.set("u1", "u2", float("nan"))
        with pytest.raises(ValidationError):
            matrix.set("u1", "u2", float("inf"))

    def test_bool_rejected(self, matrix):
        with pytest.raises(ValidationError):
            matrix.set("u1", "u2", True)

    def test_unknown_user_rejected(self, matrix):
        with pytest.raises(KeyError):
            matrix.set("ghost", "u1", 0.5)


class TestReads:
    def test_row(self, matrix):
        assert matrix.row("u1") == {"u2": 0.8, "u3": 0.3}
        assert matrix.row("u3") == {}

    def test_row_size(self, matrix):
        assert matrix.row_size("u1") == 2
        assert matrix.row_size("u3") == 0

    def test_source_ids(self, matrix):
        assert set(matrix.source_ids()) == {"u1", "u2"}

    def test_entries(self, matrix):
        triples = set(matrix.entries())
        assert ("u1", "u2", 0.8) in triples
        assert len(triples) == 3

    def test_support(self, matrix):
        assert matrix.support() == {("u1", "u2"), ("u1", "u3"), ("u2", "u1")}

    def test_density(self, matrix):
        # 3 entries out of 3*2 ordered pairs
        assert matrix.density() == pytest.approx(0.5)

    def test_density_empty_axis(self):
        assert UserPairMatrix([]).density() == 0.0

    def test_values(self, matrix):
        assert sorted(matrix.values()) == pytest.approx([0.3, 0.5, 0.8])


class TestCsrRoundtrip:
    def test_to_csr_shape_and_values(self, matrix):
        csr = matrix.to_csr()
        assert csr.shape == (3, 3)
        assert csr[0, 1] == pytest.approx(0.8)
        assert csr[1, 0] == pytest.approx(0.5)

    def test_from_csr_roundtrip(self, matrix):
        rebuilt = UserPairMatrix.from_csr(matrix.to_csr(), matrix.users)
        assert rebuilt == matrix

    def test_from_csr_drops_zeros_by_default(self):
        users = LabelIndex(["a", "b"])
        csr = sparse.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        m = UserPairMatrix.from_csr(csr, users)
        assert m.num_entries() == 1

    def test_from_csr_shape_mismatch(self):
        with pytest.raises(ValidationError):
            UserPairMatrix.from_csr(sparse.csr_matrix((2, 2)), LabelIndex(["a"]))


class TestSetOperations:
    def test_intersect_support(self, matrix):
        other = UserPairMatrix(matrix.users)
        other.set("u1", "u2", 1.0)
        other.set("u3", "u1", 1.0)
        assert matrix.intersect_support(other) == {("u1", "u2")}

    def test_subtract_support(self, matrix):
        other = UserPairMatrix(matrix.users)
        other.set("u1", "u2", 1.0)
        assert matrix.subtract_support(other) == {("u1", "u3"), ("u2", "u1")}

    def test_restrict_to(self, matrix):
        restricted = matrix.restrict_to({("u1", "u3"), ("u2", "u1")})
        assert restricted.support() == {("u1", "u3"), ("u2", "u1")}
        assert restricted.get("u1", "u3") == pytest.approx(0.3)

    def test_axis_mismatch_rejected(self, matrix):
        other = UserPairMatrix(["u1", "u2"])
        with pytest.raises(ValidationError, match="axes differ"):
            matrix.intersect_support(other)

    def test_from_pairs_mapping(self):
        m = UserPairMatrix.from_pairs(["a", "b"], {("a", "b"): 0.5})
        assert m.get("a", "b") == 0.5

    def test_from_pairs_triples(self):
        m = UserPairMatrix.from_pairs(["a", "b"], [("b", "a", 0.25)])
        assert m.get("b", "a") == 0.25
