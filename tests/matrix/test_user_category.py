"""Tests for UserCategoryMatrix."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import LabelIndex, UserCategoryMatrix


@pytest.fixture
def matrix():
    m = UserCategoryMatrix(["u1", "u2", "u3"], ["c1", "c2"])
    m.set("u1", "c1", 0.9)
    m.set("u1", "c2", 0.1)
    m.set("u2", "c1", 0.5)
    return m


class TestConstruction:
    def test_zero_initialised(self):
        m = UserCategoryMatrix(["u1"], ["c1"])
        assert m.get("u1", "c1") == 0.0

    def test_values_array_accepted(self):
        values = np.array([[0.1, 0.2], [0.3, 0.4]])
        m = UserCategoryMatrix(["u1", "u2"], ["c1", "c2"], values)
        assert m.get("u2", "c2") == pytest.approx(0.4)

    def test_values_array_is_copied(self):
        values = np.array([[0.1, 0.2], [0.3, 0.4]])
        m = UserCategoryMatrix(["u1", "u2"], ["c1", "c2"], values)
        values[0, 0] = 0.99
        assert m.get("u1", "c1") == pytest.approx(0.1)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValidationError, match="shape"):
            UserCategoryMatrix(["u1"], ["c1"], np.zeros((2, 2)))

    def test_out_of_unit_interval_rejected(self):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            UserCategoryMatrix(["u1"], ["c1"], np.array([[1.5]]))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="NaN"):
            UserCategoryMatrix(["u1"], ["c1"], np.array([[np.nan]]))

    def test_accepts_prebuilt_label_index(self):
        users = LabelIndex(["u1"])
        m = UserCategoryMatrix(users, ["c1"])
        assert m.users is users


class TestAccess:
    def test_get_set(self, matrix):
        assert matrix.get("u1", "c1") == pytest.approx(0.9)
        assert matrix.get("u3", "c2") == 0.0

    def test_set_rejects_out_of_range(self, matrix):
        with pytest.raises(ValidationError):
            matrix.set("u1", "c1", 1.2)

    def test_unknown_labels(self, matrix):
        with pytest.raises(KeyError):
            matrix.get("ghost", "c1")
        with pytest.raises(KeyError):
            matrix.get("u1", "ghost")

    def test_user_row_is_copy(self, matrix):
        row = matrix.user_row("u1")
        row[0] = 0.0
        assert matrix.get("u1", "c1") == pytest.approx(0.9)

    def test_category_column(self, matrix):
        np.testing.assert_allclose(matrix.category_column("c1"), [0.9, 0.5, 0.0])

    def test_to_array_copy(self, matrix):
        arr = matrix.to_array()
        arr[:] = 0
        assert matrix.get("u1", "c1") == pytest.approx(0.9)

    def test_values_view_read_only(self, matrix):
        view = matrix.values_view()
        with pytest.raises(ValueError):
            view[0, 0] = 0.5

    def test_shape(self, matrix):
        assert matrix.shape == (3, 2)


class TestHelpers:
    def test_row_sums(self, matrix):
        np.testing.assert_allclose(matrix.row_sums(), [1.0, 0.5, 0.0])

    def test_nonzero_user_ids(self, matrix):
        assert matrix.nonzero_user_ids() == ["u1", "u2"]

    def test_ranking_descending(self, matrix):
        assert matrix.ranking("c1") == ["u1", "u2", "u3"]

    def test_ranking_ties_stable(self):
        m = UserCategoryMatrix(["a", "b", "c"], ["c1"])
        m.set("a", "c1", 0.5)
        m.set("b", "c1", 0.5)
        assert m.ranking("c1") == ["a", "b", "c"]

    def test_ranking_restricted(self, matrix):
        assert matrix.ranking("c1", restrict_to={"u2", "u3"}) == ["u2", "u3"]

    def test_from_dict(self):
        m = UserCategoryMatrix.from_dict(
            {"u1": {"c1": 0.9}, "u2": {"c2": 0.3}}, ["u1", "u2"], ["c1", "c2"]
        )
        assert m.get("u1", "c1") == pytest.approx(0.9)
        assert m.get("u2", "c1") == 0.0

    def test_equality(self, matrix):
        other = UserCategoryMatrix(["u1", "u2", "u3"], ["c1", "c2"], matrix.to_array())
        assert matrix == other
        other.set("u3", "c1", 0.1)
        assert matrix != other
