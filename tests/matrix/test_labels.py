"""Tests for LabelIndex."""

import pytest

from repro.common.errors import ValidationError
from repro.matrix import LabelIndex


class TestConstruction:
    def test_orders_labels(self):
        idx = LabelIndex(["b", "a", "c"])
        assert idx.labels == ("b", "a", "c")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            LabelIndex(["a", "a"])

    def test_empty_label_rejected(self):
        with pytest.raises(ValidationError):
            LabelIndex(["a", ""])

    def test_non_string_label_rejected(self):
        with pytest.raises(ValidationError):
            LabelIndex(["a", 3])  # type: ignore[list-item]

    def test_empty_index_allowed(self):
        assert len(LabelIndex([])) == 0


class TestLookup:
    @pytest.fixture
    def idx(self):
        return LabelIndex(["u1", "u2", "u3"])

    def test_position_roundtrip(self, idx):
        for pos, label in enumerate(idx):
            assert idx.position(label) == pos
            assert idx.label(pos) == label

    def test_unknown_label(self, idx):
        with pytest.raises(KeyError):
            idx.position("ghost")

    def test_position_out_of_range(self, idx):
        with pytest.raises(IndexError):
            idx.label(3)
        with pytest.raises(IndexError):
            idx.label(-1)

    def test_contains(self, idx):
        assert "u2" in idx
        assert "ghost" not in idx

    def test_equality_and_hash(self, idx):
        same = LabelIndex(["u1", "u2", "u3"])
        different = LabelIndex(["u1", "u3", "u2"])
        assert idx == same
        assert hash(idx) == hash(same)
        assert idx != different
