"""Tests for the bulk (array-backed) UserPairMatrix APIs."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.matrix import LabelIndex, UserPairMatrix


@pytest.fixture
def users():
    return LabelIndex([f"u{i}" for i in range(5)])


class TestSetBlock:
    def test_bulk_equals_pointwise(self, users):
        rows = np.array([0, 1, 3])
        cols = np.array([2, 0, 4])
        values = np.array([0.5, 0.25, 1.0])
        bulk = UserPairMatrix.from_arrays(users, rows, cols, values)
        pointwise = UserPairMatrix(users)
        for i, j, v in zip(rows, cols, values):
            pointwise.set(users.label(int(i)), users.label(int(j)), float(v))
        assert bulk == pointwise

    def test_scalar_broadcast(self, users):
        m = UserPairMatrix.from_arrays(users, [0, 1], [1, 2], 1.0)
        assert m.get("u0", "u1") == 1.0
        assert m.get("u1", "u2") == 1.0

    def test_duplicate_keys_keep_last(self, users):
        m = UserPairMatrix.from_arrays(users, [0, 0], [1, 1], [0.2, 0.9])
        assert m.num_entries() == 1
        assert m.get("u0", "u1") == pytest.approx(0.9)

    def test_block_overwrites_earlier_point_write(self, users):
        m = UserPairMatrix(users)
        m.set("u0", "u1", 0.1)
        m.set_block([0], [1], [0.7])
        assert m.get("u0", "u1") == pytest.approx(0.7)

    def test_point_write_overwrites_earlier_block(self, users):
        m = UserPairMatrix(users)
        m.set_block([0], [1], [0.7])
        m.set("u0", "u1", 0.1)
        assert m.get("u0", "u1") == pytest.approx(0.1)

    def test_explicit_zero_kept(self, users):
        m = UserPairMatrix.from_arrays(users, [2], [3], [0.0])
        assert m.contains("u2", "u3")
        assert m.to_csr().nnz == 1

    def test_out_of_range_rejected(self, users):
        with pytest.raises(ValidationError, match="positions"):
            UserPairMatrix.from_arrays(users, [5], [0], [1.0])
        with pytest.raises(ValidationError, match="positions"):
            UserPairMatrix.from_arrays(users, [0], [-1], [1.0])

    def test_non_finite_rejected(self, users):
        with pytest.raises(ValidationError, match="finite"):
            UserPairMatrix.from_arrays(users, [0], [1], [np.nan])

    def test_shape_mismatch_rejected(self, users):
        with pytest.raises(ValidationError, match="equal-length"):
            UserPairMatrix.from_arrays(users, [0, 1], [1], [0.5])

    def test_values_length_mismatch_rejected(self, users):
        with pytest.raises(ValidationError, match="values shape"):
            UserPairMatrix.from_arrays(users, [0, 1], [1, 2], [0.5, 0.6, 0.7])

    def test_restrict_to_ignores_foreign_labels(self, users):
        m = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        restricted = m.restrict_to({("u0", "u1"), ("ghost", "u1"), ("u0", "elsewhere")})
        assert restricted.support() == {("u0", "u1")}


class TestEntriesArrays:
    def test_row_major_order(self, users):
        m = UserPairMatrix(users)
        m.set("u3", "u0", 0.3)
        m.set("u0", "u4", 0.4)
        m.set("u0", "u2", 0.2)
        rows, cols, values = m.entries_arrays()
        assert rows.tolist() == [0, 0, 3]
        assert cols.tolist() == [2, 4, 0]
        assert values.tolist() == pytest.approx([0.2, 0.4, 0.3])

    def test_roundtrip(self, users):
        rng = np.random.default_rng(0)
        m = UserPairMatrix.from_arrays(
            users, rng.integers(0, 5, 12), rng.integers(0, 5, 12), rng.random(12)
        )
        rebuilt = UserPairMatrix.from_arrays(users, *m.entries_arrays())
        assert rebuilt == m


class TestSupportKeys:
    def test_keys_match_label_support(self, users):
        m = UserPairMatrix.from_arrays(users, [1, 4], [2, 0], [0.5, 0.5])
        keys = m.support_keys()
        n = len(users)
        pairs = {(users.label(int(k) // n), users.label(int(k) % n)) for k in keys}
        assert pairs == m.support()

    def test_keys_sorted_unique(self, users):
        m = UserPairMatrix.from_arrays(users, [3, 0, 3], [1, 2, 1], [1.0, 1.0, 2.0])
        keys = m.support_keys()
        assert keys.tolist() == sorted(set(keys.tolist()))
        assert len(keys) == 2

    def test_set_ops_agree_with_label_sets(self, users):
        rng = np.random.default_rng(1)
        a = UserPairMatrix.from_arrays(
            users, rng.integers(0, 5, 10), rng.integers(0, 5, 10), 1.0
        )
        b = UserPairMatrix.from_arrays(
            users, rng.integers(0, 5, 10), rng.integers(0, 5, 10), 1.0
        )
        assert a.intersect_support(b) == a.support() & b.support()
        assert a.subtract_support(b) == a.support() - b.support()


class TestCsrCache:
    def test_cached_instance_reused(self, users):
        m = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        assert m.csr() is m.csr()

    def test_cache_invalidated_by_write(self, users):
        m = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        first = m.csr()
        m.set("u2", "u3", 0.25)
        second = m.csr()
        assert second is not first
        assert second.nnz == 2

    def test_cache_invalidated_by_accumulate_and_discard(self, users):
        m = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        m.csr()
        m.accumulate("u0", "u1", 0.25)
        assert m.csr()[0, 1] == pytest.approx(0.75)
        m.discard("u0", "u1")
        assert m.csr().nnz == 0

    def test_to_csr_returns_mutable_copy(self, users):
        m = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        copy = m.to_csr()
        copy.data[0] = 99.0
        assert m.get("u0", "u1") == pytest.approx(0.5)
        assert m.csr()[0, 1] == pytest.approx(0.5)

    def test_csr_matches_to_csr(self, users):
        rng = np.random.default_rng(2)
        m = UserPairMatrix.from_arrays(
            users, rng.integers(0, 5, 15), rng.integers(0, 5, 15), rng.random(15)
        )
        assert (m.csr() != m.to_csr()).nnz == 0


class TestAccumulateScaling:
    def test_many_distinct_accumulates_stay_fast(self):
        # regression guard: accumulate used to consolidate (O(nnz)) per
        # call, turning this loop quadratic (~10 s); it must stay well
        # under a second
        n = 120
        users = [f"u{i}" for i in range(n)]
        m = UserPairMatrix(users)
        for i in range(n):
            for j in range(n):
                if i != j:
                    m.accumulate(users[i], users[j], 0.5)
        assert m.num_entries() == n * (n - 1)
        for i in range(0, n, 7):  # second pass hits the in-place branch
            m.accumulate(users[i], users[(i + 1) % n], 0.25)
            assert m.get(users[i], users[(i + 1) % n]) == pytest.approx(0.75)

    def test_accumulate_then_set_then_accumulate(self):
        m = UserPairMatrix(["a", "b"])
        m.accumulate("a", "b", 0.3)
        m.set("a", "b", 0.1)  # set after accumulate overrides the sum
        m.accumulate("a", "b", 0.2)
        assert m.get("a", "b") == pytest.approx(0.3)


class TestInterleavedWrites:
    def test_mixed_write_stream_matches_dict_semantics(self, users):
        rng = np.random.default_rng(7)
        m = UserPairMatrix(users)
        shadow: dict[tuple[str, str], float] = {}
        for step in range(60):
            kind = step % 4
            if kind == 0:
                i, j = int(rng.integers(5)), int(rng.integers(5))
                v = float(rng.random())
                m.set(users.label(i), users.label(j), v)
                shadow[(users.label(i), users.label(j))] = v
            elif kind == 1:
                rows = rng.integers(0, 5, 3)
                cols = rng.integers(0, 5, 3)
                vals = rng.random(3)
                m.set_block(rows, cols, vals)
                for i, j, v in zip(rows, cols, vals):
                    shadow[(users.label(int(i)), users.label(int(j)))] = float(v)
            elif kind == 2:
                i, j = int(rng.integers(5)), int(rng.integers(5))
                v = float(rng.random())
                m.accumulate(users.label(i), users.label(j), v)
                key = (users.label(i), users.label(j))
                shadow[key] = shadow.get(key, 0.0) + v
            else:
                assert m.num_entries() == len(shadow)  # interleave a read
        assert {(s, t): v for s, t, v in m.entries()} == pytest.approx(shadow)


class TestFromFlatSorted:
    def test_matches_from_arrays(self, users):
        n = len(users)
        rows = np.array([0, 1, 3])
        cols = np.array([2, 0, 4])
        values = np.array([0.5, 0.25, 1.0])
        keys = np.sort(rows * n + cols)
        order = np.argsort(rows * n + cols, kind="stable")
        fast = UserPairMatrix.from_flat_sorted(users, keys, values[order])
        assert fast == UserPairMatrix.from_arrays(users, rows, cols, values)

    def test_empty_keys_ok(self, users):
        m = UserPairMatrix.from_flat_sorted(
            users, np.array([], dtype=np.int64), np.array([], dtype=np.float64)
        )
        assert m.num_entries() == 0

    def test_unsorted_keys_rejected(self, users):
        with pytest.raises(ValidationError, match="strictly increasing"):
            UserPairMatrix.from_flat_sorted(users, np.array([3, 1]), np.array([0.5, 0.5]))

    def test_duplicate_keys_rejected(self, users):
        with pytest.raises(ValidationError, match="strictly increasing"):
            UserPairMatrix.from_flat_sorted(users, np.array([3, 3]), np.array([0.5, 0.5]))

    def test_out_of_range_keys_rejected(self, users):
        n = len(users)
        with pytest.raises(ValidationError, match="keys must lie"):
            UserPairMatrix.from_flat_sorted(users, np.array([n * n]), np.array([0.5]))
        with pytest.raises(ValidationError, match="keys must lie"):
            UserPairMatrix.from_flat_sorted(users, np.array([-1]), np.array([0.5]))

    def test_shape_mismatch_rejected(self, users):
        with pytest.raises(ValidationError, match="equal-length"):
            UserPairMatrix.from_flat_sorted(users, np.array([1, 2]), np.array([0.5]))

    def test_non_finite_rejected(self, users):
        with pytest.raises(ValidationError, match="finite"):
            UserPairMatrix.from_flat_sorted(users, np.array([1]), np.array([np.inf]))


def _region_of(dense, users, rows, cols):
    """All nonzero entries of ``dense`` whose row or col position changed."""
    n = dense.shape[0]
    region = UserPairMatrix(users)
    for i in range(n):
        for j in range(n):
            if (i in rows or j in cols) and dense[i, j] != 0.0:
                region.set(users.label(i), users.label(j), float(dense[i, j]))
    return region


class TestPatched:
    def _dense(self, m, n):
        out = np.zeros((n, n))
        for s, t, v in m.entries():
            out[m.users.position(s), m.users.position(t)] = v
        return out

    def test_patch_equals_dense_scatter(self, users):
        n = len(users)
        rng = np.random.default_rng(5)
        old_dense = (rng.random((n, n)) * (rng.random((n, n)) < 0.6)).round(3)
        old = UserPairMatrix.from_arrays(users, *np.nonzero(old_dense), old_dense[np.nonzero(old_dense)])
        new_dense = old_dense.copy()
        rows, cols = {1, 3}, {0}
        for i in rows:
            new_dense[i, :] = (rng.random(n) * (rng.random(n) < 0.7)).round(3)
        for j in cols:
            new_dense[:, j] = (rng.random(n) * (rng.random(n) < 0.7)).round(3)
        region = _region_of(new_dense, users, rows, cols)
        patched, kept = old.patched(
            users, region, rows=np.array(sorted(rows)), cols=np.array(sorted(cols))
        )
        np.testing.assert_array_equal(self._dense(patched, n), new_dense)
        # kept = old entries outside the changed region
        outside = sum(
            1 for s, t, _ in old.entries()
            if old.users.position(s) not in rows and old.users.position(t) not in cols
        )
        assert kept == outside

    def test_patch_with_user_growth(self, users):
        grown = LabelIndex(list(users.labels) + ["u5"])
        old = UserPairMatrix.from_arrays(users, [0, 2], [1, 3], [0.5, 0.25])
        region = UserPairMatrix(grown)
        region.set("u5", "u0", 0.75)
        region.set("u0", "u5", 0.1)
        patched, kept = old.patched(
            grown, region, rows=np.array([5]), cols=np.array([5])
        )
        assert kept == 2
        assert patched.users is grown
        assert patched.get("u0", "u1") == 0.5
        assert patched.get("u5", "u0") == 0.75
        assert patched.get("u0", "u5") == 0.1

    def test_region_on_wrong_axis_rejected(self, users):
        other = LabelIndex(["a", "b", "c", "d", "e"])
        old = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        region = UserPairMatrix(other)
        with pytest.raises(ValidationError, match="region"):
            old.patched(users, region, rows=np.array([0]), cols=np.array([0]))

    def test_non_extension_axis_rejected(self, users):
        shrunk = LabelIndex(["u0", "u1"])
        old = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        region = UserPairMatrix(shrunk)
        with pytest.raises(ValidationError, match="extend"):
            old.patched(shrunk, region, rows=np.array([0]), cols=np.array([0]))

    def test_out_of_range_positions_rejected(self, users):
        old = UserPairMatrix.from_arrays(users, [0], [1], [0.5])
        region = UserPairMatrix(users)
        with pytest.raises(ValidationError, match="rows positions"):
            old.patched(users, region, rows=np.array([9]), cols=np.array([], dtype=np.int64))


class TestPatchedEdgeCases:
    def _dense(self, m, n):
        out = np.zeros((n, n))
        for s, t, v in m.entries():
            out[m.users.position(s), m.users.position(t)] = v
        return out

    def test_empty_patch_is_identity(self, users):
        old = UserPairMatrix.from_arrays(users, [0, 2], [1, 3], [0.5, 0.25])
        empty = np.empty(0, dtype=np.int64)
        patched, kept = old.patched(
            users, UserPairMatrix(users), rows=empty, cols=empty
        )
        assert patched == old
        assert kept == old.num_entries()

    def test_empty_region_with_changed_rows_clears_them(self, users):
        """A region with no entries means the changed rows became zero."""
        old = UserPairMatrix.from_arrays(users, [0, 2], [1, 3], [0.5, 0.25])
        patched, kept = old.patched(
            users,
            UserPairMatrix(users),
            rows=np.array([0]),
            cols=np.empty(0, dtype=np.int64),
        )
        assert not patched.contains("u0", "u1")
        assert patched.get("u2", "u3") == 0.25
        assert kept == 1

    def test_whole_matrix_region_replaces_everything(self, users):
        n = len(users)
        rng = np.random.default_rng(8)
        old_dense = (rng.random((n, n)) * (rng.random((n, n)) < 0.6)).round(3)
        new_dense = (rng.random((n, n)) * (rng.random((n, n)) < 0.6)).round(3)
        idx = np.nonzero(old_dense)
        old = UserPairMatrix.from_arrays(users, *idx, old_dense[idx])
        all_positions = np.arange(n, dtype=np.int64)
        region = _region_of(new_dense, users, set(range(n)), set(range(n)))
        patched, kept = old.patched(
            users, region, rows=all_positions, cols=all_positions
        )
        np.testing.assert_array_equal(self._dense(patched, n), new_dense)
        assert kept == 0  # nothing survives a whole-matrix patch

    def test_region_value_wins_over_old_at_same_key(self, users):
        """A key present in both old and region takes the region's value."""
        old = UserPairMatrix.from_arrays(users, [1, 2], [2, 3], [0.5, 0.25])
        region = UserPairMatrix(users)
        region.set("u1", "u2", 0.9)
        patched, kept = old.patched(
            users, region, rows=np.array([1]), cols=np.empty(0, dtype=np.int64)
        )
        assert patched.get("u1", "u2") == 0.9
        assert patched.get("u2", "u3") == 0.25
        assert kept == 1

    def test_overlapping_scatter_keys_within_region_last_write_wins(self, users):
        """Duplicate pending writes inside the region consolidate before
        the scatter -- the final value is the region's latest write."""
        old = UserPairMatrix.from_arrays(users, [0], [2], [0.1])
        region = UserPairMatrix(users)
        region.set("u1", "u2", 0.3)
        region.set("u1", "u2", 0.7)  # overwrites the pending write above
        patched, _ = old.patched(
            users, region, rows=np.array([1]), cols=np.empty(0, dtype=np.int64)
        )
        assert patched.get("u1", "u2") == 0.7
        assert patched.num_entries() == 2
