"""Property test: Epinions file round-trip on randomised communities."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.community import (
    Community,
    HELPFULNESS_SCALE,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)
from repro.datasets import load_epinions_community, write_epinions_files


@st.composite
def random_communities(draw):
    """Small random-but-valid communities (2-6 users, 1-3 categories)."""
    num_users = draw(st.integers(2, 6))
    num_categories = draw(st.integers(1, 3))
    users = [f"user{i}" for i in range(num_users)]
    categories = [f"cat{k}" for k in range(num_categories)]

    community = Community("prop")
    for user in users:
        community.add_user(user)
    for category in categories:
        community.add_category(category)

    num_objects = draw(st.integers(1, 5))
    for o in range(num_objects):
        community.add_object(
            ReviewedObject(f"obj{o}", categories[o % num_categories])
        )

    review_count = 0
    for o in range(num_objects):
        for writer in users:
            if draw(st.booleans()):
                community.add_review(Review(f"rev{review_count}", writer, f"obj{o}"))
                review_count += 1

    for review in list(community.iter_reviews()):
        for rater in users:
            if rater != review.writer_id and draw(st.booleans()):
                value = draw(st.sampled_from(HELPFULNESS_SCALE))
                community.add_rating(ReviewRating(rater, review.review_id, value))

    for source in users:
        for target in users:
            if source != target and draw(st.integers(0, 4)) == 0:
                community.add_trust(TrustStatement(source, target))
    return community


class TestEpinionsRoundtripProperty:
    @given(random_communities())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_roundtrip_preserves_relations(self, tmp_path_factory, community):
        directory = str(tmp_path_factory.mktemp("epinions"))
        write_epinions_files(community, directory)
        reloaded = load_epinions_community(directory)

        assert reloaded.num_reviews() == community.num_reviews()
        assert reloaded.num_ratings() == community.num_ratings()
        assert set(reloaded.trust_edges()) == set(community.trust_edges())

        original = community.direct_connections()
        rebuilt = reloaded.direct_connections()
        assert set(rebuilt) == set(original)
        for pair, values in original.items():
            assert sorted(rebuilt[pair]) == pytest.approx(sorted(values))

        # category assignment of every review survives
        for review in community.iter_reviews():
            assert reloaded.review_category(
                review.review_id
            ) == community.review_category(review.review_id)
