"""Tests for dataset statistics."""

import pytest

from repro.datasets import dataset_stats


class TestDatasetStats:
    def test_counts(self, two_category_community):
        stats = dataset_stats(two_category_community)
        assert stats.num_users == 5
        assert stats.num_categories == 2
        assert stats.num_objects == 3
        assert stats.num_reviews == 4
        assert stats.num_ratings == 6
        assert stats.num_trust_edges == 3

    def test_densities(self, two_category_community):
        stats = dataset_stats(two_category_community)
        # 5 direct pairs and 3 trust edges over 5*4 ordered pairs
        assert stats.rating_density == pytest.approx(5 / 20)
        assert stats.trust_density == pytest.approx(3 / 20)

    def test_ratings_per_review_counts_only_rated(self, two_category_community):
        stats = dataset_stats(two_category_community)
        # ra1 got 2, ra2 1, rb1 1, rc1 2 -> mean over the 4 rated reviews = 1.5
        assert stats.ratings_per_review == pytest.approx(6 / 4)

    def test_per_category_breakdown(self, two_category_community):
        stats = dataset_stats(two_category_community)
        by_name = {c.name: c for c in stats.per_category}
        movies = by_name["movies"]
        assert movies.num_reviews == 3
        assert movies.num_ratings == 4  # bob->ra1, dave->ra1, bob->ra2, dave->rb1
        assert movies.num_writers == 2
        assert movies.num_raters == 2
        books = by_name["books"]
        assert books.num_reviews == 1
        assert books.num_raters == 2

    def test_latents_validation(self):
        import numpy as np

        from repro.common.errors import ValidationError
        from repro.datasets import LatentTraits
        from repro.matrix import LabelIndex

        users = LabelIndex(["u1", "u2"])
        cats = LabelIndex(["c1"])
        good = LatentTraits(
            users=users,
            categories=cats,
            interest=np.array([[1.0], [1.0]]),
            writer_skill=np.array([0.5, 0.5]),
            rater_reliability=np.array([0.5, 0.5]),
            generosity=np.array([0.5, 0.5]),
        )
        assert good.skill_of("u1") == 0.5
        assert good.interest_of("u2") == {"c1": 1.0}
        with pytest.raises(ValidationError):
            LatentTraits(
                users=users,
                categories=cats,
                interest=np.array([[1.0]]),  # wrong shape
                writer_skill=np.array([0.5, 0.5]),
                rater_reliability=np.array([0.5, 0.5]),
                generosity=np.array([0.5, 0.5]),
            )
        with pytest.raises(ValidationError):
            LatentTraits(
                users=users,
                categories=cats,
                interest=np.array([[1.0], [1.0]]),
                writer_skill=np.array([0.5, 1.5]),  # out of range
                rater_reliability=np.array([0.5, 0.5]),
                generosity=np.array([0.5, 0.5]),
            )
