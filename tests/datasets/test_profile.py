"""Tests for CommunityProfile validation."""

import pytest

from repro.common.errors import ValidationError
from repro.datasets import VIDEO_DVD_SUBCATEGORIES, CommunityProfile


class TestDefaults:
    def test_default_categories_match_paper(self):
        profile = CommunityProfile()
        assert profile.category_names == VIDEO_DVD_SUBCATEGORIES
        assert profile.num_categories == 12

    def test_default_designation_sizes_match_paper(self):
        profile = CommunityProfile()
        assert profile.num_advisors == 22
        assert profile.num_top_reviewers == 40


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_users": 0},
            {"num_users": -5},
            {"category_names": ()},
            {"category_names": ("a", "a")},
            {"objects_per_category": 0},
            {"interest_concentration": 0.0},
            {"category_weight_decay": 1.5},
            {"writer_fraction": 1.2},
            {"rater_fraction": -0.1},
            {"writer_activity_exponent": 1.0},
            {"rater_activity_exponent": 0.9},
            {"activity_cap": 0},
            {"rating_noise": -0.1},
            {"rating_exploration": 1.5},
            {"writing_exploration": -0.2},
            {"trust_noise": 2.0},
            {"trust_exposure": -0.5},
            {"trust_out_of_connection_fraction": 1.0001},
            {"trust_alignment_sharpness": 0.0},
            {"num_advisors": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            CommunityProfile(**kwargs)

    def test_frozen(self):
        profile = CommunityProfile()
        with pytest.raises(AttributeError):
            profile.num_users = 10


class TestScaled:
    def test_scales_population(self):
        profile = CommunityProfile(num_users=100, objects_per_category=10)
        bigger = profile.scaled(2.0)
        assert bigger.num_users == 200
        assert bigger.objects_per_category == 20

    def test_preserves_other_knobs(self):
        profile = CommunityProfile(rating_noise=0.4)
        assert profile.scaled(0.5).rating_noise == 0.4

    def test_never_scales_to_zero(self):
        assert CommunityProfile(num_users=3).scaled(0.01).num_users == 1

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValidationError):
            CommunityProfile().scaled(0.0)
