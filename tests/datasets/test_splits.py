"""Tests for hold-out splitting."""

import pytest

from repro.common.errors import ValidationError
from repro.datasets import CommunityProfile, generate_community
from repro.datasets.splits import holdout_ratings


@pytest.fixture(scope="module")
def dataset():
    profile = CommunityProfile(
        num_users=80, category_names=("a", "b"), objects_per_category=20,
        num_advisors=5, num_top_reviewers=5,
    )
    return generate_community(profile, seed=9)


class TestHoldoutRatings:
    def test_partition_sizes(self, dataset):
        total = dataset.community.num_ratings()
        train, held = holdout_ratings(dataset.community, 0.2, seed=1)
        assert len(held) == int(round(0.2 * total))
        assert train.num_ratings() + len(held) == total

    def test_original_untouched(self, dataset):
        before = dataset.community.num_ratings()
        holdout_ratings(dataset.community, 0.3, seed=1)
        assert dataset.community.num_ratings() == before

    def test_structure_preserved(self, dataset):
        train, _ = holdout_ratings(dataset.community, 0.2, seed=1)
        assert train.num_users() == dataset.community.num_users()
        assert train.num_reviews() == dataset.community.num_reviews()
        assert train.num_trust_edges() == dataset.community.num_trust_edges()
        assert train.database.verify_integrity() == []

    def test_held_out_reviews_exist_in_train(self, dataset):
        train, held = holdout_ratings(dataset.community, 0.25, seed=2)
        for rating in held:
            train.review_writer(rating.review_id)  # raises if absent

    def test_deterministic(self, dataset):
        _, held_a = holdout_ratings(dataset.community, 0.2, seed=3)
        _, held_b = holdout_ratings(dataset.community, 0.2, seed=3)
        assert held_a == held_b

    def test_seed_changes_split(self, dataset):
        _, held_a = holdout_ratings(dataset.community, 0.2, seed=3)
        _, held_b = holdout_ratings(dataset.community, 0.2, seed=4)
        assert held_a != held_b

    def test_drop_trust(self, dataset):
        train, _ = holdout_ratings(dataset.community, 0.2, seed=1, keep_trust=False)
        assert train.num_trust_edges() == 0

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.1, 1.5])
    def test_bad_fraction(self, dataset, fraction):
        with pytest.raises(ValidationError):
            holdout_ratings(dataset.community, fraction)

    def test_too_few_ratings(self):
        from repro.community import Community

        with pytest.raises(ValidationError, match="at least 2"):
            holdout_ratings(Community("empty"), 0.5)
