"""Tests for temporal trust evolution."""

import pytest

from repro.common.errors import ValidationError
from repro.datasets import CommunityProfile, generate_community
from repro.datasets.evolution import evolve_trust
from repro.trust import direct_connection_matrix, ground_truth_matrix


@pytest.fixture(scope="module")
def dataset():
    profile = CommunityProfile(
        num_users=120, category_names=("a", "b"), objects_per_category=25,
        num_advisors=6, num_top_reviewers=8,
    )
    return generate_community(profile, seed=41)


class TestEvolveTrust:
    def test_original_edges_preserved(self, dataset):
        evolution = evolve_trust(dataset)
        original = ground_truth_matrix(dataset.community)
        assert original.support() <= evolution.future_trust.support()

    def test_new_edges_disjoint_from_original(self, dataset):
        evolution = evolve_trust(dataset)
        original = set(dataset.community.trust_edges())
        assert not (evolution.new_edges & original)

    def test_new_edges_come_from_connections(self, dataset):
        evolution = evolve_trust(dataset)
        connections = direct_connection_matrix(dataset.community).support()
        assert evolution.new_edges <= connections

    def test_some_conversion_happens(self, dataset):
        evolution = evolve_trust(dataset, conversion_fraction=0.8)
        assert len(evolution.new_edges) > 0

    def test_conversion_fraction_scales_growth(self, dataset):
        low = evolve_trust(dataset, conversion_fraction=0.2, seed=2)
        high = evolve_trust(dataset, conversion_fraction=0.9, seed=2)
        assert len(high.new_edges) > len(low.new_edges)

    def test_deterministic_per_seed(self, dataset):
        a = evolve_trust(dataset, seed=3)
        b = evolve_trust(dataset, seed=3)
        assert a.new_edges == b.new_edges

    def test_seed_changes_conversions(self, dataset):
        a = evolve_trust(dataset, seed=3)
        b = evolve_trust(dataset, seed=4)
        assert a.new_edges != b.new_edges

    def test_fraction_validation(self, dataset):
        with pytest.raises(ValidationError):
            evolve_trust(dataset, conversion_fraction=1.5)

    def test_alignment_preference(self, dataset):
        """Converted edges must have higher latent alignment on average
        than unconverted candidates -- evolution follows preferences."""
        import numpy as np

        evolution = evolve_trust(dataset, conversion_fraction=0.4, seed=5)
        latents = dataset.latents
        original = set(dataset.community.trust_edges())
        connections = direct_connection_matrix(dataset.community).support()
        candidates = connections - original
        unconverted = candidates - evolution.new_edges
        if evolution.new_edges and unconverted:
            converted_scores = [
                latents.expertise_alignment(s, t) for s, t in evolution.new_edges
            ]
            unconverted_scores = [
                latents.expertise_alignment(s, t) for s, t in list(unconverted)[:500]
            ]
            assert np.mean(converted_scores) > np.mean(unconverted_scores)
