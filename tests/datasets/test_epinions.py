"""Tests for the extended-Epinions-format loaders."""

import os

import pytest

from repro.common.errors import DatasetError
from repro.datasets import (
    CommunityProfile,
    generate_community,
    load_epinions_community,
    write_epinions_files,
)


def write(path, lines):
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


@pytest.fixture
def epinions_dir(tmp_path):
    """A tiny, hand-written extended-Epinions dump."""
    write(
        tmp_path / "mc.txt",
        [
            "r1|alice|movie-1|movies",
            "r2|bob|movie-1|movies",
            "r3|alice|book-1|books",
        ],
    )
    write(
        tmp_path / "rating.txt",
        [
            "r1|bob|5",
            "r1|carol|4",
            "r2|carol|2",
            "r3|bob|3",
        ],
    )
    write(
        tmp_path / "user_rating.txt",
        [
            "bob|alice|1",
            "carol|alice|1",
            "carol|bob|-1",  # distrust: dropped
        ],
    )
    return str(tmp_path)


class TestLoading:
    def test_entities_loaded(self, epinions_dir):
        community = load_epinions_community(epinions_dir)
        assert set(community.user_ids()) == {"alice", "bob", "carol"}
        assert set(community.category_ids()) == {"books", "movies"}
        assert community.num_reviews() == 3
        assert community.num_ratings() == 4

    def test_star_ratings_mapped_to_scale(self, epinions_dir):
        community = load_epinions_community(epinions_dir)
        assert community.ratings_of_review("r1") == [("bob", 1.0), ("carol", 0.8)]
        assert community.ratings_of_review("r2") == [("carol", 0.4)]

    def test_distrust_edges_dropped(self, epinions_dir):
        community = load_epinions_community(epinions_dir)
        assert set(community.trust_edges()) == {("bob", "alice"), ("carol", "alice")}

    def test_categories_inherited_by_reviews(self, epinions_dir):
        community = load_epinions_community(epinions_dir)
        assert community.review_category("r3") == "books"

    def test_three_column_content_defaults_category(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|thing-1"])
        write(tmp_path / "rating.txt", ["r1|bob|3"])
        community = load_epinions_community(str(tmp_path))
        assert community.category_ids() == ["epinions"]

    def test_missing_trust_file_ok(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|thing-1"])
        write(tmp_path / "rating.txt", ["r1|bob|3"])
        community = load_epinions_community(str(tmp_path))
        assert community.num_trust_edges() == 0

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        write(tmp_path / "mc.txt", ["# header", "", "r1|alice|thing-1"])
        write(tmp_path / "rating.txt", ["r1|bob|3", ""])
        community = load_epinions_community(str(tmp_path))
        assert community.num_reviews() == 1


class TestDirtyData:
    def test_missing_content_file(self, tmp_path):
        with pytest.raises(DatasetError, match="content file"):
            load_epinions_community(str(tmp_path))

    def test_missing_rating_file(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        with pytest.raises(DatasetError, match="rating file"):
            load_epinions_community(str(tmp_path))

    def test_unknown_review_skipped_by_default(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["r1|bob|3", "ghost|bob|3"])
        community = load_epinions_community(str(tmp_path))
        assert community.num_ratings() == 1

    def test_unknown_review_raises_when_strict(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["ghost|bob|3"])
        with pytest.raises(DatasetError, match="unknown review"):
            load_epinions_community(str(tmp_path), skip_unknown_reviews=False)

    def test_self_ratings_skipped(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["r1|alice|5", "r1|bob|3"])
        community = load_epinions_community(str(tmp_path))
        assert community.ratings_of_review("r1") == [("bob", 0.6)]

    def test_duplicate_rating_keeps_first(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["r1|bob|5", "r1|bob|1"])
        community = load_epinions_community(str(tmp_path))
        assert community.ratings_of_review("r1") == [("bob", 1.0)]

    def test_out_of_range_stars_rejected(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["r1|bob|9"])
        with pytest.raises(DatasetError, match="1..5"):
            load_epinions_community(str(tmp_path))

    def test_malformed_rating_value(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["r1|bob|five"])
        with pytest.raises(DatasetError, match="bad rating"):
            load_epinions_community(str(tmp_path))

    def test_short_content_line(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice"])
        write(tmp_path / "rating.txt", ["r1|bob|3"])
        with pytest.raises(DatasetError, match="expected 3 or 4"):
            load_epinions_community(str(tmp_path))

    def test_self_trust_dropped(self, tmp_path):
        write(tmp_path / "mc.txt", ["r1|alice|t"])
        write(tmp_path / "rating.txt", ["r1|bob|3"])
        write(tmp_path / "user_rating.txt", ["bob|bob|1", "bob|alice|1"])
        community = load_epinions_community(str(tmp_path))
        assert community.trust_edges() == [("bob", "alice")]


class TestRoundTrip:
    def test_synthetic_community_roundtrips(self, tmp_path):
        profile = CommunityProfile(
            num_users=60,
            category_names=("a", "b"),
            objects_per_category=15,
            num_advisors=5,
            num_top_reviewers=5,
        )
        original = generate_community(profile, seed=3).community
        write_epinions_files(original, str(tmp_path))
        reloaded = load_epinions_community(str(tmp_path))

        # same relations (users may differ: only active users appear in files)
        assert reloaded.num_reviews() == original.num_reviews()
        assert reloaded.num_ratings() == original.num_ratings()
        assert set(reloaded.trust_edges()) == set(original.trust_edges())
        original_pairs = original.direct_connections()
        reloaded_pairs = reloaded.direct_connections()
        assert set(reloaded_pairs) == set(original_pairs)
        for pair, values in original_pairs.items():
            assert sorted(reloaded_pairs[pair]) == sorted(values)

    def test_files_created(self, tmp_path, epinions_dir):
        community = load_epinions_community(epinions_dir)
        out = tmp_path / "out"
        write_epinions_files(community, str(out))
        assert sorted(os.listdir(out)) == ["mc.txt", "rating.txt", "user_rating.txt"]
