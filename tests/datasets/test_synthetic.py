"""Tests for the synthetic community generator."""

import numpy as np
import pytest

from repro.datasets import CommunityProfile, generate_community

SMALL = CommunityProfile(
    num_users=120,
    category_names=("movies", "books", "music", "games"),
    objects_per_category=25,
    num_advisors=8,
    num_top_reviewers=10,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_community(SMALL, seed=13)


class TestDeterminism:
    def test_same_seed_same_dataset(self, dataset):
        again = generate_community(SMALL, seed=13)
        assert again.community.summary() == dataset.community.summary()
        assert again.advisors == dataset.advisors
        assert again.top_reviewers == dataset.top_reviewers
        assert again.community.trust_edges() == dataset.community.trust_edges()
        assert list(again.community.iter_ratings()) == list(
            dataset.community.iter_ratings()
        )

    def test_different_seed_different_dataset(self, dataset):
        other = generate_community(SMALL, seed=14)
        assert other.community.trust_edges() != dataset.community.trust_edges()

    def test_latents_reproducible(self, dataset):
        again = generate_community(SMALL, seed=13)
        np.testing.assert_array_equal(again.latents.interest, dataset.latents.interest)
        np.testing.assert_array_equal(
            again.latents.writer_skill, dataset.latents.writer_skill
        )


class TestStructure:
    def test_population_sizes(self, dataset):
        assert dataset.community.num_users() == SMALL.num_users
        assert dataset.community.num_categories() == 4
        assert len(dataset.community.object_ids()) == 4 * 25

    def test_category_names_applied(self, dataset):
        names = {
            row["name"]
            for row in dataset.community.database.table("categories").rows()
        }
        assert names == {"movies", "books", "music", "games"}

    def test_reviews_and_ratings_exist(self, dataset):
        assert dataset.community.num_reviews() > 50
        assert dataset.community.num_ratings() > dataset.community.num_reviews()

    def test_trust_edges_exist(self, dataset):
        assert dataset.community.num_trust_edges() > 0

    def test_integrity_holds(self, dataset):
        assert dataset.community.database.verify_integrity() == []

    def test_designations_sized_and_distinct(self, dataset):
        assert len(dataset.advisors) == SMALL.num_advisors
        assert len(set(dataset.advisors)) == SMALL.num_advisors
        assert len(dataset.top_reviewers) == SMALL.num_top_reviewers

    def test_true_quality_covers_all_reviews(self, dataset):
        review_ids = {r.review_id for r in dataset.community.iter_reviews()}
        assert set(dataset.true_review_quality) == review_ids
        for quality in dataset.true_review_quality.values():
            assert 0.0 < quality <= 1.0

    def test_describe_keys(self, dataset):
        described = dataset.describe()
        assert described["users"] == SMALL.num_users
        assert 0.0 < described["trust_density"] < 1.0


class TestGenerativeSemantics:
    def test_advisors_are_active_raters(self, dataset):
        counts: dict[str, int] = {}
        for rating in dataset.community.iter_ratings():
            counts[rating.rater_id] = counts.get(rating.rater_id, 0) + 1
        median = float(np.median([c for c in counts.values()]))
        for advisor in dataset.advisors:
            assert counts.get(advisor, 0) >= median

    def test_top_reviewers_write(self, dataset):
        writers = {r.writer_id for r in dataset.community.iter_reviews()}
        assert set(dataset.top_reviewers) <= writers

    def test_nobody_rates_own_review(self, dataset):
        for rating in dataset.community.iter_ratings():
            writer = dataset.community.review_writer(rating.review_id)
            assert writer != rating.rater_id

    def test_trust_edges_point_at_writers(self, dataset):
        writers = {r.writer_id for r in dataset.community.iter_reviews()}
        for _, trustee in dataset.community.trust_edges():
            assert trustee in writers

    def test_ratings_follow_quality(self, dataset):
        """Observed mean rating must correlate positively with true quality."""
        received: dict[str, list[float]] = {}
        for rating in dataset.community.iter_ratings():
            received.setdefault(rating.review_id, []).append(rating.value)
        pairs = [
            (dataset.true_review_quality[rid], float(np.mean(vals)))
            for rid, vals in received.items()
            if len(vals) >= 3
        ]
        assert len(pairs) > 10
        true_q, observed = zip(*pairs)
        corr = np.corrcoef(true_q, observed)[0, 1]
        assert corr > 0.5

    def test_trust_prefers_aligned_writers(self, dataset):
        """Trusted writers have higher latent alignment than untrusted ones."""
        latents = dataset.latents
        trusted_scores, untrusted_scores = [], []
        writers = {r.writer_id for r in dataset.community.iter_reviews()}
        trust = set(dataset.community.trust_edges())
        rng = np.random.default_rng(0)
        users = dataset.community.user_ids()
        for source, target in list(trust)[:300]:
            trusted_scores.append(latents.expertise_alignment(source, target))
            random_writer = rng.choice(sorted(writers - {source}))
            untrusted_scores.append(latents.expertise_alignment(source, random_writer))
        assert np.mean(trusted_scores) > np.mean(untrusted_scores)

    def test_activity_is_heavy_tailed(self, dataset):
        counts = {}
        for rating in dataset.community.iter_ratings():
            counts[rating.rater_id] = counts.get(rating.rater_id, 0) + 1
        values = sorted(counts.values(), reverse=True)
        # the top rater is far above the median -- zipf shape
        assert values[0] >= 10 * np.median(values)


class TestSmallPopulations:
    def test_single_user_community(self):
        profile = CommunityProfile(
            num_users=1, category_names=("c",), objects_per_category=3,
            num_advisors=1, num_top_reviewers=1,
        )
        ds = generate_community(profile, seed=1)
        # one user cannot rate (own reviews only) nor trust anyone
        assert ds.community.num_ratings() == 0
        assert ds.community.num_trust_edges() == 0

    def test_two_users(self):
        profile = CommunityProfile(
            num_users=2, category_names=("c",), objects_per_category=5,
            num_advisors=2, num_top_reviewers=2,
        )
        ds = generate_community(profile, seed=3)
        assert ds.community.num_users() == 2
        assert ds.community.database.verify_integrity() == []

    def test_designations_capped_by_active_users(self):
        profile = CommunityProfile(
            num_users=3, category_names=("c",), objects_per_category=4,
            num_advisors=10, num_top_reviewers=10,
        )
        ds = generate_community(profile, seed=5)
        assert len(ds.advisors) <= 3
        assert len(ds.top_reviewers) <= 3
