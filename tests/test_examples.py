"""Smoke tests keeping the example scripts honest.

The quickstart (fast, deterministic) runs fully; the heavier examples are
compiled and import-checked so signature drift in the public API breaks
the build rather than the README.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "movie_community.py",
            "ecommerce_cold_start.py",
            "trust_propagation.py",
            "review_recommendation.py",
        } <= names

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_runs(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "dan's most trusted reviewer is ana" in result.stdout

    def test_trust_propagation_runs(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "trust_propagation.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "EigenTrust global top-5" in result.stdout
