"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

ARGS = ["--users", "150", "--seed", "3"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["table4"])
        assert args.users == 1200
        assert args.seed == 7

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_stats_synthetic(self, capsys):
        assert main(["stats", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "Dataset statistics" in out
        assert "trust density" in out

    def test_generate_then_stats_dir(self, tmp_path, capsys):
        out_dir = str(tmp_path / "data")
        assert main(["generate", *ARGS, "--out", out_dir]) == 0
        assert main(["stats", "--dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "Dataset statistics" in out

    def test_derive_writes_edges(self, tmp_path, capsys):
        data_dir = str(tmp_path / "data")
        out_file = str(tmp_path / "trust.txt")
        main(["generate", *ARGS, "--out", data_dir])
        assert main(["derive", "--dir", data_dir, "--out", out_file]) == 0
        with open(out_file) as f:
            lines = f.read().strip().splitlines()
        assert len(lines) > 100
        source, target, value = lines[0].split("|")
        assert 0.0 < float(value) <= 1.0

    def test_update_replays_stream_and_verifies(self, capsys):
        assert main(["update", *ARGS, "--stream", "6", "--batch", "3"]) == 0
        out = capsys.readouterr().out
        assert "cold build at epoch" in out
        assert "Incremental updates" in out
        assert "final state verified bitwise against a cold build" in out

    def test_update_skip_verify(self, capsys):
        assert main(["update", *ARGS, "--stream", "2", "--skip-verify"]) == 0
        out = capsys.readouterr().out
        assert "verified bitwise" not in out

    def test_table4_command(self, capsys):
        assert main(["table4", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "T-hat (our model)" in out

    def test_fig3_command(self, capsys):
        assert main(["fig3", *ARGS]) == 0
        assert "Fig. 3" in capsys.readouterr().out

    def test_table2_command(self, capsys):
        assert main(["table2", *ARGS]) == 0
        assert "Table 2" in capsys.readouterr().out
