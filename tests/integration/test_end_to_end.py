"""End-to-end integration tests across every subsystem."""

import numpy as np
import pytest

from repro.datasets import (
    CommunityProfile,
    generate_community,
    load_epinions_community,
    write_epinions_files,
)
from repro.experiments import run_pipeline, run_table4
from repro.metrics import validate_trust

PROFILE = CommunityProfile(
    num_users=130,
    category_names=("a", "b", "c"),
    objects_per_category=30,
    num_advisors=6,
    num_top_reviewers=8,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_community(PROFILE, seed=31)


@pytest.fixture(scope="module")
def artifacts(dataset):
    return run_pipeline(dataset=dataset)


class TestPipelineDeterminism:
    def test_same_seed_same_derived_matrix(self, dataset, artifacts):
        again = run_pipeline(dataset=generate_community(PROFILE, seed=31))
        assert again.derived == artifacts.derived
        assert again.generousness_by_user == artifacts.generousness_by_user

    def test_different_seed_changes_output(self, artifacts):
        other = run_pipeline(dataset=generate_community(PROFILE, seed=32))
        assert other.derived != artifacts.derived


class TestFileRoundtripEquivalence:
    def test_pipeline_identical_after_file_roundtrip(self, dataset, artifacts, tmp_path):
        """Serialise to Epinions files, reload, re-run: identical results.

        Proves the loaders/writers preserve everything the framework
        consumes (the acid test for running on real Epinions dumps).
        """
        write_epinions_files(dataset.community, str(tmp_path))
        reloaded = load_epinions_community(str(tmp_path))
        again = run_pipeline(community=reloaded)

        # the user axes may be ordered differently (file users are sorted,
        # and inactive users are absent), so compare by pair values
        for source, target, value in artifacts.derived.entries():
            if source in again.derived.users and target in again.derived.users:
                assert again.derived.get(source, target) == pytest.approx(value, abs=1e-9)

        original_metrics = validate_trust(
            artifacts.derived_binary, artifacts.connections, artifacts.ground_truth
        )
        reloaded_metrics = validate_trust(
            again.derived_binary, again.connections, again.ground_truth
        )
        assert reloaded_metrics.recall == pytest.approx(original_metrics.recall, abs=1e-9)
        assert reloaded_metrics.trust_in_r == original_metrics.trust_in_r


class TestCrossSubsystemInvariants:
    def test_expertise_only_for_writers(self, dataset, artifacts):
        writers = {r.writer_id for r in dataset.community.iter_reviews()}
        expertise = artifacts.expertise
        for user in dataset.community.user_ids():
            row_sum = expertise.user_row(user).sum()
            if user not in writers:
                assert row_sum == 0.0

    def test_derived_rows_only_for_affiliated_users(self, artifacts):
        for source in artifacts.derived.source_ids():
            assert artifacts.affiliation.user_row(source).sum() > 0.0

    def test_table4_count_identities(self, artifacts):
        result = run_table4(artifacts)
        R = artifacts.connections.num_entries()
        assert result.model.trust_in_r + result.model.nontrust_in_r == R

    def test_generousness_matches_definition(self, artifacts):
        R = artifacts.connections
        T = artifacts.ground_truth
        for user, k in list(artifacts.generousness_by_user.items())[:25]:
            row = R.row(user)
            trusted = sum(1 for target in row if T.contains(user, target))
            assert k == pytest.approx(trusted / len(row))

    def test_quality_estimates_track_latent_quality(self, dataset, artifacts):
        """Step 1's review qualities must correlate with the simulator's
        latent qualities -- the estimator recovers the ground truth."""
        estimated: list[float] = []
        latent: list[float] = []
        for category_id in dataset.community.category_ids():
            for review_id, quality in artifacts.expertise_result.review_quality(
                category_id
            ).items():
                estimated.append(quality)
                latent.append(dataset.true_review_quality[review_id])
        corr = np.corrcoef(estimated, latent)[0, 1]
        assert corr > 0.6

    def test_rater_reputation_tracks_latent_reliability(self, dataset, artifacts):
        latents = dataset.latents
        pairs = []
        # at low per-category counts the estimate is dominated by the
        # experience discount and sampling noise, so restrict to raters
        # with enough evidence for eq. 2 to see their reliability
        for category_id in dataset.community.category_ids():
            counts = dataset.community.rating_counts(category_id)
            for user, count in counts.items():
                if count >= 8:
                    pairs.append(
                        (
                            artifacts.rater_reputation.get(user, category_id),
                            latents.reliability_of(user),
                        )
                    )
        assert len(pairs) > 20
        estimated, latent = zip(*pairs)
        assert np.corrcoef(estimated, latent)[0, 1] > 0.25
