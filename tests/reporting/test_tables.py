"""Tests for ASCII table rendering."""

import pytest

from repro.common.errors import ValidationError
from repro.reporting import format_float, format_percent, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0] == "a  | b"
        assert lines[1] == "---+---"
        assert lines[2] == "1  | x"
        assert lines[3] == "22 | yy"

    def test_title(self):
        text = render_table(["col"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_floats_formatted(self):
        text = render_table(["v"], [[0.123456]])
        assert "0.123" in text

    def test_wide_cells_grow_column(self):
        text = render_table(["v"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_no_headers_rejected(self):
        with pytest.raises(ValidationError):
            render_table([], [])

    def test_ragged_row_rejected(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [[1]])


class TestFormatters:
    def test_format_float(self):
        assert format_float(0.8571) == "0.857"
        assert format_float(0.8571, 1) == "0.9"

    def test_format_percent(self):
        assert format_percent(0.984) == "98.4%"
        assert format_percent(1.0, 0) == "100%"
