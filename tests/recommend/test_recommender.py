"""Tests for the trust-aware recommender."""

import pytest

from repro.common.errors import ValidationError
from repro.experiments import run_pipeline
from repro.recommend import TrustAwareRecommender


@pytest.fixture(scope="module")
def recommender(small_recommend_artifacts):
    return TrustAwareRecommender(small_recommend_artifacts)


@pytest.fixture(scope="module")
def small_recommend_artifacts():
    from repro.datasets import CommunityProfile, generate_community

    profile = CommunityProfile(
        num_users=120, category_names=("a", "b", "c"), objects_per_category=30,
        num_advisors=6, num_top_reviewers=8,
    )
    return run_pipeline(dataset=generate_community(profile, seed=17))


class TestScoring:
    def test_score_in_unit_interval(self, recommender, small_recommend_artifacts):
        community = small_recommend_artifacts.community
        user = community.user_ids()[0]
        for review in list(community.iter_reviews())[:20]:
            if review.writer_id == user:
                continue
            assert 0.0 <= recommender.score(user, review.review_id) <= 1.0

    def test_trust_gates_score(self, recommender, small_recommend_artifacts):
        """Same review, two readers: the one with higher derived trust in
        the writer must score the review at least as high."""
        community = small_recommend_artifacts.community
        derived = small_recommend_artifacts.derived
        checked = 0
        for review in list(community.iter_reviews())[:50]:
            writer = review.writer_id
            readers = [u for u in community.user_ids()[:40] if u != writer]
            readers.sort(key=lambda u: derived.get(u, writer))
            low, high = readers[0], readers[-1]
            if derived.get(high, writer) > derived.get(low, writer):
                assert recommender.score(high, review.review_id) > recommender.score(
                    low, review.review_id
                )
                checked += 1
        assert checked > 5

    def test_predict_rating_bounds(self, recommender, small_recommend_artifacts):
        community = small_recommend_artifacts.community
        user = community.user_ids()[1]
        for review in list(community.iter_reviews())[:20]:
            prediction = recommender.predict_rating(user, review.review_id)
            assert 0.0 <= prediction <= 1.0

    def test_unknown_user_rejected(self, recommender, small_recommend_artifacts):
        review = next(iter(small_recommend_artifacts.community.iter_reviews()))
        with pytest.raises(ValidationError):
            recommender.predict_rating("ghost", review.review_id)

    def test_blend_validation(self, small_recommend_artifacts):
        with pytest.raises(ValidationError):
            TrustAwareRecommender(small_recommend_artifacts, blend=1.5)

    def test_blend_one_is_pure_quality(self, small_recommend_artifacts):
        pure = TrustAwareRecommender(small_recommend_artifacts, blend=1.0)
        community = small_recommend_artifacts.community
        user = community.user_ids()[0]
        for review in list(community.iter_reviews())[:10]:
            assert pure.score(user, review.review_id) == pytest.approx(
                pure.review_quality(review.review_id)
            )


class TestRecommend:
    def test_returns_k_sorted(self, recommender, small_recommend_artifacts):
        user = small_recommend_artifacts.community.user_ids()[0]
        recs = recommender.recommend(user, k=5)
        assert len(recs) == 5
        scores = [rec.score for rec in recs]
        assert scores == sorted(scores, reverse=True)

    def test_own_reviews_excluded(self, recommender, small_recommend_artifacts):
        community = small_recommend_artifacts.community
        writer = next(iter(community.iter_reviews())).writer_id
        recs = recommender.recommend(writer, k=50)
        assert all(rec.writer_id != writer for rec in recs)

    def test_rated_reviews_excluded_by_default(
        self, recommender, small_recommend_artifacts
    ):
        community = small_recommend_artifacts.community
        user = next(
            u for u in community.user_ids() if community.ratings_by_rater(u)
        )
        rated = {rid for rid, _ in community.ratings_by_rater(user)}
        recs = recommender.recommend(user, k=100)
        assert all(rec.review_id not in rated for rec in recs)

    def test_rated_reviews_included_on_request(
        self, recommender, small_recommend_artifacts
    ):
        community = small_recommend_artifacts.community
        user = max(
            community.user_ids(), key=lambda u: len(community.ratings_by_rater(u))
        )
        with_rated = recommender.recommend(user, k=500, exclude_rated=False)
        without = recommender.recommend(user, k=500)
        assert len(with_rated) > len(without)

    def test_category_filter(self, recommender, small_recommend_artifacts):
        community = small_recommend_artifacts.community
        user = community.user_ids()[0]
        category = community.category_ids()[0]
        recs = recommender.recommend(user, category_id=category, k=10)
        assert all(rec.category_id == category for rec in recs)

    def test_k_validation(self, recommender, small_recommend_artifacts):
        user = small_recommend_artifacts.community.user_ids()[0]
        with pytest.raises(ValidationError):
            recommender.recommend(user, k=0)

    def test_unknown_user(self, recommender):
        with pytest.raises(ValidationError):
            recommender.recommend("ghost")
