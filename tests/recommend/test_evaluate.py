"""Tests for recommendation evaluation on held-out ratings."""

import pytest

from repro.common.errors import ValidationError
from repro.datasets import CommunityProfile, generate_community
from repro.datasets.splits import holdout_ratings
from repro.experiments import run_pipeline
from repro.recommend import TrustAwareRecommender, evaluate_predictions


@pytest.fixture(scope="module")
def split_setup():
    profile = CommunityProfile(
        num_users=150, category_names=("a", "b", "c"), objects_per_category=40,
        num_advisors=6, num_top_reviewers=8,
    )
    dataset = generate_community(profile, seed=19)
    train, held_out = holdout_ratings(dataset.community, 0.2, seed=1)
    artifacts = run_pipeline(community=train)
    return TrustAwareRecommender(artifacts), held_out


class TestEvaluatePredictions:
    def test_report_counts(self, split_setup):
        recommender, held_out = split_setup
        report = evaluate_predictions(recommender, held_out)
        assert report.count == len(held_out)

    def test_errors_bounded(self, split_setup):
        recommender, held_out = split_setup
        report = evaluate_predictions(recommender, held_out)
        # ratings live in [0.2, 1.0]: MAE can never exceed 0.8
        for value in (
            report.model_mae,
            report.global_mean_mae,
            report.writer_mean_mae,
        ):
            assert 0.0 <= value <= 0.8
        assert report.model_rmse >= report.model_mae

    def test_model_beats_global_mean(self, split_setup):
        """Trust/quality-aware predictions must beat a constant predictor."""
        recommender, held_out = split_setup
        report = evaluate_predictions(recommender, held_out)
        assert report.beats_global_mean
        assert report.model_rmse < report.global_mean_rmse

    def test_empty_holdout_rejected(self, split_setup):
        recommender, _ = split_setup
        with pytest.raises(ValidationError):
            evaluate_predictions(recommender, [])
