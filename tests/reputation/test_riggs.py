"""Tests for the review-quality / rater-reputation fixed point (eqs. 1-2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConvergenceError, ValidationError
from repro.reputation import RiggsConfig, experience_discount, solve_category

SCALE = (0.2, 0.4, 0.6, 0.8, 1.0)


class TestExperienceDiscount:
    def test_paper_values(self):
        assert experience_discount(1) == pytest.approx(0.5)
        assert experience_discount(9) == pytest.approx(0.9)

    def test_monotone_increasing(self):
        values = experience_discount(np.arange(1, 100))
        assert np.all(np.diff(values) > 0)

    def test_approaches_one(self):
        assert experience_discount(10**6) == pytest.approx(1.0, abs=1e-5)


class TestRiggsConfig:
    def test_defaults_valid(self):
        cfg = RiggsConfig()
        assert cfg.tolerance == 1e-9
        assert cfg.weight_by_rater_reputation

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": 0.0},
            {"tolerance": -1e-9},
            {"max_iterations": 0},
            {"damping": 1.5},
            {"damping": -0.1},
            {"initial_reputation": 2.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            RiggsConfig(**kwargs)


class TestDegenerateInputs:
    def test_empty_input(self):
        result = solve_category([])
        assert result.review_quality == {}
        assert result.rater_reputation == {}
        assert result.iterations == 0

    def test_single_rating(self):
        # One rater, one review: quality = the rating; deviation = 0;
        # reputation = (1 - 1/2) * (1 - 0) = 0.5.
        result = solve_category([("u1", "r1", 0.8)])
        assert result.review_quality == {"r1": pytest.approx(0.8)}
        assert result.rater_reputation == {"u1": pytest.approx(0.5)}

    def test_unanimous_raters(self):
        # Everyone rates everything 0.6: zero deviation, reputation equals
        # the pure experience discount.
        triples = [(f"u{i}", f"r{j}", 0.6) for i in range(3) for j in range(4)]
        result = solve_category(triples)
        for quality in result.review_quality.values():
            assert quality == pytest.approx(0.6)
        for rep in result.rater_reputation.values():
            assert rep == pytest.approx(float(experience_discount(4)))

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            solve_category([("u1", "r1", 0.8), ("u1", "r1", 0.6)])

    @pytest.mark.parametrize("value", [-0.1, 1.1, "high", None, True])
    def test_bad_values_rejected(self, value):
        with pytest.raises(ValidationError):
            solve_category([("u1", "r1", value)])


class TestFixedPointBehaviour:
    @pytest.fixture
    def consensus_vs_deviant(self):
        """Three raters agree (1.0) on r1..r4; one always rates 0.2."""
        triples = []
        for j in range(4):
            for i in range(3):
                triples.append((f"agree{i}", f"r{j}", 1.0))
            triples.append(("deviant", f"r{j}", 0.2))
        return triples

    def test_deviant_rater_gets_lower_reputation(self, consensus_vs_deviant):
        result = solve_category(consensus_vs_deviant)
        deviant = result.rater_reputation["deviant"]
        for i in range(3):
            assert result.rater_reputation[f"agree{i}"] > deviant

    def test_quality_pulled_toward_consensus(self, consensus_vs_deviant):
        # plain mean would be (3*1.0 + 0.2)/4 = 0.8; reputation weighting
        # must pull the final quality above that
        result = solve_category(consensus_vs_deviant)
        for quality in result.review_quality.values():
            assert quality > 0.8

    def test_unweighted_ablation_gives_plain_mean(self, consensus_vs_deviant):
        cfg = RiggsConfig(weight_by_rater_reputation=False)
        result = solve_category(consensus_vs_deviant, cfg)
        for quality in result.review_quality.values():
            assert quality == pytest.approx(0.8)

    def test_experience_discount_ablation(self):
        # single-rating rater: with the discount off, reputation = 1 - dev = 1.0
        cfg = RiggsConfig(experience_discount_enabled=False)
        result = solve_category([("u1", "r1", 0.8)], cfg)
        assert result.rater_reputation["u1"] == pytest.approx(1.0)

    def test_active_rater_outranks_casual_rater_at_same_accuracy(self):
        # Same zero deviation, different activity: more ratings, more reputation.
        triples = [("casual", "r0", 0.6)]
        triples += [("active", f"r{j}", 0.6) for j in range(10)]
        triples += [("peer", f"r{j}", 0.6) for j in range(10)]  # keep consensus
        result = solve_category(triples)
        assert result.rater_reputation["active"] > result.rater_reputation["casual"]

    def test_damping_converges_to_same_fixed_point(self, consensus_vs_deviant):
        plain = solve_category(consensus_vs_deviant)
        damped = solve_category(consensus_vs_deviant, RiggsConfig(damping=0.5))
        for review_id, quality in plain.review_quality.items():
            assert damped.review_quality[review_id] == pytest.approx(quality, abs=1e-6)
        for rater_id, rep in plain.rater_reputation.items():
            assert damped.rater_reputation[rater_id] == pytest.approx(rep, abs=1e-6)

    def test_convergence_error_when_budget_too_small(self, consensus_vs_deviant):
        cfg = RiggsConfig(max_iterations=1, tolerance=1e-12)
        with pytest.raises(ConvergenceError) as excinfo:
            solve_category(consensus_vs_deviant, cfg)
        assert excinfo.value.iterations == 1
        assert excinfo.value.residual > excinfo.value.tolerance

    def test_reports_iterations_and_residual(self, consensus_vs_deviant):
        result = solve_category(consensus_vs_deviant)
        assert result.iterations >= 2
        assert result.residual < 1e-9

    def test_rating_counts_recorded(self, consensus_vs_deviant):
        result = solve_category(consensus_vs_deviant)
        assert result.rating_counts["deviant"] == 4
        assert result.rating_counts["agree0"] == 4


@st.composite
def rating_datasets(draw):
    """Random small categories: up to 8 raters, 6 reviews, scale ratings."""
    num_raters = draw(st.integers(1, 8))
    num_reviews = draw(st.integers(1, 6))
    pairs = [(i, j) for i in range(num_raters) for j in range(num_reviews)]
    chosen = draw(
        st.lists(st.sampled_from(pairs), min_size=1, max_size=len(pairs), unique=True)
    )
    return [
        (f"u{i}", f"r{j}", draw(st.sampled_from(SCALE)))
        for i, j in chosen
    ]


class TestFixedPointProperties:
    @given(rating_datasets())
    @settings(max_examples=60, deadline=None)
    def test_converges_and_stays_in_unit_interval(self, triples):
        result = solve_category(triples)
        for quality in result.review_quality.values():
            assert 0.0 <= quality <= 1.0
        for rep in result.rater_reputation.values():
            assert 0.0 <= rep <= 1.0

    @given(rating_datasets())
    @settings(max_examples=30, deadline=None)
    def test_order_invariance(self, triples):
        forward = solve_category(triples)
        backward = solve_category(list(reversed(triples)))
        for review_id, quality in forward.review_quality.items():
            assert backward.review_quality[review_id] == pytest.approx(quality, abs=1e-7)

    @given(rating_datasets())
    @settings(max_examples=30, deadline=None)
    def test_result_is_a_fixed_point(self, triples):
        """Re-applying eqs. 1-2 to the solution must not move it."""
        result = solve_category(triples)
        rep = result.rater_reputation
        quality = result.review_quality
        # eq. 1 check
        by_review: dict[str, list[tuple[str, float]]] = {}
        by_rater: dict[str, list[tuple[str, float]]] = {}
        for rater, review, value in triples:
            by_review.setdefault(review, []).append((rater, value))
            by_rater.setdefault(rater, []).append((review, value))
        for review_id, entries in by_review.items():
            weight = sum(rep[r] for r, _ in entries)
            if weight > 0:
                expected = sum(rep[r] * v for r, v in entries) / weight
                assert quality[review_id] == pytest.approx(expected, abs=1e-6)
        # eq. 2 check
        for rater_id, entries in by_rater.items():
            n = len(entries)
            mad = sum(abs(quality[rv] - v) for rv, v in entries) / n
            expected = (1 - 1 / (n + 1)) * (1 - mad)
            assert rep[rater_id] == pytest.approx(max(0.0, expected), abs=1e-6)

    @given(rating_datasets(), st.sampled_from(SCALE))
    @settings(max_examples=30, deadline=None)
    def test_unanimous_value_is_recovered(self, triples, value):
        unanimous = [(rater, review, value) for rater, review, _ in triples]
        result = solve_category(unanimous)
        for quality in result.review_quality.values():
            assert quality == pytest.approx(value)
