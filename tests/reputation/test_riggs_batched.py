"""Equivalence of the batched multi-category solver with `solve_category`.

`solve_all_categories` must reproduce the per-category oracle *bitwise*:
the category-major columnar layout preserves each category's scan order,
so every bincount accumulation sums the same floats in the same order.
"""

import numpy as np
import pytest

from repro.common.errors import ConvergenceError, ValidationError
from repro.datasets import CommunityProfile, generate_community
from repro.matrix import LabelIndex
from repro.reputation import (
    RiggsConfig,
    solve_all_categories,
    solve_category,
    solve_category_arrays,
)

CONFIGS = {
    "default": RiggsConfig(),
    "unweighted": RiggsConfig(weight_by_rater_reputation=False),
    "no_discount": RiggsConfig(experience_discount_enabled=False),
    "damped": RiggsConfig(damping=0.3),
}


def random_community(seed, num_users=80):
    return generate_community(CommunityProfile(num_users=num_users), seed=seed).community


def assert_fixed_points_identical(batch_fp, oracle_fp):
    assert batch_fp.review_quality == oracle_fp.review_quality
    assert batch_fp.rater_reputation == oracle_fp.rater_reputation
    assert batch_fp.rating_counts == oracle_fp.rating_counts
    assert batch_fp.iterations == oracle_fp.iterations
    assert batch_fp.residual == oracle_fp.residual


class TestBatchedEquivalence:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_oracle_bitwise(self, seed, config_name):
        community = random_community(seed)
        config = CONFIGS[config_name]
        batch = solve_all_categories(community.columns(), config)
        for category_id in community.category_ids():
            oracle = solve_category(community.rating_triples(category_id), config)
            assert_fixed_points_identical(batch.fixed_point(category_id), oracle)

    def test_warm_start_matches_oracle(self):
        community = random_community(5)
        warm = {user_id: 0.5 for user_id in community.user_ids()[::2]}
        batch = solve_all_categories(community.columns(), warm_start=warm)
        for category_id in community.category_ids():
            oracle = solve_category(
                community.rating_triples(category_id), warm_start=warm
            )
            assert_fixed_points_identical(batch.fixed_point(category_id), oracle)

    def test_to_dict_covers_every_category(self, two_category_community):
        batch = solve_all_categories(two_category_community.columns())
        assert list(batch.to_dict()) == ["movies", "books"]

    def test_slot_arrays_align_with_dict_view(self, two_category_community):
        batch = solve_all_categories(two_category_community.columns())
        labels = batch.users.labels
        by_slot = {
            (labels[u], int(c)): r
            for u, c, r in zip(
                batch.rater_slot_user.tolist(),
                batch.rater_slot_category_idx.tolist(),
                batch.reputation.tolist(),
            )
        }
        movies = list(two_category_community.columns().categories).index("movies")
        fp = batch.fixed_point("movies")
        for rater_id, reputation in fp.rater_reputation.items():
            assert by_slot[(rater_id, movies)] == reputation

    def test_unknown_category_rejected(self, two_category_community):
        batch = solve_all_categories(two_category_community.columns())
        with pytest.raises(ValidationError):
            batch.fixed_point("gardening")


class TestDegenerateCategories:
    def test_empty_category_yields_empty_fixed_point(self, two_category_community):
        two_category_community.add_category("music")  # no objects, no reviews
        batch = solve_all_categories(two_category_community.columns())
        fp = batch.fixed_point("music")
        assert fp.review_quality == {}
        assert fp.rater_reputation == {}
        assert fp.iterations == 0
        # the populated categories are unaffected by the empty segment
        oracle = solve_category(two_category_community.rating_triples("movies"))
        assert_fixed_points_identical(batch.fixed_point("movies"), oracle)

    def test_singleton_category(self, two_category_community):
        # books has a single review rated twice -- the smallest nonempty case
        batch = solve_all_categories(two_category_community.columns())
        oracle = solve_category(two_category_community.rating_triples("books"))
        assert_fixed_points_identical(batch.fixed_point("books"), oracle)

    def test_community_with_no_ratings(self):
        from repro.community import Community

        empty = Community.from_records(
            name="empty",
            users=["a", "b"],
            categories=["movies"],
            objects=[],
            reviews=[],
            ratings=[],
            trust=[],
        )
        batch = solve_all_categories(empty.columns())
        fp = batch.fixed_point("movies")
        assert fp.review_quality == {} and fp.rater_reputation == {}


class TestConvergenceFailure:
    def test_raises_like_the_oracle(self):
        community = random_community(4)
        strict = RiggsConfig(tolerance=1e-9, max_iterations=1)
        with pytest.raises(ConvergenceError):
            solve_all_categories(community.columns(), strict)
        with pytest.raises(ConvergenceError):
            for category_id in community.category_ids():
                solve_category(community.rating_triples(category_id), strict)


class TestSolveCategoryArrays:
    @staticmethod
    def triples_to_arrays(triples):
        raters = LabelIndex(dict.fromkeys(r for r, _, _ in triples))
        reviews = LabelIndex(dict.fromkeys(j for _, j, _ in triples))
        rater_idx = raters.positions([r for r, _, _ in triples])
        review_idx = reviews.positions([j for _, j, _ in triples])
        values = np.array([v for _, _, v in triples])
        return raters, reviews, rater_idx, review_idx, values

    def test_matches_dict_solver(self):
        community = random_community(6)
        for category_id in community.category_ids():
            triples = community.rating_triples(category_id)
            if not triples:
                continue
            raters, reviews, rater_idx, review_idx, values = self.triples_to_arrays(triples)
            result = solve_category_arrays(rater_idx, review_idx, values)
            oracle = solve_category(triples)
            assert {
                label: q for label, q in zip(reviews.labels, result.quality.tolist())
            } == oracle.review_quality
            assert {
                label: r for label, r in zip(raters.labels, result.reputation.tolist())
            } == oracle.rater_reputation
            assert result.iterations == oracle.iterations
            assert result.residual == oracle.residual

    def test_empty_input(self):
        result = solve_category_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), np.empty(0)
        )
        assert result.iterations == 0
        assert len(result.quality) == 0 and len(result.reputation) == 0

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ValidationError):
            solve_category_arrays(
                np.array([0, 0]), np.array([1, 1]), np.array([0.4, 0.8])
            )

    def test_warm_start_shape_checked(self):
        with pytest.raises(ValidationError):
            solve_category_arrays(
                np.array([0]),
                np.array([0]),
                np.array([0.8]),
                warm_start=np.array([0.5, 0.5]),
            )
