"""Tests for incremental expertise maintenance."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.community import Review, ReviewRating, ReviewedObject
from repro.reputation import (
    ExpertiseEstimator,
    IncrementalExpertise,
    solve_category,
)


def results_equal(a, b, tol=1e-9):
    return np.allclose(a.expertise.to_array(), b.expertise.to_array(), atol=tol) and (
        np.allclose(a.rater_reputation.to_array(), b.rater_reputation.to_array(), atol=tol)
    )


class TestWarmStart:
    def test_warm_start_reaches_same_fixed_point(self):
        triples = [
            ("u1", "r1", 1.0), ("u2", "r1", 0.8), ("u1", "r2", 0.6),
            ("u3", "r2", 0.2), ("u2", "r2", 0.6),
        ]
        cold = solve_category(triples)
        warm = solve_category(triples, warm_start=cold.rater_reputation)
        for rater, rep in cold.rater_reputation.items():
            assert warm.rater_reputation[rater] == pytest.approx(rep, abs=1e-7)

    def test_warm_start_converges_faster(self):
        triples = [
            (f"u{i}", f"r{j}", [0.2, 0.6, 1.0][(i + j) % 3])
            for i in range(6)
            for j in range(5)
        ]
        cold = solve_category(triples)
        warm = solve_category(triples, warm_start=cold.rater_reputation)
        assert warm.iterations <= cold.iterations

    def test_warm_start_values_clipped(self):
        result = solve_category([("u1", "r1", 0.8)], warm_start={"u1": 5.0})
        assert result.rater_reputation["u1"] == pytest.approx(0.5)

    def test_unknown_raters_in_warm_start_ignored(self):
        result = solve_category([("u1", "r1", 0.8)], warm_start={"ghost": 0.1})
        assert result.rater_reputation["u1"] == pytest.approx(0.5)


class TestIncrementalExpertise:
    def test_initial_fit_matches_estimator(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        full = ExpertiseEstimator().fit(two_category_community)
        assert results_equal(tracker.fit(), full)

    def test_refresh_after_new_rating_exact(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        tracker.fit()

        # no manual flagging: the mutator's delta reaches the tracker
        two_category_community.add_rating(ReviewRating("carol", "ra1", 0.6))
        incremental = tracker.refresh()
        full = ExpertiseEstimator().fit(two_category_community)
        assert results_equal(incremental, full)

    def test_only_dirty_categories_resolved(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        tracker.fit()
        before_books = tracker.last_iterations("books")

        two_category_community.add_rating(ReviewRating("carol", "ra1", 0.6))
        assert tracker.dirty_categories == {"movies"}
        tracker.refresh()
        # books was not recomputed: same fixed-point object statistics
        assert tracker.last_iterations("books") == before_books
        assert tracker.last_resolved == ("movies",)
        assert tracker.dirty_categories == set()

    def test_new_review_refresh(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        tracker.fit()
        two_category_community.add_object(ReviewedObject("m5", "movies"))
        two_category_community.add_review(Review("rb9", "bob", "m5"))
        two_category_community.add_rating(ReviewRating("dave", "rb9", 1.0))
        assert results_equal(
            tracker.refresh(), ExpertiseEstimator().fit(two_category_community)
        )

    def test_new_user_grows_axis(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        n_before = tracker.fit().expertise.shape[0]
        two_category_community.add_user("frank")
        result = tracker.refresh()
        assert result.expertise.shape[0] == n_before + 1
        assert results_equal(result, ExpertiseEstimator().fit(two_category_community))

    def test_touch_marks_one_category_dirty(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        tracker.fit()
        two_category_community.touch("movies")
        assert tracker.dirty_categories == {"movies"}

    def test_touch_unknown_category(self, two_category_community):
        with pytest.raises(ValidationError):
            two_category_community.touch("ghost")

    def test_last_iterations_before_solve(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        with pytest.raises(ValidationError):
            tracker.last_iterations("movies")

    def test_touch_all_marks_every_category_dirty(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        tracker.fit()
        two_category_community.touch()
        assert tracker.dirty_categories == {"movies", "books"}

    def test_shims_are_gone(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        assert not hasattr(tracker, "mark_dirty")
        assert not hasattr(tracker, "mark_all_dirty")

    def test_resyncs_after_log_compaction(self, two_category_community):
        tracker = IncrementalExpertise(two_category_community)
        tracker.fit()
        two_category_community.add_rating(ReviewRating("carol", "ra1", 0.6))
        # the tracker never saw this delta before the log forgot it
        two_category_community.change_log.compact()
        assert tracker.dirty_categories == {"movies", "books"}
        assert results_equal(
            tracker.refresh(), ExpertiseEstimator().fit(two_category_community)
        )
