"""Tests for writer reputation (eq. 3)."""

import pytest

from repro.common.errors import ValidationError
from repro.reputation import writer_reputations


class TestWriterReputation:
    def test_single_review(self):
        # one review of quality 0.8: rep = (1 - 1/2) * 0.8 = 0.4
        reps = writer_reputations({"r1": "u1"}, {"r1": 0.8})
        assert reps == {"u1": pytest.approx(0.4)}

    def test_mean_of_qualities_with_discount(self):
        # two reviews 0.6 and 1.0: mean 0.8, discount 1 - 1/3 = 2/3
        reps = writer_reputations({"r1": "u1", "r2": "u1"}, {"r1": 0.6, "r2": 1.0})
        assert reps["u1"] == pytest.approx(2 / 3 * 0.8)

    def test_discount_disabled(self):
        reps = writer_reputations(
            {"r1": "u1"}, {"r1": 0.8}, experience_discount_enabled=False
        )
        assert reps["u1"] == pytest.approx(0.8)

    def test_multiple_writers_independent(self):
        reps = writer_reputations(
            {"r1": "u1", "r2": "u2"}, {"r1": 1.0, "r2": 0.2}
        )
        assert reps["u1"] == pytest.approx(0.5)
        assert reps["u2"] == pytest.approx(0.1)

    def test_prolific_high_quality_writer_outranks_casual(self):
        # same mean quality, more reviews -> higher reputation (the paper:
        # "review writers who write high quality reviews more than others
        # have higher reputation")
        many = {f"r{i}": "prolific" for i in range(10)}
        many["s1"] = "casual"
        qualities = {rid: 0.9 for rid in many}
        reps = writer_reputations(many, qualities)
        assert reps["prolific"] > reps["casual"]

    def test_empty_input(self):
        assert writer_reputations({}, {}) == {}


class TestUnratedPolicies:
    def test_exclude_ignores_unrated_reviews(self):
        reps = writer_reputations(
            {"r1": "u1", "r2": "u1"}, {"r1": 0.8}, unrated_policy="exclude"
        )
        # only r1 counts: (1 - 1/2) * 0.8
        assert reps["u1"] == pytest.approx(0.4)

    def test_exclude_gives_zero_when_nothing_rated(self):
        reps = writer_reputations({"r1": "u1"}, {}, unrated_policy="exclude")
        assert reps["u1"] == 0.0

    def test_zero_counts_unrated_as_zero_quality(self):
        reps = writer_reputations(
            {"r1": "u1", "r2": "u1"}, {"r1": 0.8}, unrated_policy="zero"
        )
        # both count: mean = 0.4, discount 2/3
        assert reps["u1"] == pytest.approx(2 / 3 * 0.4)

    def test_strict_raises_on_unrated(self):
        with pytest.raises(ValidationError, match="unrated"):
            writer_reputations({"r1": "u1"}, {}, unrated_policy="strict")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="unrated_policy"):
            writer_reputations({}, {}, unrated_policy="ignore")

    def test_zero_policy_penalises_vs_exclude(self):
        writers = {"r1": "u1", "r2": "u1", "r3": "u1"}
        qualities = {"r1": 0.9}
        excl = writer_reputations(writers, qualities, unrated_policy="exclude")
        zero = writer_reputations(writers, qualities, unrated_policy="zero")
        assert zero["u1"] < excl["u1"]
