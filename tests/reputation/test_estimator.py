"""Tests for ExpertiseEstimator over a whole community."""

import pytest

from repro.reputation import ExpertiseEstimator, RiggsConfig


@pytest.fixture
def result(two_category_community):
    return ExpertiseEstimator().fit(two_category_community)


class TestMatrixShapes:
    def test_axes_cover_all_users_and_categories(self, result, two_category_community):
        assert list(result.expertise.users) == two_category_community.user_ids()
        assert list(result.expertise.categories) == ["movies", "books"]
        assert result.rater_reputation.users == result.expertise.users

    def test_fixed_point_per_category(self, result):
        assert set(result.fixed_points) == {"movies", "books"}

    def test_iterations_reported(self, result):
        iterations = result.iterations()
        assert all(n >= 1 for n in iterations.values())


class TestExpertiseEntries:
    def test_inactive_user_has_zero_everywhere(self, result):
        assert result.expertise.get("eve", "movies") == 0.0
        assert result.expertise.get("eve", "books") == 0.0
        assert result.rater_reputation.get("eve", "movies") == 0.0

    def test_writer_only_expert_in_their_category(self, result):
        assert result.expertise.get("alice", "movies") > 0.0
        assert result.expertise.get("alice", "books") == 0.0
        assert result.expertise.get("carol", "books") > 0.0
        assert result.expertise.get("carol", "movies") == 0.0

    def test_pure_rater_has_no_expertise(self, result):
        assert result.expertise.get("dave", "movies") == 0.0
        assert result.expertise.get("dave", "books") == 0.0

    def test_alice_outranks_bob_in_movies(self, result):
        # alice's reviews were rated 1.0/0.8 twice; bob's single review got 0.4
        assert result.expertise.get("alice", "movies") > result.expertise.get(
            "bob", "movies"
        )

    def test_rater_reputation_only_where_active(self, result):
        assert result.rater_reputation.get("bob", "movies") > 0.0
        assert result.rater_reputation.get("bob", "books") == 0.0
        assert result.rater_reputation.get("alice", "books") > 0.0
        assert result.rater_reputation.get("alice", "movies") == 0.0

    def test_review_quality_accessor(self, result):
        movies_quality = result.review_quality("movies")
        assert set(movies_quality) == {"ra1", "ra2", "rb1"}
        books_quality = result.review_quality("books")
        assert books_quality["rc1"] == pytest.approx(0.6)

    def test_review_quality_returns_copy(self, result):
        first = result.review_quality("books")
        first["rc1"] = 0.0
        assert result.review_quality("books")["rc1"] == pytest.approx(0.6)


class TestEstimatorConfig:
    def test_config_propagates(self, two_category_community):
        # with the discount disabled everywhere, carol's single 0.6-quality
        # review yields expertise exactly 0.6
        cfg = RiggsConfig(experience_discount_enabled=False)
        result = ExpertiseEstimator(cfg).fit(two_category_community)
        assert result.expertise.get("carol", "books") == pytest.approx(0.6)

    def test_default_discount_halves_single_review_writer(self, result):
        # carol: one review of quality 0.6 -> 0.5 * 0.6 = 0.3
        assert result.expertise.get("carol", "books") == pytest.approx(0.3)

    def test_unrated_reviews_policy_zero(self, two_category_community):
        from repro.community import Review, ReviewedObject

        # give bob an unrated second review; "zero" policy must lower his expertise
        two_category_community.add_object(ReviewedObject("m3", "movies"))
        two_category_community.add_review(Review("rb2", "bob", "m3"))
        exclude = ExpertiseEstimator(unrated_policy="exclude").fit(two_category_community)
        zero = ExpertiseEstimator(unrated_policy="zero").fit(two_category_community)
        assert zero.expertise.get("bob", "movies") < exclude.expertise.get("bob", "movies")
