"""Tests for baseline reputation models."""

import pytest

from repro.common.errors import ValidationError
from repro.reputation.baselines import (
    BASELINE_KINDS,
    baseline_expertise,
    baseline_rater_reputation,
)


class TestMeanReceived:
    def test_writer_mean_of_received_ratings(self, two_category_community):
        matrix = baseline_expertise(two_category_community, "mean_received")
        # alice's movie reviews received 1.0, 0.8 (ra1) and 0.8 (ra2)
        assert matrix.get("alice", "movies") == pytest.approx((1.0 + 0.8 + 0.8) / 3)
        assert matrix.get("bob", "movies") == pytest.approx(0.4)
        assert matrix.get("alice", "books") == 0.0

    def test_rater_one_minus_mad(self, two_category_community):
        matrix = baseline_rater_reputation(two_category_community, "mean_received")
        # books: rc1 quality = mean(0.6, 0.6) = 0.6; both raters deviate 0
        assert matrix.get("alice", "books") == pytest.approx(1.0)
        assert matrix.get("dave", "books") == pytest.approx(1.0)
        assert matrix.get("alice", "movies") == 0.0

    def test_values_in_unit_interval(self, two_category_community):
        for matrix in (
            baseline_expertise(two_category_community),
            baseline_rater_reputation(two_category_community),
        ):
            values = matrix.to_array()
            assert values.min() >= 0.0
            assert values.max() <= 1.0


class TestActivity:
    def test_most_active_user_gets_one(self, two_category_community):
        matrix = baseline_expertise(two_category_community, "activity")
        # alice wrote 2 movie reviews (max); bob wrote 1
        assert matrix.get("alice", "movies") == pytest.approx(1.0)
        assert 0.0 < matrix.get("bob", "movies") < 1.0

    def test_rater_activity(self, two_category_community):
        matrix = baseline_rater_reputation(two_category_community, "activity")
        # movies raters: bob 2, dave 2 -> both at the max
        assert matrix.get("bob", "movies") == pytest.approx(1.0)
        assert matrix.get("dave", "movies") == pytest.approx(1.0)
        assert matrix.get("alice", "movies") == 0.0

    def test_no_quality_signal(self, two_category_community):
        """Activity reputation must ignore rating values entirely."""
        matrix = baseline_expertise(two_category_community, "activity")
        # bob's single review was rated 0.4 but he still scores on volume
        assert matrix.get("bob", "movies") > 0.0


class TestValidation:
    def test_kinds(self):
        assert set(BASELINE_KINDS) == {"mean_received", "activity"}

    def test_unknown_kind(self, two_category_community):
        with pytest.raises(ValidationError):
            baseline_expertise(two_category_community, "oracle")
        with pytest.raises(ValidationError):
            baseline_rater_reputation(two_category_community, "oracle")
