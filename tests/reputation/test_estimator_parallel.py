"""Tests for the parallel / warm-started Step-1 estimator options."""

import pytest

from repro.common.errors import ValidationError
from repro.datasets import CommunityProfile, generate_community
from repro.reputation import ExpertiseEstimator


@pytest.fixture(scope="module")
def community():
    return generate_community(CommunityProfile(num_users=80), seed=3).community


class TestParallelSolve:
    def test_n_jobs_matches_serial(self, community):
        serial = ExpertiseEstimator().fit(community)
        parallel = ExpertiseEstimator(n_jobs=4).fit(community)
        assert parallel.expertise == serial.expertise
        assert parallel.rater_reputation == serial.rater_reputation
        assert parallel.iterations() == serial.iterations()

    def test_invalid_n_jobs_rejected(self):
        with pytest.raises(ValidationError):
            ExpertiseEstimator(n_jobs=0)


class TestWarmStart:
    def test_reuse_warm_start_converges_to_same_fixed_point(self, community):
        cold = ExpertiseEstimator().fit(community)
        warm = ExpertiseEstimator(reuse_warm_start=True).fit(community)
        for user in community.user_ids()[:20]:
            for category in community.category_ids():
                assert warm.expertise.get(user, category) == pytest.approx(
                    cold.expertise.get(user, category), abs=1e-6
                )

    def test_explicit_warm_start_cuts_iterations(self, community):
        cold = ExpertiseEstimator().fit(community)
        previous = {
            rater: value
            for fp in cold.fixed_points.values()
            for rater, value in fp.rater_reputation.items()
        }
        warm = ExpertiseEstimator().fit(community, warm_start=previous)
        assert sum(warm.iterations().values()) <= sum(cold.iterations().values())
        for category in community.category_ids():
            for rater, value in cold.fixed_points[category].rater_reputation.items():
                assert warm.fixed_points[category].rater_reputation[
                    rater
                ] == pytest.approx(value, abs=1e-6)
