"""Tests for the trace report renderer and its CLI."""

import json

import pytest

from repro import obs
from repro.obs.recorder import Recorder
from repro.obs.report import aggregate_spans, main, render_trace_report


def sample_document():
    """A deterministic trace document built through the real recorder."""
    clock = iter(float(i) for i in range(100))
    recorder = Recorder(clock=lambda: next(clock))
    with obs.use_recorder(recorder):
        with obs.span("pipeline.run", seed=3):
            with obs.span("step1.fit", mode="batched"):
                pass
            with obs.span("step1.fit", mode="batched"):
                pass
        obs.add("community.columns.hit", 4)
        obs.observe("step1.sweeps", 12.0)
        obs.convergence(
            "step1.riggs", iterations=12, residual=1e-11, tolerance=1e-10,
            converged=True, category="c0",
        )
        obs.convergence(
            "propagation.eigentrust", iterations=1000, residual=0.5,
            tolerance=1e-10, converged=False,
        )
    return recorder.to_dict()


class TestAggregateSpans:
    def test_counts_and_times_per_name(self):
        stats = aggregate_spans(sample_document()["spans"])
        assert stats["step1.fit"].calls == 2
        assert stats["pipeline.run"].calls == 1
        # fake clock: each fit span lasts 1s, the run span 5s
        assert stats["step1.fit"].cumulative_s == pytest.approx(2.0)
        assert stats["pipeline.run"].self_s == pytest.approx(3.0)

    def test_empty_forest(self):
        assert aggregate_spans([]) == {}


class TestRenderTraceReport:
    def test_all_sections_present(self):
        text = render_trace_report(sample_document())
        assert "Span tree" in text
        assert "Span timings" in text
        assert "Counters" in text
        assert "Histograms" in text
        assert "Convergence summary" in text

    def test_span_tree_is_indented(self):
        text = render_trace_report(sample_document())
        assert "pipeline.run" in text
        assert "  step1.fit" in text

    def test_unconverged_kernel_flagged(self):
        text = render_trace_report(sample_document())
        line = next(
            l for l in text.splitlines() if l.startswith("propagation.eigentrust")
        )
        assert "NO" in line

    def test_empty_document(self):
        assert render_trace_report({}) == "(empty trace)"

    def test_engine_section_absent_without_engine_counters(self):
        assert "Incremental engine" not in render_trace_report(sample_document())

    def test_engine_section_summarises_reuse(self):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            obs.add("engine.deltas_applied", 3)
            obs.add("step1.incremental.categories_resolved", 1)
            obs.add("step1.incremental.categories_skipped", 4)
            obs.add("engine.derive.pairs_rederived", 120)
            obs.add("engine.derive.pairs_reused", 880)
            obs.add("engine.propagation.iterations_saved", 17)
        text = render_trace_report(recorder.to_dict())
        assert "Incremental engine" in text
        lines = text.splitlines()
        categories = next(l for l in lines if l.startswith("step1 categories"))
        assert "80.0%" in categories
        pairs = next(l for l in lines if l.startswith("derive pairs"))
        assert "120" in pairs and "880" in pairs and "88.0%" in pairs


class TestReportCli:
    def write_trace(self, tmp_path, document):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(document))
        return str(path)

    def test_renders_and_exits_zero(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, sample_document())
        assert main([path]) == 0
        out = capsys.readouterr().out
        assert "Convergence summary" in out

    def test_check_converged_fails_on_unconverged_kernel(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, sample_document())
        assert main([path, "--check-converged"]) == 1
        err = capsys.readouterr().err
        assert "propagation.eigentrust" in err

    def test_check_converged_passes_on_clean_trace(self, tmp_path):
        document = sample_document()
        document["convergence"] = [
            r for r in document["convergence"] if r["converged"]
        ]
        path = self.write_trace(tmp_path, document)
        assert main([path, "--check-converged"]) == 0

    def test_module_entry_point(self):
        from repro.obs import __main__  # noqa: F401  (imports main cleanly)
