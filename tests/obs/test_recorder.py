"""Unit tests for the recorder core: spans, counters, convergence records.

A fake monotonic clock makes every duration deterministic, so the span
tree's timings (not just its shape) are asserted exactly.
"""

import json
import threading

import pytest

from repro import obs
from repro.obs.recorder import (
    ConvergenceRecord,
    NullRecorder,
    Recorder,
    convergence_failures,
)


class FakeClock:
    """Monotonic clock advancing 1.0 per call."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        value = self.now
        self.now += 1.0
        return value


@pytest.fixture
def recorder():
    return Recorder(clock=FakeClock())


class TestSpanTree:
    def test_nesting_matches_with_structure(self, recorder):
        with recorder.span("outer"):
            with recorder.span("inner.a"):
                pass
            with recorder.span("inner.b"):
                pass

        assert [root.name for root in recorder.roots] == ["outer"]
        outer = recorder.roots[0]
        assert [child.name for child in outer.children] == ["inner.a", "inner.b"]

    def test_sibling_order_is_call_order(self, recorder):
        with recorder.span("root"):
            for i in range(5):
                with recorder.span(f"child.{i}"):
                    pass
        names = [c.name for c in recorder.roots[0].children]
        assert names == [f"child.{i}" for i in range(5)]

    def test_durations_from_injected_clock(self, recorder):
        # clock ticks: origin=0, outer start=1, inner start=2, inner end=3,
        # outer end=4 -> inner duration 1, outer duration 3, self 2
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        outer = recorder.roots[0]
        inner = outer.children[0]
        assert inner.duration_s() == 1.0
        assert outer.duration_s() == 3.0
        assert outer.self_s() == 2.0

    def test_attributes_survive_to_dict(self, recorder):
        with recorder.span("solve", category="c1", users=10, quick=True):
            pass
        doc = recorder.roots[0].to_dict(origin_s=0.0)
        assert doc["attributes"] == {"category": "c1", "users": 10, "quick": True}

    def test_open_span_marked_incomplete(self, recorder):
        handle = recorder.span("crashing")
        handle.__enter__()
        doc = recorder.to_dict()
        assert doc["spans"][0]["incomplete"] is True
        assert doc["spans"][0]["duration_s"] == 0.0

    def test_exception_still_closes_span(self, recorder):
        with pytest.raises(ValueError):
            with recorder.span("fails"):
                raise ValueError("boom")
        assert recorder.roots[0].end_s is not None

    def test_threads_record_separate_roots(self):
        recorder = Recorder()

        def worker(i):
            with recorder.span(f"worker.{i}"):
                pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in recorder.roots) == [
            f"worker.{i}" for i in range(4)
        ]
        assert all(not r.children for r in recorder.roots)


class TestCountersAndHistograms:
    def test_counters_accumulate(self, recorder):
        recorder.add("hits")
        recorder.add("hits", 2)
        recorder.add("misses", 0.5)
        assert recorder.counters == {"hits": 3, "misses": 0.5}

    def test_histogram_summary(self, recorder):
        for v in (1.0, 3.0, 2.0):
            recorder.observe("sweeps", v)
        summary = recorder.to_dict()["histograms"]["sweeps"]
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0
        assert summary["values"] == [1.0, 3.0, 2.0]

    def test_convergence_records(self, recorder):
        recorder.convergence(
            "kernel.x", iterations=7, residual=1e-12, tolerance=1e-10,
            converged=True, category="c0",
        )
        record = recorder.convergence_records[0]
        assert record == ConvergenceRecord(
            kernel="kernel.x", iterations=7, residual=1e-12, tolerance=1e-10,
            converged=True, attributes={"category": "c0"},
        )

    def test_convergence_failures_helper(self, recorder):
        recorder.convergence(
            "good", iterations=3, residual=0.0, tolerance=1e-10, converged=True
        )
        recorder.convergence(
            "bad", iterations=99, residual=0.5, tolerance=1e-10, converged=False
        )
        failures = convergence_failures(recorder.to_dict())
        assert [f["kernel"] for f in failures] == ["bad"]


class TestDump:
    def test_write_round_trips_as_json(self, recorder, tmp_path):
        with recorder.span("a", users=3):
            recorder.add("n")
        path = tmp_path / "trace.json"
        recorder.write(str(path))
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["spans"][0]["name"] == "a"
        assert doc["counters"] == {"n": 1}

    def test_counters_sorted_in_document(self, recorder):
        recorder.add("zz")
        recorder.add("aa")
        assert list(recorder.to_dict()["counters"]) == ["aa", "zz"]


class TestNullRecorder:
    def test_all_operations_are_noops(self):
        null = NullRecorder()
        assert null.active is False
        with null.span("anything", users=1) as record:
            assert record is None
        null.add("counter")
        null.observe("hist", 1.0)
        null.convergence(
            "k", iterations=1, residual=0.0, tolerance=0.0, converged=True
        )

    def test_span_handle_is_shared(self):
        null = NullRecorder()
        assert null.span("a") is null.span("b")


class TestModuleApi:
    def test_default_recorder_is_null(self):
        assert isinstance(obs.get_recorder(), NullRecorder)
        assert obs.tracing_active() is False

    def test_use_recorder_scopes_and_restores(self):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            assert obs.get_recorder() is recorder
            assert obs.tracing_active() is True
            with obs.span("via.module", tag="x"):
                obs.add("module.counter")
            obs.observe("module.hist", 2.0)
            obs.convergence(
                "module.kernel", iterations=1, residual=0.0,
                tolerance=1e-10, converged=True,
            )
        assert isinstance(obs.get_recorder(), NullRecorder)
        assert [r.name for r in recorder.roots] == ["via.module"]
        assert recorder.counters == {"module.counter": 1}
        assert recorder.convergence_records[0].kernel == "module.kernel"

    def test_nested_use_recorder_restores_outer(self):
        outer, inner = Recorder(), Recorder()
        with obs.use_recorder(outer):
            with obs.use_recorder(inner):
                assert obs.get_recorder() is inner
            assert obs.get_recorder() is outer

    def test_compiled_out_pins_null_recorder(self, monkeypatch):
        monkeypatch.setattr(obs, "TRACE_ENABLED", False)
        recorder = Recorder()
        with obs.use_recorder(recorder):
            assert isinstance(obs.get_recorder(), NullRecorder)
            with obs.span("ignored"):
                obs.add("ignored")
        assert recorder.roots == []
        assert recorder.counters == {}

    def test_env_var_read_at_import(self):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ, REPRO_TRACE="0", PYTHONPATH=src)
        code = (
            "from repro import obs\n"
            "assert obs.TRACE_ENABLED is False\n"
            "obs.set_recorder(obs.Recorder())\n"
            "assert obs.tracing_active() is False\n"
        )
        subprocess.run([sys.executable, "-c", code], env=env, check=True)
