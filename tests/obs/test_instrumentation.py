"""Integration tests: the instrumented kernels and their telemetry.

The central invariants:

- tracing never changes the numerics -- a run under a :class:`Recorder`
  produces matrices identical to a run under the :class:`NullRecorder`;
- the counter/telemetry semantics are the same whichever Step-1 path
  executes (batched vs per-category);
- propagation kernels that hit their iteration cap surface it instead of
  silently returning (``RuntimeWarning`` + ``converged=False``).
"""

import warnings

import pytest

from repro import obs
from repro.matrix import UserPairMatrix
from repro.obs.recorder import Recorder, convergence_failures
from repro.propagation import appleseed, eigen_trust
from repro.reputation import ExpertiseEstimator
from repro.experiments.pipeline import run_pipeline


def span_names(recorder):
    names = set()

    def walk(records):
        for record in records:
            names.add(record.name)
            walk(record.children)

    walk(recorder.roots)
    return names


@pytest.fixture
def asymmetric_web():
    m = UserPairMatrix(["a", "b", "c", "d"])
    m.set("a", "b", 0.9)
    m.set("a", "c", 0.2)
    m.set("b", "c", 0.8)
    m.set("c", "d", 0.5)
    m.set("d", "b", 0.3)
    return m


class TestPipelineTrace:
    def test_trace_covers_every_stage(self):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            run_pipeline(seed=3)
        names = span_names(recorder)
        assert {
            "pipeline.run",
            "pipeline.dataset",
            "pipeline.step1.expertise",
            "pipeline.step2.affinity",
            "pipeline.step3.derive",
            "pipeline.relations",
            "pipeline.binarize",
            "step1.fit",
            "step1.solve_all",
            "derive.trust",
            "community.columns.build",
        } <= names

    def test_step1_per_category_sweeps_recorded(self):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            run_pipeline(seed=3)
        riggs = [
            r for r in recorder.convergence_records if r.kernel == "step1.riggs"
        ]
        assert riggs, "expected per-category step1 convergence records"
        assert all(r.converged and r.iterations >= 1 for r in riggs)
        assert {r.attributes.get("category") for r in riggs} == {
            r.attributes["category"] for r in riggs
        }
        sweeps = recorder.histograms["step1.sweeps"]
        assert len(sweeps) == len(riggs)

    def test_columns_cache_counters(self):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            run_pipeline(seed=3)
        assert recorder.counters["community.columns.miss"] == 1
        assert recorder.counters["community.columns.hit"] >= 1

    def test_derive_counters(self):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            artifacts = run_pipeline(seed=3)
        assert recorder.counters["derive.blocks"] >= 1
        assert (
            recorder.counters["derive.entries_stored"]
            == artifacts.derived.num_entries()
        )


class TestTracingNeverChangesResults:
    def test_recorder_and_null_recorder_results_identical(self):
        with obs.use_recorder(Recorder()):
            traced = run_pipeline(seed=5)
        # default (null) recorder
        plain = run_pipeline(seed=5)
        assert traced.derived == plain.derived
        assert traced.expertise == plain.expertise
        assert traced.rater_reputation == plain.rater_reputation
        assert traced.derived_binary == plain.derived_binary

    def test_propagation_scores_identical_under_tracing(self, asymmetric_web):
        with obs.use_recorder(Recorder()):
            traced = eigen_trust(asymmetric_web)
        plain = eigen_trust(asymmetric_web)
        assert traced.to_dict() == plain.to_dict()


class TestStep1PathParity:
    """Batched and per-category Step 1 report the same counter semantics."""

    def test_warm_start_hits_identical_across_paths(self, two_category_community):
        warm = {u: 0.5 for u in two_category_community.user_ids()}

        batched_rec = Recorder()
        with obs.use_recorder(batched_rec):
            batched = ExpertiseEstimator().fit(
                two_category_community, warm_start=warm
            )

        per_cat_rec = Recorder()
        with obs.use_recorder(per_cat_rec):
            per_cat = ExpertiseEstimator(n_jobs=2).fit(
                two_category_community, warm_start=warm
            )

        assert (
            batched_rec.counters["step1.warm_start_hits"]
            == per_cat_rec.counters["step1.warm_start_hits"]
        )
        assert batched.expertise == per_cat.expertise

    def test_sweep_telemetry_identical_across_paths(self, two_category_community):
        batched_rec = Recorder()
        with obs.use_recorder(batched_rec):
            ExpertiseEstimator().fit(two_category_community)

        per_cat_rec = Recorder()
        with obs.use_recorder(per_cat_rec):
            ExpertiseEstimator(n_jobs=2).fit(two_category_community)

        def sweeps_by_category(recorder):
            return {
                r.attributes["category"]: r.iterations
                for r in recorder.convergence_records
                if r.kernel == "step1.riggs"
            }

        assert sweeps_by_category(batched_rec) == sweeps_by_category(per_cat_rec)
        assert sorted(batched_rec.histograms["step1.sweeps"]) == sorted(
            per_cat_rec.histograms["step1.sweeps"]
        )


class TestConvergenceSurfacing:
    def test_eigentrust_cap_warns_and_flags(self, asymmetric_web):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            with pytest.warns(RuntimeWarning, match="max_iterations"):
                scores = eigen_trust(asymmetric_web, max_iterations=2)
        assert scores.converged is False
        assert scores.iterations == 2
        assert scores.residual > 0.0
        failures = convergence_failures(recorder.to_dict())
        assert [f["kernel"] for f in failures] == ["propagation.eigentrust"]

    def test_appleseed_cap_warns_and_flags(self, asymmetric_web):
        recorder = Recorder()
        with obs.use_recorder(recorder):
            with pytest.warns(RuntimeWarning, match="max_iterations"):
                scores = appleseed(asymmetric_web, "a", max_iterations=1)
        assert scores.converged is False
        failures = convergence_failures(recorder.to_dict())
        assert [f["kernel"] for f in failures] == ["propagation.appleseed"]

    def test_converged_runs_carry_telemetry(self, asymmetric_web):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning on the happy path
            scores = eigen_trust(asymmetric_web)
        assert scores.converged is True
        assert scores.iterations >= 1
        assert scores.residual < 1e-10

    def test_unconverged_scores_still_usable(self, asymmetric_web):
        with pytest.warns(RuntimeWarning):
            scores = eigen_trust(asymmetric_web, max_iterations=1)
        total = sum(scores.to_dict().values())
        assert total == pytest.approx(1.0)
