"""End-to-end tests for the trace-producing entry points.

Covers the acceptance path: ``repro <cmd> --trace PATH`` writes a JSON
trace whose document covers derivation, Step 1 (per-category sweep
counts) and at least one propagation kernel; the report renders it; the
perf bench embeds per-kernel span stats and gates on convergence.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.report import main as report_main
from repro.perf.bench import run_kernel_bench

ARGS = ["--users", "150", "--seed", "3"]


def span_names(document):
    names = set()

    def walk(spans):
        for span in spans:
            names.add(span["name"])
            walk(span.get("children", ()))

    walk(document["spans"])
    return names


class TestCliTrace:
    def test_table2_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert cli_main(["table2", *ARGS, "--trace", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "wrote trace" in err
        document = json.loads(trace.read_text())
        assert document["version"] == 1
        assert "pipeline.run" in span_names(document)

    def test_all_trace_covers_acceptance_surface(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert cli_main(["all", *ARGS, "--trace", str(trace)]) == 0
        document = json.loads(trace.read_text())
        names = span_names(document)
        # derivation, step1 and at least one propagation kernel
        assert "derive.trust" in names
        assert "step1.fit" in names
        assert any(n.startswith("propagation.") for n in names)
        kernels = {r["kernel"] for r in document["convergence"]}
        assert "step1.riggs" in kernels
        assert any(k.startswith("propagation.") for k in kernels)
        # per-category sweep counts
        riggs = [r for r in document["convergence"] if r["kernel"] == "step1.riggs"]
        assert all("category" in r.get("attributes", {}) for r in riggs)
        assert document["histograms"]["step1.sweeps"]["count"] == len(riggs)

    def test_report_renders_cli_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert cli_main(["table2", *ARGS, "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert report_main([str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Span tree" in out
        assert "pipeline.run" in out

    def test_no_trace_flag_writes_nothing(self, tmp_path, capsys):
        assert cli_main(["table2", *ARGS]) == 0
        err = capsys.readouterr().err
        assert "wrote trace" not in err


class TestPerfObservability:
    @pytest.fixture(scope="class")
    def bench_document(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("bench")
        out = tmp / "bench.json"
        trace = tmp / "trace.json"
        document = run_kernel_bench(
            num_users=150, seed=3, repeats=1, quick=True,
            out_path=str(out), trace_path=str(trace),
        )
        return document, json.loads(out.read_text()), json.loads(trace.read_text())

    def test_observability_section_embedded(self, bench_document):
        document, written, _ = bench_document
        for doc in (document, written):
            section = doc["observability"]
            assert section["trace_enabled"] is True
            assert "step1.fit" in section["spans"]
            assert "derive.trust" in section["spans"]
            assert "propagation.eigentrust" in section["spans"]
            assert section["spans"]["step1.fit"]["calls"] == 1

    def test_convergence_embedded_and_converged(self, bench_document):
        document, _, _ = bench_document
        records = document["observability"]["convergence"]
        kernels = {r["kernel"] for r in records}
        assert "step1.riggs" in kernels
        assert "propagation.eigentrust" in kernels
        assert all(r["converged"] for r in records)

    def test_trace_file_renders(self, bench_document, capsys):
        _, _, trace_document = bench_document
        assert "step1.solve_all" in span_names(trace_document)

    def test_equivalence_checks_still_pass(self, bench_document):
        document, _, _ = bench_document
        assert document["derive_matrices_identical"] is True
        assert document["step1_matrices_identical"] is True
