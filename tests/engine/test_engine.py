"""Tests for the staged incremental engine and its replay helpers."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.community import (
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)
from repro.datasets import CommunityProfile, generate_community
from repro.engine import (
    Engine,
    clone_community,
    cold_artifacts,
    extract_records,
    split_rating_stream,
)


@pytest.fixture(scope="module")
def generated_community():
    return generate_community(CommunityProfile(num_users=60), seed=11).community


def assert_matches_cold(engine, community):
    """The engine's artifacts are bitwise equal to a cold run on a replica."""
    artifacts = engine.artifacts
    reference = cold_artifacts(clone_community(community))
    diffs = artifacts.differences(reference)
    assert not diffs, f"artifacts diverged from cold run: {diffs}"


class TestColdBuild:
    def test_first_update_equals_cold_run(self, two_category_community):
        engine = Engine(two_category_community)
        engine.update()
        assert_matches_cold(engine, two_category_community)

    def test_cold_build_stats(self, two_category_community):
        engine = Engine(two_category_community)
        artifacts = engine.update()
        stats = engine.last_stats
        assert stats.pairs_rederived == artifacts.derived.num_entries()
        assert stats.pairs_reused == 0
        assert stats.propagation_rerun
        epoch = two_category_community.change_log.epoch
        assert artifacts.stamps.columns == epoch
        assert artifacts.stamps.propagation == epoch

    def test_artifacts_none_before_first_update(self, two_category_community):
        engine = Engine(two_category_community)
        assert engine.artifacts is None
        assert engine.last_stats is None


class TestIncrementalUpdates:
    def test_rating_stream_stays_bitwise_equal(self, generated_community):
        base, stream = split_rating_stream(generated_community, 6)
        engine = Engine(base)
        engine.update()
        for rating in stream:
            base.add_rating(rating)
            engine.update()
            assert_matches_cold(engine, base)

    def test_new_user_and_trust(self, two_category_community):
        engine = Engine(two_category_community)
        engine.update()
        two_category_community.add_user("frank")
        two_category_community.add_trust(TrustStatement("frank", "alice"))
        engine.update()
        assert_matches_cold(engine, two_category_community)

    def test_new_category_with_activity(self, two_category_community):
        engine = Engine(two_category_community)
        engine.update()
        two_category_community.add_category("music")
        two_category_community.add_object(ReviewedObject("s1", "music"))
        two_category_community.add_review(Review("re1", "eve", "s1"))
        two_category_community.add_rating(ReviewRating("dave", "re1", 0.8))
        engine.update()
        assert_matches_cold(engine, two_category_community)

    def test_noop_update_reuses_everything(self, two_category_community):
        engine = Engine(two_category_community)
        first = engine.update()
        second = engine.update()
        stats = engine.last_stats
        assert stats.deltas_applied == 0
        assert stats.pairs_rederived == 0
        assert stats.pairs_reused == first.derived.num_entries()
        assert not stats.propagation_rerun
        assert second.derived is first.derived
        assert second.scores is first.scores

    def test_trust_only_delta_keeps_derived(self, two_category_community):
        # trust statements feed propagation's pretrust interpretation in no
        # way here: T-hat depends only on A and E, so a trust add must not
        # disturb the derived matrix or the scores
        engine = Engine(two_category_community)
        first = engine.update()
        two_category_community.add_trust(TrustStatement("carol", "dave"))
        second = engine.update()
        assert engine.last_stats.deltas_applied == 1
        assert second.derived is first.derived
        assert second.stamps.derived == first.stamps.derived
        assert second.stamps.columns == two_category_community.change_log.epoch
        assert_matches_cold(engine, two_category_community)

    def test_localised_rating_reuses_pairs(self, generated_community):
        base, stream = split_rating_stream(generated_community, 1)
        engine = Engine(base)
        engine.update()
        base.add_rating(stream[0])
        engine.update()
        stats = engine.last_stats
        assert stats.deltas_applied == 1
        # only one category went stale; most categories are skipped and
        # (for a localised change) some derived pairs survive the patch
        assert stats.categories_resolved >= 1
        assert stats.categories_skipped >= 1
        assert_matches_cold(engine, base)

    def test_stamps_track_reuse(self, two_category_community):
        engine = Engine(two_category_community)
        engine.update()
        two_category_community.add_object(ReviewedObject("m7", "movies"))
        artifacts = engine.update()
        stamps = artifacts.stamps
        epoch = two_category_community.change_log.epoch
        assert stamps.columns == epoch
        assert stamps.derived < epoch  # cached T-hat proven valid, untouched


class TestExactVsApproximate:
    def test_approximate_mode_agrees_to_tolerance(self, generated_community):
        base, stream = split_rating_stream(generated_community, 4)
        exact = Engine(clone_community(base))
        approx = Engine(base, exact=False)
        exact.update()
        approx.update()
        for rating in stream:
            base.add_rating(rating)
            exact.community.add_rating(rating)
            a = approx.update()
            e = exact.update()
            np.testing.assert_allclose(
                a.scores.scores_array(), e.scores.scores_array(), atol=1e-6
            )


class TestReplayHelpers:
    def test_clone_preserves_records_and_shares_nothing(self, two_category_community):
        replica = clone_community(two_category_community)
        assert extract_records(replica) == extract_records(two_category_community)
        assert replica.change_log is not two_category_community.change_log
        replica.add_user("zed")
        assert "zed" not in two_category_community.user_ids()

    def test_split_rating_stream_roundtrip(self, two_category_community):
        base, stream = split_rating_stream(two_category_community, 2)
        assert base.num_ratings() == two_category_community.num_ratings() - 2
        for rating in stream:
            base.add_rating(rating)
        assert extract_records(base).ratings == extract_records(
            two_category_community
        ).ratings

    def test_split_by_category(self, two_category_community):
        base, stream = split_rating_stream(two_category_community, 2, category_id="movies")
        assert len(stream) == 2
        for rating in stream:
            assert two_category_community.review_category(rating.review_id) == "movies"

    def test_split_validates_arguments(self, two_category_community):
        with pytest.raises(ValidationError):
            split_rating_stream(two_category_community, -1)
        with pytest.raises(ValidationError):
            split_rating_stream(two_category_community, 999)
        with pytest.raises(ValidationError):
            split_rating_stream(two_category_community, 1, category_id="ghost")


class TestLogCompaction:
    def test_update_compacts_consumed_deltas(self, generated_community):
        """The retained log stays bounded over a long rating stream."""
        base, stream = split_rating_stream(generated_community, 12)
        engine = Engine(base)
        engine.update()
        log = base.change_log
        assert len(log) == 0  # cold build consumed and compacted everything
        for rating in stream:
            base.add_rating(rating)
            engine.update()
            assert len(log) == 0
        assert log.epoch >= len(stream)  # epochs keep advancing
        assert log.floor == log.epoch

    def test_compaction_can_be_disabled(self, generated_community):
        base, stream = split_rating_stream(generated_community, 5)
        engine = Engine(base, compact_log=False)
        engine.update()
        retained = len(base.change_log)
        assert retained > 0
        for rating in stream:
            base.add_rating(rating)
            engine.update()
        assert len(base.change_log) == retained + len(stream)
        assert base.change_log.floor == 0

    def test_compacted_engine_stays_bitwise_equal(self, generated_community):
        base, stream = split_rating_stream(generated_community, 5)
        engine = Engine(base)
        engine.update()
        for rating in stream:
            base.add_rating(rating)
            engine.update()
        assert_matches_cold(engine, base)
