"""Tests for the engine's sharded backend (``Engine(shard_config=...)``)."""

import pytest

from repro import obs
from repro.community import TrustStatement
from repro.datasets import CommunityProfile, generate_community
from repro.engine import Engine, clone_community, cold_artifacts, split_rating_stream
from repro.obs.recorder import Recorder
from repro.shard import ShardConfig
from repro.shard.matrix import ENTRY_BYTES, ShardedPairMatrix


@pytest.fixture(scope="module")
def generated_community():
    return generate_community(CommunityProfile(num_users=60), seed=11).community


def assert_matches_cold(engine, community):
    reference = cold_artifacts(clone_community(community))
    diffs = engine.artifacts.differences(reference)
    assert not diffs, f"sharded artifacts diverged from cold run: {diffs}"


class TestColdBuild:
    def test_cold_build_is_sharded_and_bitwise(self, two_category_community):
        engine = Engine(two_category_community, shard_config=ShardConfig(num_shards=2))
        engine.update()
        assert isinstance(engine.artifacts.derived, ShardedPairMatrix)
        assert engine.artifacts.derived.num_shards == 2
        assert_matches_cold(engine, two_category_community)

    def test_store_root_receives_spilled_shards(self, tmp_path, two_category_community):
        config = ShardConfig(num_shards=2, spill_bytes=ENTRY_BYTES, root=tmp_path / "s")
        engine = Engine(two_category_community, shard_config=config)
        engine.update()
        assert any((tmp_path / "s").iterdir())
        assert_matches_cold(engine, two_category_community)


class TestIncrementalUpdates:
    def test_rating_stream_stays_bitwise_equal(self, generated_community):
        base, stream = split_rating_stream(generated_community, 6)
        engine = Engine(base, shard_config=ShardConfig(num_shards=3))
        engine.update()
        for rating in stream:
            base.add_rating(rating)
            engine.update()
            assert_matches_cold(engine, base)

    def test_patch_touches_only_owning_shards(self, generated_community):
        base, stream = split_rating_stream(generated_community, 4)
        engine = Engine(base, shard_config=ShardConfig(num_shards=4))
        engine.update()
        recorder = Recorder()
        with obs.use_recorder(recorder):
            for rating in stream:
                base.add_rating(rating)
                engine.update()
        patched = recorder.counters["engine.shard.shards_patched"]
        untouched = recorder.counters.get("engine.shard.shards_untouched", 0)
        assert patched >= 1
        assert patched + untouched == 4 * len(stream)

    def test_new_user_falls_back_to_full_rederive(self, two_category_community):
        """The in-place patch cannot grow the user axis -- a grown
        community must still come out bitwise equal via the rebuild."""
        engine = Engine(two_category_community, shard_config=ShardConfig(num_shards=2))
        engine.update()
        two_category_community.add_user("frank")
        two_category_community.add_trust(TrustStatement("frank", "alice"))
        engine.update()
        assert isinstance(engine.artifacts.derived, ShardedPairMatrix)
        assert_matches_cold(engine, two_category_community)

    def test_noop_update_reuses_everything(self, two_category_community):
        engine = Engine(two_category_community, shard_config=ShardConfig(num_shards=2))
        engine.update()
        before = engine.artifacts.derived
        engine.update()
        assert engine.artifacts.derived is before
        assert engine.last_stats.pairs_rederived == 0
