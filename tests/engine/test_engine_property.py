"""Property test: any mutation stream keeps Engine.update() bitwise-cold.

This is the engine's headline contract (exact mode): after an arbitrary
interleaving of mutations and updates, the staged artifacts are bitwise
equal to one cold, cache-free pipeline pass over a fresh replica of the
same records.  hypothesis drives a random but self-consistent stream of
add_user / add_category / add_object / add_review / add_rating /
add_trust / touch operations, with updates interspersed at random points
so reuse paths (no-op, trust-only, localised patch, full re-derive after
category growth) all get exercised.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.community import (
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)
from repro.engine import Engine, clone_community, cold_artifacts

OPS = ("user", "category", "object", "review", "rating", "trust", "touch", "update")

#: values on the paper's helpfulness scale
SCALE = (0.2, 0.4, 0.6, 0.8, 1.0)


class StreamDriver:
    """Applies ops from a random stream, keeping referential integrity."""

    def __init__(self):
        self.community = Community("prop_engine")
        self.engine = Engine(self.community)
        self.users = []
        self.categories = []
        self.objects = []  # (object_id, category_id)
        self.reviews = []  # (review_id, writer_id)
        self.serial = 0

    def _next(self, prefix):
        self.serial += 1
        return f"{prefix}{self.serial}"

    def _pick(self, items, index):
        return items[index % len(items)]

    def apply(self, op, index, value):
        if op == "update":
            self.engine.update()
            return
        if op == "touch":
            if self.categories:
                self.community.touch(self._pick(self.categories, index))
            else:
                self.community.touch()
            return
        if op == "user":
            user_id = self._next("u")
            self.community.add_user(user_id)
            self.users.append(user_id)
            return
        if op == "category":
            category_id = self._next("c")
            self.community.add_category(category_id)
            self.categories.append(category_id)
            return
        # the remaining ops need prerequisites; create them on demand so
        # every generated stream is applicable
        if not self.users:
            self.apply("user", index, value)
        if not self.categories:
            self.apply("category", index, value)
        if op == "object":
            object_id = self._next("o")
            self.community.add_object(
                ReviewedObject(object_id, self._pick(self.categories, index))
            )
            self.objects.append(object_id)
            return
        if not self.objects:
            self.apply("object", index, value)
        if op == "review":
            review_id = self._next("r")
            writer = self._pick(self.users, index)
            try:
                self.community.add_review(
                    Review(review_id, writer, self._pick(self.objects, index))
                )
            except Exception:
                return  # one review per (writer, object); duplicates rejected
            self.reviews.append((review_id, writer))
            return
        if op == "rating":
            if not self.reviews:
                self.apply("review", index, value)
            review_id, writer = self._pick(self.reviews, index)
            raters = [u for u in self.users if u != writer]
            if not raters:
                self.apply("user", index, value)
                raters = [self.users[-1]]
            rater = self._pick(raters, index)
            try:
                self.community.add_rating(ReviewRating(rater, review_id, value))
            except Exception:
                pass  # duplicate (rater, review) pairs are rejected; fine
            return
        if op == "trust":
            if len(self.users) < 2:
                self.apply("user", index, value)
                self.apply("user", index, value)
            truster = self._pick(self.users, index)
            trustee = self._pick([u for u in self.users if u != truster], index + 1)
            try:
                self.community.add_trust(TrustStatement(truster, trustee))
            except Exception:
                pass  # duplicate statements are rejected; fine
            return
        raise AssertionError(op)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(OPS),
            st.integers(min_value=0, max_value=7),
            st.sampled_from(SCALE),
        ),
        min_size=1,
        max_size=24,
    )
)
@settings(max_examples=30, deadline=None)
def test_random_mutation_stream_is_bitwise_cold(ops):
    driver = StreamDriver()
    for op, index, value in ops:
        driver.apply(op, index, value)
    artifacts = driver.engine.update()
    reference = cold_artifacts(clone_community(driver.community))
    diffs = artifacts.differences(reference)
    assert not diffs, f"stream {ops!r} diverged: {diffs}"
