"""Propagating the derived web of trust (paper §V future work).

Run with::

    python examples/trust_propagation.py

Derives a web of trust from rating data, exports it as a weighted graph,
and runs all four propagation models the paper cites on it:

- TidalTrust: infer source->sink trust for pairs with *no* derived edge;
- EigenTrust: a global trust ranking of the community;
- Guha et al.: densify the binary web with atomic propagations;
- Appleseed: a personalised trust ranking for one user.
"""

from repro.datasets import CommunityProfile, generate_community
from repro.experiments import run_pipeline
from repro.propagation import appleseed, eigen_trust, guha_propagation, tidal_trust
from repro.trust import to_digraph

PROFILE = CommunityProfile(num_users=300, num_advisors=10, num_top_reviewers=12)


def main() -> None:
    dataset = generate_community(PROFILE, seed=11)
    artifacts = run_pipeline(dataset=dataset)
    derived_web = artifacts.derived_binary
    graph = to_digraph(derived_web)
    print(f"derived web of trust: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges\n")

    # --- TidalTrust: local inference across the derived web ----------------
    sources = [u for u in derived_web.source_ids() if derived_web.row_size(u) >= 3]
    inferred = 0
    examples = []
    for source in sources[:30]:
        for target in sources[:30]:
            if source == target or derived_web.contains(source, target):
                continue
            value = tidal_trust(graph, source, target)
            if value is not None:
                inferred += 1
                if len(examples) < 3:
                    examples.append((source, target, value))
    print(f"TidalTrust inferred trust for {inferred} unconnected pairs, e.g.:")
    for source, target, value in examples:
        print(f"  t({source} -> {target}) = {value:.3f}")

    # --- EigenTrust: global ranking ----------------------------------------
    scores = eigen_trust(graph)
    top = sorted(scores.items(), key=lambda item: -item[1])[:5]
    print("\nEigenTrust global top-5 over the derived web:")
    for user, score in top:
        marker = " (designated Top Reviewer)" if user in dataset.top_reviewers else ""
        print(f"  {user}: {score:.4f}{marker}")

    # --- Guha et al.: densification ----------------------------------------
    propagated = guha_propagation(derived_web, steps=2, top_k=20)
    print(f"\nGuha propagation densified the web from "
          f"{derived_web.num_entries()} to {propagated.num_entries()} edges "
          "(direct + co-citation + transpose + coupling, 2 steps)")

    # --- Appleseed: personalised ranking ------------------------------------
    source = max(sources, key=derived_web.row_size)
    ranks = appleseed(graph, source)
    personal_top = sorted(
        ((u, r) for u, r in ranks.items() if u != source), key=lambda item: -item[1]
    )[:5]
    print(f"\nAppleseed personalised top-5 for {source}:")
    for user, rank in personal_top:
        print(f"  {user}: {rank:.2f} energy")


if __name__ == "__main__":
    main()
