"""The paper's motivating scenario: e-commerce with no web of trust at all.

Run with::

    python examples/ecommerce_cold_start.py

An e-commerce site has product reviews and review-helpfulness ratings but
*no* trust feature (the paper's intro: "a web of trust is not always
available especially in e-commerce environments").  This example:

1. generates such a community and then *hides* the trust network --
   the framework never sees it;
2. derives the full trust matrix from ratings alone;
3. recommends trustworthy reviewers for individual shoppers;
4. reveals the hidden trust network only to *validate* the
   recommendations (ranking AUC and precision@5 vs shoppers' actual
   trust decisions).
"""

from repro import (
    Community,
    ExpertiseEstimator,
    affiliation_matrix,
    derive_trust,
    direct_connection_matrix,
    ground_truth_matrix,
)
from repro.datasets import CommunityProfile, generate_community

PROFILE = CommunityProfile(
    num_users=500,
    category_names=(
        "Electronics",
        "Home & Kitchen",
        "Sports",
        "Toys",
        "Books",
        "Garden",
    ),
    objects_per_category=80,
    num_advisors=10,
    num_top_reviewers=15,
)


def main() -> None:
    dataset = generate_community(PROFILE, seed=21)
    full = dataset.community

    # --- the site's reality: reviews + ratings, zero trust statements ----
    from repro.community import Review, ReviewRating, ReviewedObject

    site = Community("ecommerce")
    for user in full.user_ids():
        site.add_user(user)
    for row in full.database.table("categories").rows():
        site.add_category(row["category_id"], row["name"])
    for row in full.database.table("objects").rows():
        site.add_object(ReviewedObject(row["object_id"], row["category_id"]))
    for review in full.iter_reviews():
        site.add_review(Review(review.review_id, review.writer_id, review.object_id))
    for rating in full.iter_ratings():
        site.add_rating(ReviewRating(rating.rater_id, rating.review_id, rating.value))
    assert site.num_trust_edges() == 0, "the site has no trust feature"

    print(f"e-commerce site: {site.num_users()} users, {site.num_reviews()} reviews, "
          f"{site.num_ratings()} helpfulness ratings, 0 trust statements\n")

    # --- derive trust from ratings alone ---------------------------------
    expertise = ExpertiseEstimator().fit(site)
    affinity = affiliation_matrix(site)
    trust = derive_trust(affinity, expertise.expertise)
    print(f"derived {trust.num_entries()} trust degrees "
          f"({trust.density():.1%} of all user pairs) without any trust ratings\n")

    # --- recommend reviewers for a few shoppers --------------------------
    names = {
        row["category_id"]: row["name"]
        for row in site.database.table("categories").rows()
    }
    shoppers = [u for u in site.user_ids() if trust.row_size(u) >= 5][:3]
    for shopper in shoppers:
        row = trust.row(shopper)
        top = sorted(row.items(), key=lambda item: -item[1])[:3]
        interests = sorted(
            ((names[c], affinity.get(shopper, c)) for c in site.category_ids()),
            key=lambda item: -item[1],
        )[:2]
        interest_text = ", ".join(f"{name} ({value:.2f})" for name, value in interests)
        print(f"shopper {shopper} (interests: {interest_text})")
        for target, value in top:
            expert_in = max(
                site.category_ids(), key=lambda c: expertise.expertise.get(target, c)
            )
            print(f"  -> trust {target} at {value:.3f} "
                  f"(top expertise: {names[expert_in]})")
        print()

    # --- validation against the hidden ground truth ----------------------
    # the paper's own methodology (§IV.C): binarise both the derived matrix
    # and the mean-rating baseline at each user's generousness and compare
    # how much of the (hidden) trust network each recovers
    from repro import baseline_matrix, binarize_top_k, generousness
    from repro.metrics import validate_trust

    connections = direct_connection_matrix(full)
    hidden_truth = ground_truth_matrix(full)
    k_by_user = generousness(connections, hidden_truth)

    model_binary = binarize_top_k(trust, k_by_user)
    naive_binary = binarize_top_k(baseline_matrix(full), k_by_user)
    model = validate_trust(model_binary, connections, hidden_truth)
    naive = validate_trust(naive_binary, connections, hidden_truth)

    print("validation against the trust network the site never saw:")
    print(f"  derived-trust recall  = {model.recall:.3f}")
    print(f"  mean-rating baseline  = {naive.recall:.3f}")
    print("the derived web recovers far more of the hidden trust network than")
    print("ranking reviewers by the ratings a shopper gave them (paper Table 4).")
    assert model.recall > naive.recall, "derived trust must beat the naive baseline"


if __name__ == "__main__":
    main()
