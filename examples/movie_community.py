"""The paper's evaluation, end to end, on the Video & DVD stand-in.

Run with::

    python examples/movie_community.py [num_users] [seed]

Generates the synthetic Epinions-style community (12 Video & DVD
sub-categories, heavy-tailed activity, designated Advisors and Top
Reviewers), runs the full framework, and prints every table and figure of
the paper's evaluation section plus the §V propagation comparison.
"""

import sys

from repro.datasets import dataset_stats
from repro.experiments import (
    EXPERIMENT_SEED,
    paper_profile,
    render_coverage,
    render_fig3,
    render_future_trust,
    render_propagation_comparison,
    render_score_gap,
    render_table2,
    render_table3,
    render_table4,
    run_coverage,
    run_fig3,
    run_future_trust,
    run_pipeline,
    run_propagation_comparison,
    run_score_gap,
    run_table2,
    run_table3,
    run_table4,
)


def main() -> None:
    num_users = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else EXPERIMENT_SEED

    print(f"Generating the Video & DVD stand-in ({num_users} users, seed {seed})...")
    artifacts = run_pipeline(paper_profile(num_users), seed)

    stats = dataset_stats(artifacts.community)
    print(
        f"dataset: {stats.num_users} users, {stats.num_reviews} reviews, "
        f"{stats.num_ratings} ratings, {stats.num_trust_edges} trust edges\n"
        f"rating density {stats.rating_density:.4f} vs trust density "
        f"{stats.trust_density:.4f} (the sparsity gap motivating the paper)\n"
    )

    print(render_table2(run_table2(artifacts)), end="\n\n")
    print(render_table3(run_table3(artifacts)), end="\n\n")
    print(render_fig3(run_fig3(artifacts)), end="\n\n")
    print(render_table4(run_table4(artifacts)), end="\n\n")
    print(render_score_gap(run_score_gap(artifacts)), end="\n\n")
    print(render_coverage(run_coverage(artifacts)), end="\n\n")
    print(render_future_trust(run_future_trust(artifacts)), end="\n\n")
    print("Propagating both webs of trust (paper §V future work)...")
    print(render_propagation_comparison(run_propagation_comparison(artifacts)))


if __name__ == "__main__":
    main()
