"""Quickstart: derive a web of trust from rating data in four steps.

Run with::

    python examples/quickstart.py

Builds a small review community by hand, runs the three framework steps
(expertise -> affiliation -> derivation), and prints the degree of trust
between users who never expressed any trust at all.
"""

from repro import (
    Community,
    ExpertiseEstimator,
    Review,
    ReviewRating,
    ReviewedObject,
    affiliation_matrix,
    derive_trust,
)


def build_community() -> Community:
    """A tiny movie/book community: two experts, three readers."""
    community = Community("quickstart")
    for user in ("ana", "ben", "cleo", "dan", "eva"):
        community.add_user(user)
    community.add_category("movies")
    community.add_category("books")

    for object_id, category in [
        ("matrix", "movies"),
        ("dune-film", "movies"),
        ("dune-book", "books"),
    ]:
        community.add_object(ReviewedObject(object_id, category))

    # ana writes excellent movie reviews, ben writes a mediocre one,
    # cleo writes the only book review
    community.add_review(Review("r-ana-1", "ana", "matrix"))
    community.add_review(Review("r-ana-2", "ana", "dune-film"))
    community.add_review(Review("r-ben-1", "ben", "matrix"))
    community.add_review(Review("r-cleo-1", "cleo", "dune-book"))

    ratings = [
        ("dan", "r-ana-1", 1.0),
        ("eva", "r-ana-1", 1.0),
        ("dan", "r-ana-2", 0.8),
        ("eva", "r-ben-1", 0.4),
        ("dan", "r-cleo-1", 0.8),
        ("ben", "r-cleo-1", 1.0),
    ]
    for rater, review, value in ratings:
        community.add_rating(ReviewRating(rater, review, value))
    return community


def main() -> None:
    community = build_community()

    # Step 1: per-category expertise from Riggs' reputation model (eqs. 1-3)
    expertise = ExpertiseEstimator().fit(community)
    print("Expertise E (writer reputation per category):")
    for user in community.user_ids():
        row = {
            c: round(expertise.expertise.get(user, c), 3)
            for c in community.category_ids()
        }
        print(f"  {user:5s} {row}")

    # Step 2: per-category affinity from activity counts (eq. 4)
    affinity = affiliation_matrix(community)
    print("\nAffiliation A (activity-derived interest per category):")
    for user in community.user_ids():
        row = {c: round(affinity.get(user, c), 3) for c in community.category_ids()}
        print(f"  {user:5s} {row}")

    # Step 3: degree of trust = affinity-weighted expertise (eq. 5)
    trust = derive_trust(affinity, expertise.expertise)
    print("\nDerived degree of trust (no explicit trust ratings involved):")
    for source in community.user_ids():
        row = trust.row(source)
        if not row:
            continue
        ranked = sorted(row.items(), key=lambda item: -item[1])
        formatted = ", ".join(f"{target}={value:.3f}" for target, value in ranked)
        print(f"  {source:5s} -> {formatted}")

    # dan mostly rates movies, so he trusts the movie expert ana the most
    dan_row = trust.row("dan")
    assert max(dan_row, key=dan_row.get) == "ana"
    print("\ndan's most trusted reviewer is ana -- the movie expert, "
          "because dan's activity is movie-centric.")


if __name__ == "__main__":
    main()
