"""Trust-aware review recommendation (the application the paper motivates).

Run with::

    python examples/review_recommendation.py

Splits 20% of the helpfulness ratings off as a hidden test set, derives
trust from the remaining data, and:

1. recommends reviews to individual readers, gated by their *derived*
   trust in each writer;
2. predicts the held-out helpfulness ratings and compares the error
   against global-mean and per-writer-mean baselines.
"""

from repro.datasets import CommunityProfile, generate_community, holdout_ratings
from repro.experiments import run_pipeline
from repro.recommend import TrustAwareRecommender, evaluate_predictions

PROFILE = CommunityProfile(
    num_users=400,
    category_names=(
        "Action/Adventure",
        "Comedies",
        "Dramas",
        "Foreign films",
        "Science/Fiction",
    ),
    objects_per_category=60,
    num_advisors=10,
    num_top_reviewers=14,
)


def main() -> None:
    dataset = generate_community(PROFILE, seed=29)
    train, held_out = holdout_ratings(dataset.community, 0.2, seed=1)
    print(f"training on {train.num_ratings()} ratings, "
          f"holding out {len(held_out)} for evaluation\n")

    artifacts = run_pipeline(community=train)
    recommender = TrustAwareRecommender(artifacts)

    # --- personalised recommendations ------------------------------------
    names = {
        row["category_id"]: row["name"]
        for row in train.database.table("categories").rows()
    }
    readers = [u for u in train.user_ids() if len(train.ratings_by_rater(u)) >= 10][:2]
    for reader in readers:
        print(f"top reviews for {reader}:")
        for rec in recommender.recommend(reader, k=4):
            print(
                f"  {rec.review_id} by {rec.writer_id:9s} in {names[rec.category_id]:16s}"
                f" score={rec.score:.3f} (quality={rec.quality:.2f},"
                f" trust={rec.trust_in_writer:.2f})"
            )
        print()

    # --- held-out rating prediction ---------------------------------------
    report = evaluate_predictions(recommender, held_out)
    print(f"held-out rating prediction over {report.count} ratings:")
    print(f"  trust/quality model : MAE={report.model_mae:.4f}  RMSE={report.model_rmse:.4f}")
    print(f"  per-writer mean     : MAE={report.writer_mean_mae:.4f}  RMSE={report.writer_mean_rmse:.4f}")
    print(f"  global mean         : MAE={report.global_mean_mae:.4f}  RMSE={report.global_mean_rmse:.4f}")
    assert report.beats_global_mean
    print("\nthe framework's quality/expertise estimates predict unseen "
          "helpfulness ratings better than the constant baseline.")


if __name__ == "__main__":
    main()
