"""``python -m repro.perf`` -- run the kernel benchmark and emit BENCH JSON."""

from repro.perf.bench import main

raise SystemExit(main())
