"""Micro-benchmark of the sparse kernel layer, with a ``BENCH_perf.json`` emitter.

Times the vectorised hot paths against the frozen seed implementations in
:mod:`repro.perf.reference` on a synthetic community:

- **derive** -- Step 3, eq. 5 (``T-hat = W @ E.T`` materialisation);
- **step1_fit** -- Step 1, eqs. 1-3, cold: first batched fit on a fresh
  community, including the columnar-view build;
- **step1_fit_batched** -- Step 1 with the columnar view already cached
  (the steady-state cost when anything else has touched the community's
  columns first), best-of ``repeats``;
- **propagation_eigentrust** -- one global propagation pass over ``R``;
- **incremental** -- the delta-driven :class:`repro.engine.Engine`: the
  newest ratings of a typical (median-size) category arrive one at a
  time -- the steady-state workload the engine exists for -- and each
  ``Engine.update()`` is timed against a full cold build of the same
  state on a fresh replica.  The final incremental state is checked
  bitwise against the cold build (``incremental_identical``), and
  ``--check`` enforces a minimum update-vs-cold speedup
  (``--min-update-speedup``, default 2x);
- **shard** -- the out-of-core backend: ``T-hat`` is derived once
  in-memory and once shard-by-shard with a per-shard spill budget
  (:meth:`repro.trust.TrustDeriver.derive_sharded`), comparing wall
  time and -- via :mod:`tracemalloc` -- the peak *incremental* heap of
  the pair-matrix build stage.  The sharded matrix must be bitwise
  equal to the in-memory one, sharded eigentrust must reproduce the
  dense scores bitwise, and the flushed store must pass checksum
  verification; ``--check`` enforces all three plus a peak-memory
  ceiling (``--max-shard-peak-ratio``, default 0.5x the in-memory
  build at the default 4-shard split).

Run it as a module::

    python -m repro.perf.bench --users 2000 --seed 7 --out BENCH_perf.json

``--quick`` shrinks the community for CI smoke runs.  The derive and
step1 kernels are additionally checked for exact equality against the
references, so the speedup never comes at the cost of a changed result;
``--check`` (with ``--min-step1-speedup``) turns those checks into a
nonzero exit status for CI.

Besides the timing loops, every run makes one *instrumented, untimed*
pass over the optimised kernels under a :class:`repro.obs.Recorder` and
embeds the per-kernel span statistics, counters and convergence records
under the document's ``observability`` key.  ``--trace PATH`` writes the
full span tree of that pass as a trace JSON, and ``--check`` also fails
when any iterative kernel reported ``converged=False``.
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
import tracemalloc
from typing import Callable

import numpy as np

from repro import obs
from repro.affinity import AffinityEstimator
from repro.common.validation import require_positive
from repro.community import Community
from repro.datasets import CommunityProfile, generate_community
from repro.engine import Engine, clone_community, cold_artifacts, split_rating_stream
from repro.matrix import UserCategoryMatrix, UserPairMatrix
from repro.obs.report import aggregate_spans
from repro.perf.reference import (
    reference_derive_trust,
    reference_eigen_trust,
    reference_fit_expertise,
)
from repro.propagation import eigen_trust
from repro.reputation import ExpertiseEstimator
from repro.shard import ShardLayout, ShardStore
from repro.shard.matrix import ENTRY_BYTES, ShardedPairMatrix
from repro.trust import TrustDeriver, direct_connection_matrix

__all__ = ["run_kernel_bench"]


def _best_of(callable_: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Minimum wall-clock over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _traced_pass(
    community: Community,
    affiliation: UserCategoryMatrix,
    expertise: UserCategoryMatrix,
    connections: UserPairMatrix,
) -> dict:
    """One instrumented, untimed pass over each kernel.

    Runs outside the timing loops so the recorder never perturbs the
    measured speedups; under ``REPRO_TRACE=0`` the recorder stays null and
    the document comes back empty.
    """
    recorder = obs.Recorder()
    with obs.use_recorder(recorder):
        ExpertiseEstimator().fit(community)
        TrustDeriver().derive(affiliation, expertise)
        eigen_trust(connections)
        sharded = TrustDeriver().derive_sharded(
            affiliation, expertise, store=ShardStore.temporary()
        )
        eigen_trust(sharded)
        sharded.flush()
    return recorder.to_dict()


def _peak_incremental_bytes(callable_: Callable[[], object]) -> tuple[int, object]:
    """Peak heap growth of one call, in bytes, via :mod:`tracemalloc`.

    The baseline is subtracted, so pre-existing allocations (the inputs)
    do not count; memory-mapped shard pages are not heap and never count,
    which is exactly the accounting the out-of-core backend is about.
    """
    gc.collect()
    tracemalloc.start()
    try:
        baseline, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        result = callable_()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return max(0, peak - baseline), result


def _bench_shard(
    affiliation: UserCategoryMatrix,
    expertise: UserCategoryMatrix,
    dense: UserPairMatrix,
    *,
    num_shards: int,
    spill_bytes: int,
    shard_dir: str | None,
    repeats: int,
) -> tuple[dict, bool, bool, bool]:
    """Compare the sharded ``T-hat`` build against the in-memory one.

    Returns ``(timing entry, derive identical, propagation identical,
    checksums ok)``.  The peak-memory figures cover only the pair-matrix
    build stage (the quadratic artifact); the dense inputs are alive in
    both measurements and excluded by the baseline.
    """
    deriver = TrustDeriver()
    entries = dense.num_entries()
    if spill_bytes <= 0:
        # auto budget: half an (even) shard's entries, so every completed
        # shard spills and the heap never holds more than ~one shard
        spill_bytes = max(ENTRY_BYTES, ENTRY_BYTES * entries // max(1, num_shards) // 2)
    layout = ShardLayout.even(len(affiliation.users), num_shards)

    def build_sharded() -> ShardedPairMatrix:
        store = ShardStore(shard_dir) if shard_dir else ShardStore.temporary()
        return deriver.derive_sharded(
            affiliation, expertise, layout=layout, store=store, spill_bytes=spill_bytes
        )

    dense_s, _ = _best_of(lambda: deriver.derive(affiliation, expertise), repeats)
    sharded_s, _ = _best_of(build_sharded, repeats)
    dense_peak, dense_again = _peak_incremental_bytes(
        lambda: deriver.derive(affiliation, expertise)
    )
    del dense_again
    sharded_peak, sharded_obj = _peak_incremental_bytes(build_sharded)
    assert isinstance(sharded_obj, ShardedPairMatrix)
    sharded: ShardedPairMatrix = sharded_obj

    identical = sharded == dense
    dense_scores = eigen_trust(dense)
    sharded_scores = eigen_trust(sharded)
    propagation_identical = bool(
        np.array_equal(dense_scores.scores_array(), sharded_scores.scores_array())
    ) and dense_scores.iterations == sharded_scores.iterations
    sharded.flush(epoch=0)
    store = sharded.store
    assert store is not None
    checksums_ok = store.verify() == []

    entry = {
        "before_s": round(dense_s, 6),
        "after_s": round(sharded_s, 6),
        "speedup": round(dense_s / sharded_s, 2) if sharded_s > 0 else None,
        "dense_peak_bytes": int(dense_peak),
        "sharded_peak_bytes": int(sharded_peak),
        "peak_ratio": round(sharded_peak / dense_peak, 4) if dense_peak else None,
        "shards": num_shards,
        "spill_bytes": int(spill_bytes),
        "entries": entries,
    }
    return entry, identical, propagation_identical, checksums_ok


def _bench_incremental(
    community: Community, *, stream_size: int, batch: int, repeats: int
) -> tuple[dict, bool]:
    """Time ``Engine.update()`` on a localised rating stream vs cold builds.

    Withholds the newest ``stream_size`` ratings of the median-size
    category -- the typical category a steady-state rating lands in (the
    largest category, where near half the community writes, is the
    adversarial case: each re-solve perturbs that many expertise entries)
    -- then replays them through an engine ``batch`` ratings per update.
    Returns ``(timing entry, incremental_identical)`` where the timing
    compares the *mean* update against a full cold build of the final
    state on a fresh replica (replica construction untimed).
    """
    by_size = sorted(community.category_ids(), key=community.num_ratings)
    median = by_size[len(by_size) // 2]
    available = community.num_ratings(median)
    stream_size = min(stream_size, max(1, available - 1))
    base, stream = split_rating_stream(community, stream_size, category_id=median)

    engine = Engine(base)
    engine.update()  # cold build, untimed
    update_times: list[float] = []
    for start in range(0, len(stream), batch):
        for rating in stream[start : start + batch]:
            base.add_rating(rating)
        begin = time.perf_counter()
        engine.update()
        update_times.append(time.perf_counter() - begin)
    update_s = sum(update_times) / len(update_times) if update_times else 0.0

    cold_s = float("inf")
    cold = None
    for _ in range(repeats):
        replica = clone_community(base)  # untimed: replaying records is not pipeline work
        begin = time.perf_counter()
        cold = cold_artifacts(replica)
        cold_s = min(cold_s, time.perf_counter() - begin)

    assert cold is not None and engine.artifacts is not None
    identical = engine.artifacts.bitwise_equal(cold)
    entry = {
        "before_s": round(cold_s, 6),
        "after_s": round(update_s, 6),
        "speedup": round(cold_s / update_s, 2) if update_s > 0 else None,
        "stream": len(stream),
        "batch": batch,
        "category": median,
    }
    return entry, identical


def run_kernel_bench(
    *,
    num_users: int = 2000,
    seed: int = 7,
    repeats: int = 3,
    out_path: str | None = None,
    quick: bool = False,
    trace_path: str | None = None,
    num_shards: int = 4,
    shard_spill_bytes: int = 0,
    shard_dir: str | None = None,
) -> dict:
    """Benchmark the kernel layer and optionally write ``BENCH_perf.json``.

    Returns the result document.  ``quick`` drops the community to 400
    users and a single repeat -- a smoke configuration for CI.
    """
    require_positive("num_users", num_users)
    require_positive("repeats", repeats)
    if quick:
        num_users = min(num_users, 400)
        repeats = 1

    dataset = generate_community(CommunityProfile(num_users=num_users), seed=seed)
    community = dataset.community

    # --- Step 1: per-category fixed points + matrix assembly -------------
    before_fit, reference_fit = _best_of(lambda: reference_fit_expertise(community), 1)
    # cold: the first fit builds the columnar view
    after_fit, fit_result = _best_of(lambda: ExpertiseEstimator().fit(community), 1)
    # warm: the columnar view is cached, only the batched solve remains
    before_fit_batched, _ = _best_of(lambda: reference_fit_expertise(community), repeats)
    after_fit_batched, _ = _best_of(lambda: ExpertiseEstimator().fit(community), repeats)
    step1_equal = (
        fit_result.expertise == reference_fit.expertise
        and fit_result.rater_reputation == reference_fit.rater_reputation
        and fit_result.iterations() == reference_fit.iterations()
    )

    # --- Step 3: eq. 5 derivation ---------------------------------------
    affiliation = AffinityEstimator().fit(community)
    expertise = fit_result.expertise
    deriver = TrustDeriver()

    before_derive, reference_derived = _best_of(
        lambda: reference_derive_trust(affiliation, expertise), repeats
    )
    after_derive, derived = _best_of(
        lambda: deriver.derive(affiliation, expertise), repeats
    )
    matrices_equal = derived == reference_derived

    # --- one propagation pass over the direct-connection web ------------
    connections = direct_connection_matrix(community)
    before_prop, _ = _best_of(lambda: reference_eigen_trust(connections), repeats)
    after_prop, _ = _best_of(lambda: eigen_trust(connections), repeats)

    # --- out-of-core sharded backend vs in-memory -------------------------
    shard_entry, shard_identical, shard_prop_identical, shard_checksums_ok = (
        _bench_shard(
            affiliation,
            expertise,
            derived,
            num_shards=num_shards,
            spill_bytes=shard_spill_bytes,
            shard_dir=shard_dir,
            repeats=repeats,
        )
    )

    # --- incremental engine vs cold rebuild ------------------------------
    # one rating per update: the steady-state arrival pattern the engine
    # is built for (batched arrival amortises the same stage costs)
    incremental_entry, incremental_identical = _bench_incremental(
        community,
        stream_size=40 if quick else 60,
        batch=1,
        repeats=max(repeats, 3),
    )

    def entry(before: float, after: float) -> dict:
        return {
            "before_s": round(before, 6),
            "after_s": round(after, 6),
            "speedup": round(before / after, 2) if after > 0 else None,
        }

    # --- instrumented pass: per-kernel span stats + convergence ----------
    trace_document = _traced_pass(community, affiliation, expertise, connections)
    span_stats = aggregate_spans(trace_document.get("spans", []))

    document = {
        "config": {
            "num_users": num_users,
            "seed": seed,
            "repeats": repeats,
            "quick": quick,
            "derived_entries": derived.num_entries(),
            "python": platform.python_version(),
        },
        "kernels": {
            "derive": entry(before_derive, after_derive),
            "step1_fit": entry(before_fit, after_fit),
            "step1_fit_batched": entry(before_fit_batched, after_fit_batched),
            "propagation_eigentrust": entry(before_prop, after_prop),
            "incremental": incremental_entry,
            "shard": shard_entry,
        },
        "derive_matrices_identical": bool(matrices_equal),
        "step1_matrices_identical": bool(step1_equal),
        "incremental_identical": bool(incremental_identical),
        "shard_identical": bool(shard_identical),
        "shard_propagation_identical": bool(shard_prop_identical),
        "shard_checksums_ok": bool(shard_checksums_ok),
        "observability": {
            "trace_enabled": obs.TRACE_ENABLED,
            "spans": {name: stat.to_dict() for name, stat in sorted(span_stats.items())},
            "counters": trace_document.get("counters", {}),
            "convergence": trace_document.get("convergence", []),
        },
    }
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump(trace_document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=2000, help="community size")
    parser.add_argument("--seed", type=int, default=7, help="generation seed")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--out", default="BENCH_perf.json", help="output JSON path")
    parser.add_argument(
        "--quick", action="store_true", help="small smoke configuration for CI"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="also write the full repro.obs trace of the instrumented pass "
        "(render with `python -m repro.obs.report PATH`)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when result equivalence or the step1 speedup "
        "floor is lost",
    )
    parser.add_argument(
        "--min-step1-speedup",
        type=float,
        default=1.0,
        help="minimum accepted step1_fit speedup under --check",
    )
    parser.add_argument(
        "--min-update-speedup",
        type=float,
        default=2.0,
        help="minimum accepted incremental update-vs-cold speedup under --check",
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="shard count for the shard scenario"
    )
    parser.add_argument(
        "--shard-spill-bytes",
        type=int,
        default=0,
        help="per-shard spill budget in bytes (0 = auto: half a shard)",
    )
    parser.add_argument(
        "--shard-dir",
        metavar="PATH",
        help="persist the benchmark shard store here instead of a temp dir "
        "(the manifest survives for inspection)",
    )
    parser.add_argument(
        "--max-shard-peak-ratio",
        type=float,
        default=0.5,
        help="maximum accepted sharded/in-memory peak-heap ratio under --check",
    )
    args = parser.parse_args(argv)
    document = run_kernel_bench(
        num_users=args.users,
        seed=args.seed,
        repeats=args.repeats,
        out_path=args.out,
        quick=args.quick,
        trace_path=args.trace,
        num_shards=args.shards,
        shard_spill_bytes=args.shard_spill_bytes,
        shard_dir=args.shard_dir,
    )
    json.dump(document, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if args.check:
        failures = []
        if not document["derive_matrices_identical"]:
            failures.append("derive result differs from the reference")
        if not document["step1_matrices_identical"]:
            failures.append("step1 result differs from the reference")
        step1_speedup = document["kernels"]["step1_fit"]["speedup"]
        if step1_speedup is not None and step1_speedup < args.min_step1_speedup:
            failures.append(
                f"step1_fit speedup {step1_speedup} below floor "
                f"{args.min_step1_speedup}"
            )
        if not document["incremental_identical"]:
            failures.append(
                "incremental engine state differs bitwise from the cold build"
            )
        update_speedup = document["kernels"]["incremental"]["speedup"]
        if update_speedup is not None and update_speedup < args.min_update_speedup:
            failures.append(
                f"incremental update speedup {update_speedup} below floor "
                f"{args.min_update_speedup}"
            )
        if not document["shard_identical"]:
            failures.append("sharded derive differs bitwise from the in-memory build")
        if not document["shard_propagation_identical"]:
            failures.append(
                "sharded eigentrust differs bitwise from the dense propagation"
            )
        if not document["shard_checksums_ok"]:
            failures.append("shard store checksum verification failed")
        peak_ratio = document["kernels"]["shard"]["peak_ratio"]
        if peak_ratio is not None and peak_ratio > args.max_shard_peak_ratio:
            failures.append(
                f"sharded peak-heap ratio {peak_ratio} above ceiling "
                f"{args.max_shard_peak_ratio}"
            )
        for record in document["observability"]["convergence"]:
            if not record.get("converged", True):
                failures.append(
                    f"kernel {record.get('kernel')} did not converge "
                    f"({record.get('iterations')} iterations, "
                    f"residual {record.get('residual')})"
                )
        if failures:
            for failure in failures:
                print(f"perf check failed: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
