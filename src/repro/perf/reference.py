"""Frozen seed implementations of the pipeline's hot paths.

These are verbatim ports of the pre-kernel-layer code: numerically cheap
numpy work whose results are materialised through per-entry Python calls
(``UserPairMatrix.set`` / ``UserCategoryMatrix.set`` per element, label
lookups per entry, dense edge loops).  They exist for two reasons:

- **equivalence testing** -- the vectorised kernels must produce identical
  results (see ``tests/trust/test_kernel_equivalence.py``);
- **benchmarking** -- :mod:`repro.perf.bench` times them as the "before"
  side of ``BENCH_perf.json``.

Do not optimise this module; it is the baseline.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConvergenceError
from repro.community import Community
from repro.matrix import LabelIndex, UserCategoryMatrix, UserPairMatrix
from repro.reputation.estimator import ExpertiseResult
from repro.reputation.riggs import CategoryFixedPoint, RiggsConfig, solve_category
from repro.reputation.writer import writer_reputations

__all__ = [
    "reference_derive_trust",
    "reference_fit_expertise",
    "reference_eigen_trust",
]


def reference_derive_trust(
    affiliation: UserCategoryMatrix,
    expertise: UserCategoryMatrix,
    *,
    min_value: float = 0.0,
    include_self: bool = False,
    block_size: int = 512,
) -> UserPairMatrix:
    """Seed implementation of eq. 5: blocked matmul, per-entry stores.

    Uses the same block decomposition as :class:`repro.trust.TrustDeriver`,
    so the floating-point results are bitwise identical -- only the
    materialisation differs (one interpreted ``set`` call per entry).
    """
    users = affiliation.users
    a_values = affiliation.values_view()
    e_transposed = expertise.values_view().T.copy()

    row_sums = a_values.sum(axis=1)
    active_rows = np.nonzero(row_sums > 0.0)[0]

    result = UserPairMatrix(users)
    for start in range(0, len(active_rows), block_size):
        block_rows = active_rows[start : start + block_size]
        weights = a_values[block_rows, :] / row_sums[block_rows, None]
        # fixed-reduction-order product, kept identical to
        # repro.trust.derive._block_product so the bitwise contract holds
        block = np.einsum("mc,cn->mn", weights, e_transposed, optimize=False)
        for local, i in enumerate(block_rows):
            values = block[local]
            targets = np.nonzero(values > min_value)[0]
            source = users.label(int(i))
            for j in targets:
                if not include_self and int(j) == int(i):
                    continue
                result.set(source, users.label(int(j)), float(values[j]))
    return result


def reference_fit_expertise(
    community: Community,
    config: RiggsConfig | None = None,
    *,
    unrated_policy: str = "exclude",
) -> ExpertiseResult:
    """Seed implementation of the Step-1 orchestration.

    Serial per-category solves with the ``E`` and rater matrices assembled
    through one :meth:`UserCategoryMatrix.set` call per entry.
    """
    config = config or RiggsConfig()
    users = LabelIndex(community.user_ids())
    categories = LabelIndex(community.category_ids())
    expertise = UserCategoryMatrix(users, categories)
    rater_rep = UserCategoryMatrix(users, categories)
    fixed_points: dict[str, CategoryFixedPoint] = {}

    for category_id in categories:
        fixed_point = solve_category(community.rating_triples(category_id), config)
        fixed_points[category_id] = fixed_point
        for rater_id, value in fixed_point.rater_reputation.items():
            rater_rep.set(rater_id, category_id, value)

        review_writers = {
            review.review_id: review.writer_id
            for review in community.reviews_in_category(category_id)
        }
        writers = writer_reputations(
            review_writers,
            fixed_point.review_quality,
            experience_discount_enabled=config.experience_discount_enabled,
            unrated_policy=unrated_policy,
        )
        for writer_id, value in writers.items():
            expertise.set(writer_id, category_id, value)

    return ExpertiseResult(
        expertise=expertise, rater_reputation=rater_rep, fixed_points=fixed_points
    )


def reference_eigen_trust(
    trust: UserPairMatrix,
    *,
    alpha: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
) -> dict[str, float]:
    """Seed implementation of EigenTrust: dense matrix, per-edge Python fill."""
    users = list(trust.users)
    if not users:
        return {}
    index = {node: i for i, node in enumerate(users)}
    n = len(users)
    p = np.full(n, 1.0 / n)

    matrix = np.zeros((n, n))
    for source, target, value in trust.entries():
        matrix[index[source], index[target]] = value
    row_sums = matrix.sum(axis=1, keepdims=True)
    dangling = row_sums[:, 0] == 0.0
    matrix = np.divide(matrix, np.where(row_sums > 0, row_sums, 1.0))

    t = p.copy()
    for _ in range(max_iterations):
        spread = matrix.T @ t + p * float(t[dangling].sum())
        new_t = (1.0 - alpha) * spread + alpha * p
        total = new_t.sum()
        if total > 0:
            new_t = new_t / total
        residual = float(np.abs(new_t - t).max())
        t = new_t
        if residual < tolerance:
            return {node: float(t[index[node]]) for node in users}
    raise ConvergenceError(
        f"EigenTrust did not converge in {max_iterations} iterations",
        iterations=max_iterations,
        residual=residual,
        tolerance=tolerance,
    )
