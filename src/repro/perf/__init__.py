"""Micro-benchmark harness for the sparse kernel layer.

:mod:`repro.perf.reference` keeps frozen copies of the seed (pre-kernel)
hot-path implementations; :mod:`repro.perf.bench` times them against the
vectorised kernels and emits ``BENCH_perf.json`` so the speedup is tracked
across PRs.
"""

from repro.perf.bench import run_kernel_bench
from repro.perf.reference import (
    reference_derive_trust,
    reference_eigen_trust,
    reference_fit_expertise,
)

__all__ = [
    "run_kernel_bench",
    "reference_derive_trust",
    "reference_eigen_trust",
    "reference_fit_expertise",
]
