"""Record replay helpers for the incremental engine.

The engine's correctness story is "an incremental update is bitwise equal
to a cold run on the same data".  Checking that honestly needs a *fresh*
community built from the same records -- comparing against the mutated
community itself would let a columns-cache bug hide behind its own cached
state.  :func:`clone_community` rebuilds a replica by replaying every
record in insertion order; :func:`split_rating_stream` additionally
withholds a suffix of ratings so tests, benchmarks and the CLI can feed
them back one batch at a time as the mutation stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.community import (
    Category,
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
    User,
)

__all__ = ["CommunityRecords", "extract_records", "clone_community", "split_rating_stream"]


@dataclass(frozen=True)
class CommunityRecords:
    """Every record of a community, in insertion order per table."""

    users: tuple[User, ...]
    categories: tuple[Category, ...]
    objects: tuple[ReviewedObject, ...]
    reviews: tuple[Review, ...]
    ratings: tuple[ReviewRating, ...]
    trust: tuple[TrustStatement, ...]


def extract_records(community: Community) -> CommunityRecords:
    """Dump a community back into typed records (insertion order)."""
    db = community.database
    return CommunityRecords(
        users=tuple(
            User(user_id=row["user_id"], name=row["name"])
            for row in db.table("users").rows()
        ),
        categories=tuple(
            Category(category_id=row["category_id"], name=row["name"])
            for row in db.table("categories").rows()
        ),
        objects=tuple(
            ReviewedObject(
                object_id=row["object_id"],
                category_id=row["category_id"],
                title=row["title"],
            )
            for row in db.table("objects").rows()
        ),
        reviews=tuple(
            Review(
                review_id=row["review_id"],
                writer_id=row["writer_id"],
                object_id=row["object_id"],
            )
            for row in db.table("reviews").rows()
        ),
        ratings=tuple(
            ReviewRating(
                rater_id=row["rater_id"],
                review_id=row["review_id"],
                value=row["value"],
            )
            for row in db.table("ratings").rows()
        ),
        trust=tuple(
            TrustStatement(truster_id=row["truster_id"], trustee_id=row["trustee_id"])
            for row in db.table("trust").rows()
        ),
    )


def clone_community(community: Community, *, name: str | None = None) -> Community:
    """A fresh community holding the same records, replayed in order.

    The clone shares no state with the original -- its change log starts
    at the replayed record count and its columns cache is cold -- which is
    exactly what a bitwise cold-vs-incremental comparison needs.
    """
    records = extract_records(community)
    return Community.from_records(
        name=name or f"{community.name}_replica",
        users=records.users,
        categories=records.categories,
        objects=records.objects,
        reviews=records.reviews,
        ratings=records.ratings,
        trust=records.trust,
    )


def split_rating_stream(
    community: Community,
    withhold: int,
    *,
    category_id: str | None = None,
    name: str | None = None,
) -> tuple[Community, tuple[ReviewRating, ...]]:
    """Replica with the last ``withhold`` ratings held out, plus the stream.

    ``category_id`` restricts the held-out suffix to ratings of reviews in
    one category, which keeps later incremental updates localised (only
    that category's Step-1 fixed point goes stale).  The returned stream is
    in original insertion order; replaying it via ``add_rating`` restores
    the community record-for-record.
    """
    if withhold < 0:
        raise ValidationError(f"withhold must be >= 0, got {withhold}")
    records = extract_records(community)
    if category_id is not None:
        if category_id not in community.category_ids():
            raise ValidationError(f"unknown category {category_id!r}")
        eligible = [
            idx
            for idx, rating in enumerate(records.ratings)
            if community.review_category(rating.review_id) == category_id
        ]
    else:
        eligible = list(range(len(records.ratings)))
    if withhold > len(eligible):
        raise ValidationError(
            f"cannot withhold {withhold} ratings; only {len(eligible)} eligible"
        )
    held = frozenset(eligible[len(eligible) - withhold :])
    kept = tuple(r for idx, r in enumerate(records.ratings) if idx not in held)
    stream = tuple(records.ratings[idx] for idx in sorted(held))
    replica = Community.from_records(
        name=name or f"{community.name}_base",
        users=records.users,
        categories=records.categories,
        objects=records.objects,
        reviews=records.reviews,
        ratings=kept,
        trust=records.trust,
    )
    return replica, stream
