"""Delta-driven incremental pipeline engine.

The :class:`Engine` subscribes to a community's change log and keeps the
staged artifacts (columns -> E -> A -> T-hat -> propagation scores)
synchronous with the mutating community, recomputing only what each batch
of deltas invalidates.  In exact mode (the default) every update is
bitwise equal to a cold build of the same records -- see
``repro/engine/engine.py`` for the contract and ``repro/trust/derive.py``
for the kernel determinism it rests on.
"""

from repro.engine.engine import (
    Engine,
    EngineArtifacts,
    StageStamps,
    UpdateStats,
    cold_artifacts,
)
from repro.engine.replay import (
    CommunityRecords,
    clone_community,
    extract_records,
    split_rating_stream,
)

__all__ = [
    "Engine",
    "EngineArtifacts",
    "StageStamps",
    "UpdateStats",
    "cold_artifacts",
    "CommunityRecords",
    "clone_community",
    "extract_records",
    "split_rating_stream",
]
