"""The staged incremental engine: columns -> E -> A -> T-hat -> propagation.

:class:`Engine` owns the pipeline's staged artifacts and keeps them in
sync with a mutating :class:`repro.community.Community` by consuming its
:class:`repro.community.ChangeLog`.  Each :meth:`Engine.update` advances a
cursor over the log and recomputes only what the new deltas invalidate:

- **columns** -- the community's own delta-aware cache refreshes appended
  segments in place;
- **E** (Step 1) -- :class:`repro.reputation.IncrementalExpertise`
  re-solves only the categories the deltas touched;
- **A** (Step 2) -- rebuilt from the columnar counts (cheap, array-only);
- **T-hat** (Step 3) -- re-derived only on the changed region
  ``(changed A rows x all) | (all x changed E rows)`` and patched into the
  cached matrix (:meth:`repro.trust.TrustDeriver.derive_region`);
- **propagation** -- reused outright when ``T-hat`` did not move, rerun
  otherwise (optionally warm-started in approximate mode).

The contract, property-tested in ``tests/engine``: in the default exact
mode every update's artifacts are **bitwise equal** to a cold build on a
fresh replica of the same records.  That works because eq. 5 reads exactly
``A[i, :]`` and ``E[j, :]`` per entry, the derive kernel's per-element
reduction order is shape-independent, and the per-category Step-1 solves
are deterministic -- see ``repro/trust/derive.py`` for the kernel notes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.affinity import AffinityConfig, AffinityEstimator
from repro.common.arrays import FloatArray, IntArray
from repro.community import Community
from repro.matrix import UserCategoryMatrix, UserPairMatrix
from repro.propagation import PropagationScores, eigen_trust
from repro.reputation import ExpertiseResult, RiggsConfig
from repro.reputation.estimator import ExpertiseEstimator
from repro.reputation.incremental import IncrementalExpertise
from repro.shard.config import ShardConfig
from repro.shard.matrix import ShardedPairMatrix
from repro.shard.store import ShardStore
from repro.trust import TrustDeriver

__all__ = [
    "Engine",
    "EngineArtifacts",
    "StageStamps",
    "UpdateStats",
    "cold_artifacts",
]


@dataclass(frozen=True)
class StageStamps:
    """Change-log epoch at which each staged artifact was last recomputed.

    A stage that an update *reused* keeps its previous stamp, so
    ``stamps.derived < stamps.columns`` reads as "the cached ``T-hat`` was
    proven still valid at the newer epoch without being touched".
    """

    columns: int
    expertise: int
    affiliation: int
    derived: int
    propagation: int


@dataclass(frozen=True)
class UpdateStats:
    """What one :meth:`Engine.update` actually did."""

    deltas_applied: int
    categories_resolved: int
    categories_skipped: int
    pairs_rederived: int
    pairs_reused: int
    propagation_rerun: bool
    iterations_saved: int


@dataclass(frozen=True)
class EngineArtifacts:
    """The staged pipeline outputs, all consistent at ``stamps``.

    ``derived`` is a :class:`repro.shard.ShardedPairMatrix` when the
    engine runs with a :class:`repro.shard.ShardConfig`, an in-memory
    :class:`repro.matrix.UserPairMatrix` otherwise; the two compare
    bitwise against each other, so :meth:`differences` works across
    backends.
    """

    expertise_result: ExpertiseResult
    affiliation: UserCategoryMatrix
    derived: UserPairMatrix | ShardedPairMatrix
    scores: PropagationScores
    stamps: StageStamps

    @property
    def expertise(self) -> UserCategoryMatrix:
        return self.expertise_result.expertise

    def differences(self, other: "EngineArtifacts") -> list[str]:
        """Names of artifacts that are not bitwise identical to ``other``'s."""
        diffs: list[str] = []
        if self.expertise != other.expertise:
            diffs.append("expertise")
        if self.affiliation != other.affiliation:
            diffs.append("affiliation")
        if self.derived != other.derived:
            diffs.append("derived")
        if self.scores.users != other.scores.users or not np.array_equal(
            self.scores.scores_array(), other.scores.scores_array()
        ):
            diffs.append("scores")
        return diffs

    def bitwise_equal(self, other: "EngineArtifacts") -> bool:
        """True when E, A, T-hat and the propagation scores all match."""
        return not self.differences(other)


def _changed_rows(old: FloatArray, new: FloatArray) -> IntArray:
    """Row positions of ``new`` that differ from ``old``, zero-padded.

    ``old`` may be smaller on either axis (append-only growth); absent
    entries compare as 0, matching what a user/category with no activity
    contributes.
    """
    if old.shape == new.shape:
        padded = old
    else:
        padded = np.zeros_like(new)
        padded[: old.shape[0], : old.shape[1]] = old
    return np.nonzero((padded != new).any(axis=1))[0].astype(np.int64)


class Engine:
    """Keeps the full pipeline synchronous with a mutating community.

    Usage::

        engine = Engine(community)
        artifacts = engine.update()      # cold build
        community.add_rating(...)        # mutators log deltas
        artifacts = engine.update()      # incremental: only what changed

    Parameters
    ----------
    exact:
        ``True`` (default): every update is bitwise equal to a cold build
        -- dirty Step-1 categories are solved cold and propagation reruns
        cold whenever ``T-hat`` moved.  ``False``: Step-1 and propagation
        warm-start from the previous state, trading bitwise identity (the
        results still agree to solver tolerance) for fewer sweeps.
    shard_config:
        When set, ``T-hat`` lives in a :class:`repro.shard.ShardedPairMatrix`
        backed by this config's store: cold builds stream shard by shard
        (:meth:`repro.trust.TrustDeriver.derive_sharded`), propagation
        sweeps the shards out of core, and incremental updates patch only
        the shards a delta's derive region touches -- in place, without
        materialising the whole matrix.  Axis growth (new users or
        categories) falls back to a full sharded re-derive.
    compact_log:
        ``True`` (default): after each update the engine compacts the
        community's change log up to the epoch it just consumed -- its
        own subscribers (the columns cache and the Step-1 tracker) are
        guaranteed caught up, so a long rating stream does not accumulate
        deltas without bound.  Turn off when other consumers hold their
        own cursors on the same log.
    """

    def __init__(
        self,
        community: Community,
        *,
        riggs_config: RiggsConfig | None = None,
        affinity_config: AffinityConfig | None = None,
        deriver: TrustDeriver | None = None,
        unrated_policy: str = "exclude",
        alpha: float = 0.15,
        tolerance: float = 1e-10,
        max_iterations: int = 1000,
        pretrust: dict[str, float] | None = None,
        exact: bool = True,
        shard_config: ShardConfig | None = None,
        compact_log: bool = True,
    ) -> None:
        self._community = community
        self._affinity = AffinityEstimator(affinity_config)
        self._deriver = deriver or TrustDeriver()
        self._alpha = alpha
        self._tolerance = tolerance
        self._max_iterations = max_iterations
        self._pretrust = pretrust
        self._exact = exact
        self._shard_config = shard_config
        self._shard_store: ShardStore | None = (
            shard_config.make_store() if shard_config is not None else None
        )
        self._compact_log = compact_log
        self._tracker = IncrementalExpertise(
            community,
            riggs_config,
            unrated_policy=unrated_policy,
            warm_start=not exact,
        )
        self._cursor = 0
        self._artifacts: EngineArtifacts | None = None
        self._last_stats: UpdateStats | None = None

    # ------------------------------------------------------------------ status

    @property
    def community(self) -> Community:
        return self._community

    @property
    def artifacts(self) -> EngineArtifacts | None:
        """The artifacts of the last :meth:`update` (``None`` before any)."""
        return self._artifacts

    @property
    def last_stats(self) -> UpdateStats | None:
        """What the last :meth:`update` recomputed vs reused."""
        return self._last_stats

    # ------------------------------------------------------------------ update

    def update(self) -> EngineArtifacts:
        """Bring every staged artifact up to the community's current epoch."""
        log = self._community.change_log
        epoch = log.epoch
        deltas_applied = epoch - self._cursor
        with obs.span("engine.update", epoch=epoch, deltas=deltas_applied):
            obs.add("engine.deltas_applied", deltas_applied)
            self._cursor = epoch

            self._community.columns()  # delta-aware refresh
            expertise_result = self._tracker.refresh()
            resolved = len(self._tracker.last_resolved)
            skipped = len(expertise_result.expertise.categories) - resolved
            affiliation = self._affinity.fit(self._community)

            previous = self._artifacts
            if previous is None:
                artifacts, stats = self._cold_stages(
                    expertise_result, affiliation, epoch, deltas_applied
                )
            else:
                artifacts, stats = self._incremental_stages(
                    previous, expertise_result, affiliation, epoch, deltas_applied
                )
            stats = replace(
                stats, categories_resolved=resolved, categories_skipped=skipped
            )
            obs.add("engine.derive.pairs_rederived", stats.pairs_rederived)
            obs.add("engine.derive.pairs_reused", stats.pairs_reused)
            obs.add("engine.propagation.iterations_saved", stats.iterations_saved)
            self._artifacts = artifacts
            self._last_stats = stats
            if self._compact_log:
                # every engine subscriber (columns cache, Step-1 tracker,
                # our own cursor) is now at `epoch`: the consumed prefix
                # can be forgotten
                dropped = log.compact(epoch)
                obs.add("engine.log.deltas_compacted", dropped)
            return artifacts

    # ------------------------------------------------------------------ stages

    def _cold_stages(
        self,
        expertise_result: ExpertiseResult,
        affiliation: UserCategoryMatrix,
        epoch: int,
        deltas_applied: int,
    ) -> tuple[EngineArtifacts, UpdateStats]:
        derived = self._derive_full(affiliation, expertise_result.expertise)
        scores = self._propagate(derived, initial=None)
        stamps = StageStamps(
            columns=epoch,
            expertise=epoch,
            affiliation=epoch,
            derived=epoch,
            propagation=epoch,
        )
        stats = UpdateStats(
            deltas_applied=deltas_applied,
            categories_resolved=0,
            categories_skipped=0,
            pairs_rederived=derived.num_entries(),
            pairs_reused=0,
            propagation_rerun=True,
            iterations_saved=0,
        )
        return EngineArtifacts(expertise_result, affiliation, derived, scores, stamps), stats

    def _incremental_stages(
        self,
        previous: EngineArtifacts,
        expertise_result: ExpertiseResult,
        affiliation: UserCategoryMatrix,
        epoch: int,
        deltas_applied: int,
    ) -> tuple[EngineArtifacts, UpdateStats]:
        expertise = expertise_result.expertise
        old_a = previous.affiliation.values_view()
        new_a = affiliation.values_view()
        grew_categories = old_a.shape[1] != new_a.shape[1]
        grew_users = old_a.shape[0] != new_a.shape[0]

        sharded = self._shard_config is not None
        if grew_categories or (sharded and grew_users):
            # a new category extends every reduction in eq. 5 (and the
            # sharded backend's in-place patch cannot grow its axis);
            # re-derive in full rather than reason about padded
            # accumulation orders
            derived: UserPairMatrix | ShardedPairMatrix = self._derive_full(
                affiliation, expertise
            )
            derived_changed = True
            pairs_rederived = derived.num_entries()
            pairs_reused = 0
        else:
            rows = _changed_rows(old_a, new_a)
            cols = _changed_rows(
                previous.expertise.values_view(), expertise.values_view()
            )
            n = len(affiliation.users)
            if rows.size == 0 and cols.size == 0 and not grew_users:
                derived = previous.derived
                derived_changed = False
                pairs_rederived = 0
                pairs_reused = derived.num_entries()
            elif (rows.size + cols.size) * 2 >= n:
                # the changed region covers most of the matrix: a plain full
                # derive is cheaper than region + patch and equally bitwise
                derived = self._derive_full(affiliation, expertise)
                derived_changed = True
                pairs_rederived = derived.num_entries()
                pairs_reused = 0
            elif isinstance(previous.derived, ShardedPairMatrix):
                derived, pairs_reused = self._patched_derive_sharded(
                    previous.derived, affiliation, expertise, rows=rows, cols=cols
                )
                derived_changed = True
                pairs_rederived = derived.num_entries() - pairs_reused
            else:
                derived, pairs_reused = self._patched_derive(
                    previous.derived, affiliation, expertise, rows=rows, cols=cols
                )
                derived_changed = True
                pairs_rederived = derived.num_entries() - pairs_reused

        prev_iterations = previous.scores.iterations or 0
        if not derived_changed:
            scores = previous.scores
            propagation_rerun = False
            iterations_saved = prev_iterations
        else:
            initial: FloatArray | None = None
            if not self._exact:
                prev_scores = previous.scores.scores_array()
                initial = np.zeros(len(affiliation.users))
                initial[: prev_scores.size] = prev_scores
            scores = self._propagate(derived, initial=initial)
            propagation_rerun = True
            iterations_saved = (
                max(0, prev_iterations - (scores.iterations or 0))
                if initial is not None
                else 0
            )

        stamps = StageStamps(
            columns=epoch,
            expertise=epoch
            if self._tracker.last_resolved or grew_users or grew_categories
            else previous.stamps.expertise,
            affiliation=epoch,
            derived=epoch if derived_changed else previous.stamps.derived,
            propagation=epoch if propagation_rerun else previous.stamps.propagation,
        )
        stats = UpdateStats(
            deltas_applied=deltas_applied,
            categories_resolved=0,
            categories_skipped=0,
            pairs_rederived=pairs_rederived,
            pairs_reused=pairs_reused,
            propagation_rerun=propagation_rerun,
            iterations_saved=iterations_saved,
        )
        return EngineArtifacts(expertise_result, affiliation, derived, scores, stamps), stats

    def _patched_derive(
        self,
        previous_derived: UserPairMatrix,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
        *,
        rows: IntArray,
        cols: IntArray,
    ) -> tuple[UserPairMatrix, int]:
        """Recompute the changed region and merge it into the cached entries.

        Delegates the merge to :meth:`repro.matrix.UserPairMatrix.patched`,
        which assembles the result with one O(nnz) masked scatter instead of
        the O(nnz log nnz) consolidation sort.  Returns the patched matrix
        and the number of kept (reused) entries.
        """
        region = self._deriver.derive_region(
            affiliation, expertise, rows=rows, cols=cols
        )
        return previous_derived.patched(
            affiliation.users, region, rows=rows, cols=cols
        )

    def _patched_derive_sharded(
        self,
        previous_derived: ShardedPairMatrix,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
        *,
        rows: IntArray,
        cols: IntArray,
    ) -> tuple[ShardedPairMatrix, int]:
        """Recompute the changed region and patch it into the shards in place.

        Only the shards the region touches are rewritten (each through the
        same O(nnz) masked scatter as the in-memory path, so the result
        stays bitwise); untouched shards -- possibly still on disk -- are
        not read at all.
        """
        region = self._deriver.derive_region(
            affiliation, expertise, rows=rows, cols=cols
        )
        kept, touched = previous_derived.patch_with(region, rows=rows, cols=cols)
        obs.add("engine.shard.shards_patched", touched)
        obs.add(
            "engine.shard.shards_untouched", previous_derived.num_shards - touched
        )
        return previous_derived, kept

    def _derive_full(
        self, affiliation: UserCategoryMatrix, expertise: UserCategoryMatrix
    ) -> UserPairMatrix | ShardedPairMatrix:
        """A full ``T-hat`` build on the configured backend."""
        if self._shard_config is None:
            return self._deriver.derive(affiliation, expertise)
        return self._deriver.derive_sharded(
            affiliation,
            expertise,
            layout=self._shard_config.layout_for(len(affiliation.users)),
            store=self._shard_store,
            spill_bytes=self._shard_config.spill_bytes,
        )

    def _propagate(
        self, derived: UserPairMatrix | ShardedPairMatrix, *, initial: FloatArray | None
    ) -> PropagationScores:
        return eigen_trust(
            derived,
            pretrust=self._pretrust,
            alpha=self._alpha,
            tolerance=self._tolerance,
            max_iterations=self._max_iterations,
            initial=initial,
        )


def cold_artifacts(
    community: Community,
    *,
    riggs_config: RiggsConfig | None = None,
    affinity_config: AffinityConfig | None = None,
    deriver: TrustDeriver | None = None,
    unrated_policy: str = "exclude",
    alpha: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    pretrust: dict[str, float] | None = None,
) -> EngineArtifacts:
    """One cold, cache-free pipeline pass -- the engine's reference output.

    Deliberately built from the batch estimators rather than the engine's
    own machinery, so a bitwise comparison against :meth:`Engine.update`
    also re-proves the per-category/batched Step-1 equivalence on the
    community at hand.
    """
    expertise_result = ExpertiseEstimator(
        riggs_config, unrated_policy=unrated_policy
    ).fit(community)
    affiliation = AffinityEstimator(affinity_config).fit(community)
    trust_deriver = deriver or TrustDeriver()
    derived = trust_deriver.derive(affiliation, expertise_result.expertise)
    scores = eigen_trust(
        derived,
        pretrust=pretrust,
        alpha=alpha,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    epoch = community.change_log.epoch
    stamps = StageStamps(
        columns=epoch,
        expertise=epoch,
        affiliation=epoch,
        derived=epoch,
        propagation=epoch,
    )
    return EngineArtifacts(expertise_result, affiliation, derived, scores, stamps)
