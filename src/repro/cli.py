"""Command-line interface: ``repro-trust`` / ``python -m repro``.

Subcommands
-----------
- ``generate`` -- write a synthetic community to extended-Epinions files;
- ``stats`` -- describe a dataset (synthetic or loaded from files);
- ``derive`` -- run the framework on an Epinions-format directory and
  write the derived web of trust as ``source|target|value`` lines;
- ``update`` -- demonstrate the delta-driven incremental engine: withhold
  a suffix of ratings, replay them in batches through
  :class:`repro.engine.Engine`, print what each update recomputed vs
  reused, and verify the final state bitwise against a cold build;
- ``shard`` -- build / inspect / verify a sharded artifact store
  (:mod:`repro.shard.cli`);
- ``table2`` / ``table3`` / ``fig3`` / ``table4`` / ``score-gap`` /
  ``ablations`` / ``propagation`` -- reproduce one experiment;
- ``all`` -- run every experiment and print the full report.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.datasets import (
    dataset_stats,
    generate_community,
    load_epinions_community,
    write_epinions_files,
)
from repro.experiments import (
    EXPERIMENT_SEED,
    paper_profile,
    render_coverage,
    render_fig3,
    render_future_trust,
    render_propagation_comparison,
    render_score_gap,
    render_table2,
    render_table3,
    render_table4,
    run_coverage,
    run_fig3,
    run_future_trust,
    run_pipeline,
    run_propagation_comparison,
    run_score_gap,
    run_table2,
    run_table3,
    run_table4,
)
from repro.experiments.ablations import render_ablations, run_ablations
from repro.reporting import render_table
from repro.shard.cli import add_shard_parser, run_shard

__all__ = ["main", "build_parser"]

_EXPERIMENT_NAMES = (
    "table2",
    "table3",
    "fig3",
    "table4",
    "score-gap",
    "ablations",
    "propagation",
    "coverage",
    "future-trust",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-trust",
        description="Derive a web of trust from rating data (Kim et al., ICDEW 2008).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic community")
    _add_dataset_args(generate)
    generate.add_argument("--out", required=True, help="output directory (Epinions format)")

    stats = sub.add_parser("stats", help="describe a dataset")
    _add_source_args(stats)

    derive = sub.add_parser("derive", help="derive a web of trust from rating data")
    _add_source_args(derive)
    derive.add_argument("--out", required=True, help="output file (source|target|value)")
    derive.add_argument(
        "--min-trust", type=float, default=0.0, help="drop derived values <= this"
    )

    update = sub.add_parser(
        "update", help="replay a rating stream through the incremental engine"
    )
    _add_source_args(update)
    update.add_argument(
        "--stream", type=int, default=50, help="ratings to withhold and replay"
    )
    update.add_argument(
        "--batch", type=int, default=10, help="ratings applied per engine update"
    )
    update.add_argument(
        "--skip-verify",
        action="store_true",
        help="skip the final bitwise comparison against a cold build",
    )

    add_shard_parser(sub)

    for name in _EXPERIMENT_NAMES:
        experiment = sub.add_parser(name, help=f"reproduce {name}")
        _add_dataset_args(experiment)

    report = sub.add_parser("report", help="write the full markdown report")
    _add_source_args(report)
    report.add_argument("--out", required=True, help="output markdown file")
    return parser


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=1200, help="community size")
    parser.add_argument("--seed", type=int, default=EXPERIMENT_SEED, help="random seed")
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="record a repro.obs trace of the run and write it as JSON "
        "(render with `python -m repro.obs.report PATH`)",
    )


def _add_source_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dir", help="load an Epinions-format directory instead")
    _add_dataset_args(parser)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    trace_path: str | None = getattr(args, "trace", None)
    if trace_path is None:
        return _run(args)

    recorder = obs.Recorder()
    with obs.use_recorder(recorder):
        code = _run(args)
    recorder.write(trace_path)
    print(f"wrote trace to {trace_path}", file=sys.stderr)
    return code


def _run(args: argparse.Namespace) -> int:
    out = sys.stdout

    if args.command == "generate":
        dataset = generate_community(paper_profile(args.users), args.seed)
        write_epinions_files(dataset.community, args.out)
        print(f"wrote {dataset.community.num_reviews()} reviews, "
              f"{dataset.community.num_ratings()} ratings, "
              f"{dataset.community.num_trust_edges()} trust edges to {args.out}", file=out)
        return 0

    if args.command == "stats":
        community = _load_community(args)
        stats = dataset_stats(community)
        rows = [
            ["users", stats.num_users],
            ["categories", stats.num_categories],
            ["objects", stats.num_objects],
            ["reviews", stats.num_reviews],
            ["ratings", stats.num_ratings],
            ["trust edges", stats.num_trust_edges],
            ["rating density (R)", f"{stats.rating_density:.5f}"],
            ["trust density (T)", f"{stats.trust_density:.5f}"],
            ["ratings per rated review", f"{stats.ratings_per_review:.2f}"],
        ]
        print(render_table(["statistic", "value"], rows, title="Dataset statistics"), file=out)
        return 0

    if args.command == "derive":
        community = _load_community(args)
        artifacts = run_pipeline(community=community)
        count = 0
        with open(args.out, "w", encoding="utf-8") as f:
            for source, target, value in artifacts.derived.entries():
                if value > args.min_trust:
                    f.write(f"{source}|{target}|{value:.6f}\n")
                    count += 1
        print(f"wrote {count} derived trust edges to {args.out}", file=out)
        return 0

    if args.command == "update":
        return _run_update(args, out)

    if args.command == "shard":
        return run_shard(args, out)

    if args.command == "report":
        from repro.experiments import build_report

        if args.dir:
            artifacts = run_pipeline(community=load_epinions_community(args.dir))
        else:
            artifacts = run_pipeline(paper_profile(args.users), args.seed)
        report_text = build_report(artifacts)
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(report_text)
        print(f"wrote report to {args.out}", file=out)
        return 0

    # experiment commands share one pipeline
    artifacts = run_pipeline(paper_profile(args.users), args.seed)
    sections: list[str] = []
    if args.command in ("table2", "all"):
        sections.append(render_table2(run_table2(artifacts)))
    if args.command in ("table3", "all"):
        sections.append(render_table3(run_table3(artifacts)))
    if args.command in ("fig3", "all"):
        sections.append(render_fig3(run_fig3(artifacts)))
    if args.command in ("table4", "all"):
        sections.append(render_table4(run_table4(artifacts)))
    if args.command in ("score-gap", "all"):
        sections.append(render_score_gap(run_score_gap(artifacts)))
    if args.command in ("ablations", "all"):
        sections.append(render_ablations(run_ablations(artifacts.dataset)))
    if args.command in ("coverage", "all"):
        sections.append(render_coverage(run_coverage(artifacts)))
    if args.command in ("future-trust", "all"):
        sections.append(render_future_trust(run_future_trust(artifacts)))
    if args.command in ("propagation", "all"):
        sections.append(
            render_propagation_comparison(run_propagation_comparison(artifacts))
        )
    print("\n\n".join(sections), file=out)
    return 0


def _run_update(args: argparse.Namespace, out) -> int:
    from repro.engine import Engine, clone_community, cold_artifacts, split_rating_stream

    community = _load_community(args)
    base, stream = split_rating_stream(community, args.stream)
    engine = Engine(base)
    engine.update()
    print(
        f"cold build at epoch {base.change_log.epoch}: "
        f"{engine.artifacts.derived.num_entries()} derived pairs",
        file=out,
    )

    rows = []
    for start in range(0, len(stream), max(1, args.batch)):
        for rating in stream[start : start + max(1, args.batch)]:
            base.add_rating(rating)
        engine.update()
        stats = engine.last_stats
        total_pairs = stats.pairs_rederived + stats.pairs_reused
        reuse = f"{stats.pairs_reused / total_pairs:.1%}" if total_pairs else "-"
        rows.append(
            [
                base.change_log.epoch,
                stats.deltas_applied,
                f"{stats.categories_resolved}/{stats.categories_resolved + stats.categories_skipped}",
                stats.pairs_rederived,
                stats.pairs_reused,
                reuse,
                "yes" if stats.propagation_rerun else "reused",
            ]
        )
    print(
        render_table(
            ["epoch", "deltas", "categories", "rederived", "reused", "reuse", "propagation"],
            rows,
            title="Incremental updates",
        ),
        file=out,
    )

    if not args.skip_verify:
        cold = cold_artifacts(clone_community(base))
        diffs = engine.artifacts.differences(cold)
        if diffs:
            print(f"BITWISE MISMATCH vs cold build: {', '.join(diffs)}", file=out)
            return 1
        print("final state verified bitwise against a cold build", file=out)
    return 0


def _load_community(args: argparse.Namespace):
    if args.dir:
        return load_epinions_community(args.dir)
    return generate_community(paper_profile(args.users), args.seed).community


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
