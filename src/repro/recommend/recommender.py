"""Trust-aware review recommendation and rating prediction.

Built directly on the paper's artefacts: review quality estimates from
Step 1 and the derived trust matrix from Step 3.

Scoring model
-------------
For a reader *u* and a review *r* written by *w* in category *c*:

- the **recommendation score** is ``q(r) * (blend + (1 - blend) * T̂(u, w))``
  -- quality gated by how much *u* (derivedly) trusts the writer, so an
  excellent review by an untrusted-topic writer ranks below a good review
  by a trusted expert;
- the **predicted helpfulness rating** interpolates between the review's
  estimated quality and the writer's expertise in ``c``, anchored by the
  community mean when evidence is thin -- quality is the dominant term
  because helpfulness ratings observe quality (§III.A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.common.validation import require_fraction, require_positive
from repro.community import Community
from repro.experiments.pipeline import PipelineArtifacts

__all__ = ["Recommendation", "TrustAwareRecommender"]


@dataclass(frozen=True)
class Recommendation:
    """One ranked review suggestion."""

    review_id: str
    writer_id: str
    category_id: str
    score: float
    quality: float
    trust_in_writer: float


class TrustAwareRecommender:
    """Ranks reviews and predicts helpfulness ratings for community users.

    Parameters
    ----------
    artifacts:
        A pipeline run (the recommender uses its community, review
        qualities and derived trust matrix).
    blend:
        Trust gating floor in ``[0, 1]``: ``1.0`` ignores trust entirely
        (pure quality ranking), ``0.0`` zeroes out reviews by writers the
        user has no derived trust in.
    """

    def __init__(self, artifacts: PipelineArtifacts, *, blend: float = 0.3):
        require_fraction("blend", blend)
        self._artifacts = artifacts
        self._blend = blend
        self._community: Community = artifacts.community
        self._quality: dict[str, float] = {}
        for category_id in self._community.category_ids():
            self._quality.update(artifacts.expertise_result.review_quality(category_id))
        values = list(self._quality.values())
        self._mean_quality = sum(values) / len(values) if values else 0.6

    # ------------------------------------------------------------------ scoring

    def trust_in(self, user_id: str, writer_id: str) -> float:
        """Derived degree of trust of ``user_id`` in ``writer_id``."""
        return self._artifacts.derived.get(user_id, writer_id)

    def review_quality(self, review_id: str) -> float:
        """Estimated quality of a review (community mean when unrated)."""
        return self._quality.get(review_id, self._mean_quality)

    def score(self, user_id: str, review_id: str) -> float:
        """Recommendation score of ``review_id`` for ``user_id``."""
        writer = self._community.review_writer(review_id)
        gate = self._blend + (1.0 - self._blend) * self.trust_in(user_id, writer)
        return self.review_quality(review_id) * gate

    def predict_rating(self, user_id: str, review_id: str) -> float:
        """Predict the helpfulness rating ``user_id`` would give.

        A convex combination of the review's estimated quality (dominant),
        the writer's expertise in the review's category (regularises
        thin-evidence qualities) and the community mean (anchor).  The
        result is a continuous value in ``[0, 1]``; quantise against
        :data:`repro.community.HELPFULNESS_SCALE` if a discrete rating is
        needed.
        """
        if not self._community.has_user(user_id):
            raise ValidationError(f"unknown user {user_id!r}")
        writer = self._community.review_writer(review_id)
        category = self._community.review_category(review_id)
        quality = self.review_quality(review_id)
        expertise = self._artifacts.expertise.get(writer, category)
        prediction = 0.7 * quality + 0.15 * expertise + 0.15 * self._mean_quality
        return float(min(1.0, max(0.0, prediction)))

    # -------------------------------------------------------------- recommending

    def recommend(
        self,
        user_id: str,
        *,
        category_id: str | None = None,
        k: int = 10,
        exclude_rated: bool = True,
    ) -> list[Recommendation]:
        """Top-``k`` reviews for ``user_id`` by trust-gated quality.

        The user's own reviews are always excluded; reviews they already
        rated are excluded unless ``exclude_rated=False``.
        """
        require_positive("k", k)
        if not self._community.has_user(user_id):
            raise ValidationError(f"unknown user {user_id!r}")

        if category_id is None:
            categories = self._community.category_ids()
        else:
            categories = [category_id]
        already_rated = (
            {review_id for review_id, _ in self._community.ratings_by_rater(user_id)}
            if exclude_rated
            else set()
        )

        candidates: list[Recommendation] = []
        for cid in categories:
            for review in self._community.reviews_in_category(cid):
                if review.writer_id == user_id or review.review_id in already_rated:
                    continue
                trust = self.trust_in(user_id, review.writer_id)
                quality = self.review_quality(review.review_id)
                gate = self._blend + (1.0 - self._blend) * trust
                candidates.append(
                    Recommendation(
                        review_id=review.review_id,
                        writer_id=review.writer_id,
                        category_id=cid,
                        score=quality * gate,
                        quality=quality,
                        trust_in_writer=trust,
                    )
                )
        candidates.sort(key=lambda rec: -rec.score)
        return candidates[:k]
