"""Evaluation of rating predictions against held-out ratings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.community import ReviewRating
from repro.recommend.recommender import TrustAwareRecommender

__all__ = ["PredictionReport", "evaluate_predictions"]


@dataclass(frozen=True)
class PredictionReport:
    """Errors of the trust-aware predictor vs two baselines.

    ``model_*`` uses :meth:`TrustAwareRecommender.predict_rating`;
    ``global_mean_*`` predicts the training community's mean rating for
    everything; ``writer_mean_*`` predicts each writer's mean received
    rating (falls back to the global mean for unseen writers).
    """

    count: int
    model_mae: float
    model_rmse: float
    global_mean_mae: float
    global_mean_rmse: float
    writer_mean_mae: float
    writer_mean_rmse: float

    @property
    def beats_global_mean(self) -> bool:
        """Whether the trust-aware predictor beats the global-mean baseline."""
        return self.model_mae < self.global_mean_mae


def evaluate_predictions(
    recommender: TrustAwareRecommender,
    held_out: list[ReviewRating],
) -> PredictionReport:
    """Score predictions on held-out ratings against both baselines.

    Held-out ratings referring to reviews unknown to the recommender's
    community are rejected (the split helper never produces them).
    """
    if not held_out:
        raise ValidationError("held_out must be non-empty")

    community = recommender._community
    train_values = [rating.value for rating in community.iter_ratings()]
    global_mean = float(np.mean(train_values)) if train_values else 0.6

    writer_sums: dict[str, list[float]] = {}
    for rating in community.iter_ratings():
        writer = community.review_writer(rating.review_id)
        writer_sums.setdefault(writer, []).append(rating.value)
    writer_means = {w: float(np.mean(vs)) for w, vs in writer_sums.items()}

    actual = np.empty(len(held_out))
    model = np.empty(len(held_out))
    constant = np.full(len(held_out), global_mean)
    writer_baseline = np.empty(len(held_out))
    for i, rating in enumerate(held_out):
        actual[i] = rating.value
        model[i] = recommender.predict_rating(rating.rater_id, rating.review_id)
        writer = community.review_writer(rating.review_id)
        writer_baseline[i] = writer_means.get(writer, global_mean)

    return PredictionReport(
        count=len(held_out),
        model_mae=_mae(model, actual),
        model_rmse=_rmse(model, actual),
        global_mean_mae=_mae(constant, actual),
        global_mean_rmse=_rmse(constant, actual),
        writer_mean_mae=_mae(writer_baseline, actual),
        writer_mean_rmse=_rmse(writer_baseline, actual),
    )


def _mae(predicted: np.ndarray, actual: np.ndarray) -> float:
    return float(np.mean(np.abs(predicted - actual)))


def _rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))
