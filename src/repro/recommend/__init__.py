"""Trust-aware recommendation: the application the paper motivates.

The paper's introduction argues the derived web of trust lets users
"collect reliable information from trustworthy people" in communities
without explicit trust features.  This package closes that loop:

- :class:`TrustAwareRecommender` ranks unread reviews for a user by
  combining estimated review quality with the user's *derived* trust in
  each writer, and predicts the helpfulness rating the user would give;
- :func:`evaluate_predictions` scores those predictions against held-out
  ratings (MAE / RMSE) next to quality-only and global-mean baselines.
"""

from repro.recommend.evaluate import PredictionReport, evaluate_predictions
from repro.recommend.recommender import Recommendation, TrustAwareRecommender

__all__ = [
    "TrustAwareRecommender",
    "Recommendation",
    "evaluate_predictions",
    "PredictionReport",
]
