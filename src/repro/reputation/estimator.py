"""Orchestration of Step 1 over a whole community.

:class:`ExpertiseEstimator` runs the per-category fixed point and the
writer aggregation for every category of a community and assembles:

- the paper's **Users_Category Expertise matrix** ``E`` (writer reputation
  per category, eq. 3) -- the direct input to Step 3;
- a companion **rater-reputation matrix** (eq. 2), which the paper's
  Table 2 evaluates;
- per-category review qualities and convergence diagnostics.

By default the whole Step 1 runs on the community's columnar view: one
:func:`repro.reputation.riggs.solve_all_categories` call sweeps every
category's fixed point simultaneously and both matrices are scattered
straight from the slot arrays -- no per-category Python materialisation.
The per-category fixed points stay independent, so a thread pool
(``n_jobs > 1``) remains available for very large communities, as does
serial warm-start chaining (``reuse_warm_start=True``); both fall back to
per-category :func:`repro.reputation.riggs.solve_category` calls.
"""

# repro: hot-path

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro.common.validation import require_positive
from repro.community import Community
from repro.matrix import LabelIndex, UserCategoryMatrix
from repro.reputation.riggs import (
    CategoryFixedPoint,
    LazyFixedPoints,
    RiggsConfig,
    solve_all_categories,
    solve_category,
)
from repro.reputation.writer import writer_reputation_matrix, writer_reputations

__all__ = ["ExpertiseEstimator", "ExpertiseResult"]


@dataclass(frozen=True)
class ExpertiseResult:
    """Everything Step 1 produces for one community.

    Attributes
    ----------
    expertise:
        ``E`` -- writer reputation per (user, category); zero where the user
        wrote nothing (or nothing rated) in the category.
    rater_reputation:
        Rater reputation per (user, category); zero where the user rated
        nothing in the category.
    fixed_points:
        The raw per-category solver output (qualities, reputations,
        iteration counts).  A mapping; the batched path supplies a lazy
        view that materialises each category's dicts on first access.
    """

    expertise: UserCategoryMatrix
    rater_reputation: UserCategoryMatrix
    fixed_points: Mapping[str, CategoryFixedPoint]

    def review_quality(self, category_id: str) -> dict[str, float]:
        """Converged review qualities for one category."""
        return dict(self.fixed_points[category_id].review_quality)

    def iterations(self) -> dict[str, int]:
        """Solver sweeps needed per category."""
        return {c: fp.iterations for c, fp in self.fixed_points.items()}


class ExpertiseEstimator:
    """Computes Step 1 (eqs. 1-3) for every category of a community.

    Parameters
    ----------
    config:
        Fixed-point configuration shared by all categories.
    unrated_policy:
        Passed to :func:`repro.reputation.writer.writer_reputations`.
    n_jobs:
        Number of worker threads for the per-category solves.  The default
        ``1`` uses the batched multi-category solver (fastest); categories
        are independent fixed points, so any value is numerically safe.
    reuse_warm_start:
        When ``True`` (serial mode only), each category's solve is seeded
        with the rater reputations converged so far -- raters active in
        several categories start near their typical reputation, cutting
        sweeps on overlapping communities.  The fixed point is the same up
        to solver tolerance.

    Example
    -------
    >>> estimator = ExpertiseEstimator()
    >>> result = estimator.fit(community)
    >>> result.expertise.get("u000001", "c000000")
    0.7...
    """

    def __init__(
        self,
        config: RiggsConfig | None = None,
        *,
        unrated_policy: str = "exclude",
        n_jobs: int = 1,
        reuse_warm_start: bool = False,
    ) -> None:
        require_positive("n_jobs", n_jobs)
        self.config = config or RiggsConfig()
        self.unrated_policy = unrated_policy
        self.n_jobs = n_jobs
        self.reuse_warm_start = reuse_warm_start

    def fit(
        self,
        community: Community,
        *,
        warm_start: Mapping[str, float] | None = None,
    ) -> ExpertiseResult:
        """Run Step 1 on ``community`` and return all reputation artefacts.

        Parameters
        ----------
        warm_start:
            Optional ``{rater_id: reputation}`` seed for every category's
            solve (e.g. a previous fit on a slightly older community).
        """
        if self.n_jobs == 1 and not self.reuse_warm_start:
            with obs.span("step1.fit", mode="batched", users=community.num_users()):
                return self._fit_batched(community, warm_start)

        with obs.span(
            "step1.fit",
            mode="per-category",
            users=community.num_users(),
            n_jobs=self.n_jobs,
        ):
            return self._fit_per_category(community, warm_start)

    def _fit_per_category(
        self,
        community: Community,
        warm_start: Mapping[str, float] | None,
    ) -> ExpertiseResult:
        """Step 1 via per-category solves (thread pool / warm-start modes)."""
        users = LabelIndex(community.user_ids())
        categories = LabelIndex(community.category_ids())
        expertise = UserCategoryMatrix(users, categories)
        rater_rep = UserCategoryMatrix(users, categories)

        fixed_points = self._solve_all(community, categories, warm_start)

        for category_id, fixed_point in fixed_points.items():
            if fixed_point.rater_reputation:
                rater_rep.set_column(
                    category_id,
                    fixed_point.rater_reputation.keys(),
                    np.fromiter(
                        fixed_point.rater_reputation.values(),
                        dtype=np.float64,
                        count=len(fixed_point.rater_reputation),
                    ),
                )

            review_writers = {
                review.review_id: review.writer_id
                for review in community.reviews_in_category(category_id)
            }
            writers = writer_reputations(
                review_writers,
                fixed_point.review_quality,
                experience_discount_enabled=self.config.experience_discount_enabled,
                unrated_policy=self.unrated_policy,
            )
            if writers:
                expertise.set_column(
                    category_id,
                    writers.keys(),
                    np.fromiter(writers.values(), dtype=np.float64, count=len(writers)),
                )

        return ExpertiseResult(
            expertise=expertise, rater_reputation=rater_rep, fixed_points=fixed_points
        )

    def _fit_batched(
        self,
        community: Community,
        warm_start: Mapping[str, float] | None,
    ) -> ExpertiseResult:
        """Step 1 on the columnar plane: one batched solve, array assembly.

        Numerically identical to the per-category path -- the batched
        solver's sweeps are bitwise equivalent to :func:`solve_category`
        and both matrices are scattered from the same slot arrays.
        """
        columns = community.columns()
        users = columns.users
        categories = columns.categories
        batch = solve_all_categories(columns, self.config, warm_start=warm_start)

        rater_rep = UserCategoryMatrix(users, categories)
        rater_rep.set_entries(
            batch.rater_slot_user, batch.rater_slot_category_idx, batch.reputation
        )
        expertise = UserCategoryMatrix(
            users,
            categories,
            writer_reputation_matrix(
                columns.review_writer_idx,
                columns.review_category_idx,
                len(users),
                len(categories),
                batch.rated_review_idx,
                batch.quality,
                experience_discount_enabled=self.config.experience_discount_enabled,
                unrated_policy=self.unrated_policy,
            ),
        )
        return ExpertiseResult(
            expertise=expertise,
            rater_reputation=rater_rep,
            fixed_points=LazyFixedPoints(batch),
        )

    def _solve_all(
        self,
        community: Community,
        categories: LabelIndex,
        warm_start: Mapping[str, float] | None,
    ) -> dict[str, CategoryFixedPoint]:
        category_ids = list(categories)
        if self.n_jobs > 1 and len(category_ids) > 1:
            with ThreadPoolExecutor(
                max_workers=min(self.n_jobs, len(category_ids))
            ) as pool:
                solved = pool.map(
                    lambda category_id: self._solve_one(
                        community, category_id, warm_start
                    ),
                    category_ids,
                )
                return dict(zip(category_ids, solved))

        fixed_points: dict[str, CategoryFixedPoint] = {}
        running: dict[str, float] = dict(warm_start or {})
        for category_id in category_ids:
            seed = running if (self.reuse_warm_start and running) else warm_start
            fixed_point = self._solve_one(community, category_id, seed)
            fixed_points[category_id] = fixed_point
            if self.reuse_warm_start:
                running.update(fixed_point.rater_reputation)
        return fixed_points

    def _solve_one(
        self,
        community: Community,
        category_id: str,
        warm_start: Mapping[str, float] | None = None,
    ) -> CategoryFixedPoint:
        with obs.span("step1.solve", category=category_id):
            fixed_point = solve_category(
                # repro: allow(R2): legacy per-category path (thread pool / warm-start)
                community.rating_triples(category_id),
                self.config,
                warm_start=warm_start,
            )
        if obs.tracing_active():
            obs.convergence(
                "step1.riggs",
                iterations=fixed_point.iterations,
                residual=fixed_point.residual,
                tolerance=self.config.tolerance,
                converged=True,
                category=category_id,
            )
            obs.observe("step1.sweeps", float(fixed_point.iterations))
        return fixed_point
