"""Orchestration of Step 1 over a whole community.

:class:`ExpertiseEstimator` runs the per-category fixed point and the
writer aggregation for every category of a community and assembles:

- the paper's **Users_Category Expertise matrix** ``E`` (writer reputation
  per category, eq. 3) -- the direct input to Step 3;
- a companion **rater-reputation matrix** (eq. 2), which the paper's
  Table 2 evaluates;
- per-category review qualities and convergence diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.community import Community
from repro.matrix import LabelIndex, UserCategoryMatrix
from repro.reputation.riggs import CategoryFixedPoint, RiggsConfig, solve_category
from repro.reputation.writer import writer_reputations

__all__ = ["ExpertiseEstimator", "ExpertiseResult"]


@dataclass(frozen=True)
class ExpertiseResult:
    """Everything Step 1 produces for one community.

    Attributes
    ----------
    expertise:
        ``E`` -- writer reputation per (user, category); zero where the user
        wrote nothing (or nothing rated) in the category.
    rater_reputation:
        Rater reputation per (user, category); zero where the user rated
        nothing in the category.
    fixed_points:
        The raw per-category solver output (qualities, reputations,
        iteration counts).
    """

    expertise: UserCategoryMatrix
    rater_reputation: UserCategoryMatrix
    fixed_points: dict[str, CategoryFixedPoint]

    def review_quality(self, category_id: str) -> dict[str, float]:
        """Converged review qualities for one category."""
        return dict(self.fixed_points[category_id].review_quality)

    def iterations(self) -> dict[str, int]:
        """Solver sweeps needed per category."""
        return {c: fp.iterations for c, fp in self.fixed_points.items()}


class ExpertiseEstimator:
    """Computes Step 1 (eqs. 1-3) for every category of a community.

    Parameters
    ----------
    config:
        Fixed-point configuration shared by all categories.
    unrated_policy:
        Passed to :func:`repro.reputation.writer.writer_reputations`.

    Example
    -------
    >>> estimator = ExpertiseEstimator()
    >>> result = estimator.fit(community)
    >>> result.expertise.get("u000001", "c000000")
    0.7...
    """

    def __init__(self, config: RiggsConfig | None = None, *, unrated_policy: str = "exclude"):
        self.config = config or RiggsConfig()
        self.unrated_policy = unrated_policy

    def fit(self, community: Community) -> ExpertiseResult:
        """Run Step 1 on ``community`` and return all reputation artefacts."""
        users = LabelIndex(community.user_ids())
        categories = LabelIndex(community.category_ids())
        expertise = UserCategoryMatrix(users, categories)
        rater_rep = UserCategoryMatrix(users, categories)
        fixed_points: dict[str, CategoryFixedPoint] = {}

        for category_id in categories:
            fixed_point = self._solve_one(community, category_id)
            fixed_points[category_id] = fixed_point
            for rater_id, value in fixed_point.rater_reputation.items():
                rater_rep.set(rater_id, category_id, value)

            review_writers = {
                review.review_id: review.writer_id
                for review in community.reviews_in_category(category_id)
            }
            writers = writer_reputations(
                review_writers,
                fixed_point.review_quality,
                experience_discount_enabled=self.config.experience_discount_enabled,
                unrated_policy=self.unrated_policy,
            )
            for writer_id, value in writers.items():
                expertise.set(writer_id, category_id, value)

        return ExpertiseResult(
            expertise=expertise, rater_reputation=rater_rep, fixed_points=fixed_points
        )

    def _solve_one(self, community: Community, category_id: str) -> CategoryFixedPoint:
        return solve_category(community.rating_triples(category_id), self.config)
