"""Incremental maintenance of Step 1 as new data arrives.

A production deployment does not re-run the whole framework on every new
rating.  Because eqs. 1-3 are computed *per category* and categories are
independent, only the category that received new data needs re-solving --
and re-solving can warm-start from the previous fixed point, which after
a handful of new ratings is already very close to the new one.

:class:`IncrementalExpertise` subscribes to the community's
:class:`repro.community.ChangeLog`: every mutator emits a structured
delta, and :meth:`IncrementalExpertise.refresh` reads the deltas past its
cursor to infer exactly which categories went stale.  There is no manual
dirty-flagging step: for an explicit recompute request use
:meth:`repro.community.Community.touch`, which records a ``"touch"``
delta every subscriber sees.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.common.arrays import FloatArray
from repro.common.errors import ValidationError
from repro.community import Community, Delta
from repro.community.columnar import CommunityColumns
from repro.matrix import LabelIndex, UserCategoryMatrix
from repro.reputation.estimator import ExpertiseResult
from repro.reputation.riggs import (
    CategoryFixedPoint,
    RiggsConfig,
    solve_category_arrays,
)
from repro.reputation.writer import writer_reputation_matrix

__all__ = ["IncrementalExpertise"]

#: Delta kinds that leave every category's fixed point unchanged: objects
#: and trust statements never enter eqs. 1-3, and a new user has no
#: activity until a later review/rating delta arrives.
_INERT_KINDS = frozenset({"object", "trust"})


class IncrementalExpertise:
    """Maintains expertise/rater reputation under community mutations.

    Usage::

        tracker = IncrementalExpertise(community)
        result = tracker.fit()          # full initial solve
        community.add_rating(...)       # new activity arrives (logged)
        result = tracker.refresh()      # re-solves affected categories only

    ``refresh`` is exact up to iteration count: its output equals a fresh
    :class:`repro.reputation.ExpertiseEstimator` fit of the current
    community state to solver tolerance (warm starting moves where inside
    the tolerance ball the iteration stops, not the fixed point).  Pass
    ``warm_start=False`` for bitwise equality with a cold fit -- the
    incremental engine's exact mode does.

    New users and categories are handled by index growth: both axes are
    append-only, so previously computed columns keep their positions.
    """

    def __init__(
        self,
        community: Community,
        config: RiggsConfig | None = None,
        *,
        unrated_policy: str = "exclude",
        warm_start: bool = True,
    ) -> None:
        self._community = community
        self._config = config or RiggsConfig()
        self._unrated_policy = unrated_policy
        self._warm_start = warm_start
        self._users = LabelIndex(community.user_ids())
        self._categories = LabelIndex(community.category_ids())
        self._fixed_points: dict[str, CategoryFixedPoint] = {}
        # dense column caches of E and the rater-reputation matrix; a
        # refresh rewrites only the re-solved categories' columns
        self._e_values = np.zeros((len(self._users), len(self._categories)))
        self._r_values = np.zeros((len(self._users), len(self._categories)))
        self._dirty: set[str] = set(self._categories)
        self._cursor = community.change_log.epoch
        self._last_resolved: tuple[str, ...] = ()
        self._fitted = False

    # ------------------------------------------------------------------ status

    @property
    def dirty_categories(self) -> set[str]:
        """Categories whose reputation data is stale (change log absorbed)."""
        self._absorb()
        return set(self._dirty)

    @property
    def last_resolved(self) -> tuple[str, ...]:
        """Categories re-solved by the most recent :meth:`refresh` (sorted)."""
        return self._last_resolved

    # ------------------------------------------------------------------ solving

    def fit(self) -> ExpertiseResult:
        """Initial full solve (equivalent to ``ExpertiseEstimator.fit``)."""
        self._absorb()
        self._dirty = set(self._categories)
        return self._refresh_resolved()

    def refresh(self) -> ExpertiseResult:
        """Absorb new deltas, re-solve affected categories, return the result."""
        self._absorb()
        return self._refresh_resolved()

    def last_iterations(self, category_id: str) -> int:
        """Solver sweeps used at the last refresh of ``category_id``."""
        fixed_point = self._fixed_points.get(category_id)
        if fixed_point is None:
            raise ValidationError(f"category {category_id!r} has not been solved yet")
        return fixed_point.iterations

    # ------------------------------------------------------------------ deltas

    def _absorb(self) -> None:
        """Advance the cursor, growing axes and inferring dirty categories."""
        log = self._community.change_log
        if self._cursor < log.floor:
            # deltas this tracker never saw were compacted away: the only
            # safe move is a full resynchronisation
            self._users = LabelIndex(self._community.user_ids())
            self._categories = LabelIndex(self._community.category_ids())
            self._dirty = set(self._categories)
            self._cursor = log.epoch
            return
        deltas = log.since(self._cursor)
        if not deltas:
            return
        self._cursor = self._community.change_log.epoch
        grow_users = False
        for delta in deltas:
            grow_users |= self._apply_delta(delta)
        if grow_users:
            self._users = LabelIndex(self._community.user_ids())

    def _apply_delta(self, delta: Delta) -> bool:
        """Mark dirtiness implied by one delta; return True on user growth."""
        if delta.kind in _INERT_KINDS:
            return False
        if delta.kind == "user":
            return True
        if delta.kind == "category":
            # append-only growth: existing columns keep their positions
            self._categories = LabelIndex(self._community.category_ids())
            if delta.category_id is not None:
                self._dirty.add(delta.category_id)
            return False
        if delta.kind == "touch" and delta.category_id is None:
            self._dirty = set(self._categories)
            return False
        # review / rating / targeted touch all carry the affected category
        if delta.category_id is not None:
            self._dirty.add(delta.category_id)
        return False

    # ------------------------------------------------------------------ refresh

    def _refresh_resolved(self) -> ExpertiseResult:
        resolved = sorted(self._dirty)
        skipped = len(self._categories) - len(resolved)
        columns = self._community.columns()
        self._sync_shapes()
        for category_id in resolved:
            fixed_point, e_col, r_col = self._solve_columnar(columns, category_id)
            self._fixed_points[category_id] = fixed_point
            c = self._categories.position(category_id)
            self._e_values[:, c] = e_col
            self._r_values[:, c] = r_col
        self._dirty.clear()
        self._last_resolved = tuple(resolved)
        self._fitted = True
        obs.add("step1.incremental.categories_resolved", len(resolved))
        obs.add("step1.incremental.categories_skipped", skipped)
        return self._assemble()

    def _solve_columnar(
        self, columns: CommunityColumns, category_id: str
    ) -> tuple[CategoryFixedPoint, FloatArray, FloatArray]:
        """Re-solve one category on the columnar plane.

        Returns the dict-form fixed point plus the category's expertise and
        rater-reputation columns, bitwise identical to what a cold
        :func:`repro.reputation.riggs.solve_category` /
        :func:`repro.reputation.writer.writer_reputations` pass produces:
        the slot arrays preserve rating insertion order, so every bincount
        accumulates in the same sequence as the dict scans it replaces.
        """
        num_users = len(columns.users)
        reviews = columns.reviews_slice(category_id)
        ratings = columns.ratings_slice(category_id)
        review_local = columns.srt_review_idx[ratings] - reviews.start
        num_reviews = reviews.stop - reviews.start
        solved = solve_category_arrays(
            columns.srt_rater_idx[ratings],
            review_local,
            columns.srt_values[ratings],
            num_raters=num_users,
            num_reviews=num_reviews,
            config=self._config,
            warm_start=self._warm_array(category_id, num_users),
        )
        counts = solved.rating_counts
        active = np.flatnonzero(counts > 0)
        rated_local = (
            np.flatnonzero(np.bincount(review_local, minlength=num_reviews) > 0)
            if review_local.size
            else np.empty(0, dtype=np.int64)
        )
        labels = columns.users.labels
        review_ids = columns.review_ids
        fixed_point = CategoryFixedPoint(
            review_quality={
                review_ids[reviews.start + j]: float(solved.quality[j])
                for j in rated_local.tolist()
            },
            rater_reputation={
                labels[u]: float(solved.reputation[u]) for u in active.tolist()
            },
            iterations=solved.iterations,
            residual=solved.residual,
            rating_counts={labels[u]: int(counts[u]) for u in active.tolist()},
        )
        e_col = writer_reputation_matrix(
            columns.review_writer_idx[reviews],
            np.zeros(num_reviews, dtype=np.int64),
            num_users,
            1,
            rated_local,
            solved.quality[rated_local],
            experience_discount_enabled=self._config.experience_discount_enabled,
            unrated_policy=self._unrated_policy,
        )[:, 0]
        r_col = np.where(counts > 0, solved.reputation, 0.0)
        return fixed_point, e_col, r_col

    def _warm_array(self, category_id: str, num_users: int) -> FloatArray | None:
        """Per-user warm-start reputations from the previous fixed point."""
        if not self._warm_start:
            return None
        previous = self._fixed_points.get(category_id)
        if previous is None or not previous.rater_reputation:
            return None
        warm = np.full(num_users, self._config.initial_reputation, dtype=np.float64)
        positions = self._users.positions(previous.rater_reputation.keys())
        warm[positions] = np.clip(
            np.fromiter(
                previous.rater_reputation.values(),
                dtype=np.float64,
                count=len(previous.rater_reputation),
            ),
            0.0,
            1.0,
        )
        obs.add("step1.warm_start_hits", positions.size)
        return warm

    # ------------------------------------------------------------------ assembly

    def _sync_shapes(self) -> None:
        """Zero-pad the dense column caches after append-only axis growth."""
        shape = (len(self._users), len(self._categories))
        if self._e_values.shape != shape:
            for name in ("_e_values", "_r_values"):
                old = getattr(self, name)
                grown = np.zeros(shape)
                grown[: old.shape[0], : old.shape[1]] = old
                setattr(self, name, grown)

    def _assemble(self) -> ExpertiseResult:
        return ExpertiseResult(
            expertise=UserCategoryMatrix(self._users, self._categories, self._e_values),
            rater_reputation=UserCategoryMatrix(
                self._users, self._categories, self._r_values
            ),
            fixed_points=dict(self._fixed_points),
        )
