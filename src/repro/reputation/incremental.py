"""Incremental maintenance of Step 1 as new data arrives.

A production deployment does not re-run the whole framework on every new
rating.  Because eqs. 1-3 are computed *per category* and categories are
independent, only the category that received new data needs re-solving --
and re-solving can warm-start from the previous fixed point, which after
a handful of new ratings is already very close to the new one.

:class:`IncrementalExpertise` wraps a community, tracks which categories
are dirty, and refreshes exactly those (warm-started) on demand.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.community import Community
from repro.matrix import LabelIndex, UserCategoryMatrix
from repro.reputation.estimator import ExpertiseResult
from repro.reputation.riggs import CategoryFixedPoint, RiggsConfig, solve_category
from repro.reputation.writer import writer_reputations

__all__ = ["IncrementalExpertise"]


class IncrementalExpertise:
    """Maintains expertise/rater reputation under new ratings and reviews.

    Usage::

        tracker = IncrementalExpertise(community)
        result = tracker.fit()                   # full initial solve
        community.add_rating(...)                # new activity arrives
        tracker.mark_dirty(category_id)          # or mark_all_dirty()
        result = tracker.refresh()               # re-solves dirty categories only

    ``refresh`` is exact: its output always equals a fresh
    :class:`repro.reputation.ExpertiseEstimator` fit of the current
    community state (warm starting changes the iteration count, not the
    fixed point).

    Limitations: the user and category *axes* are fixed at construction --
    adding new users or categories requires a new tracker.
    """

    def __init__(
        self,
        community: Community,
        config: RiggsConfig | None = None,
        *,
        unrated_policy: str = "exclude",
    ) -> None:
        self._community = community
        self._config = config or RiggsConfig()
        self._unrated_policy = unrated_policy
        self._users = LabelIndex(community.user_ids())
        self._categories = LabelIndex(community.category_ids())
        self._fixed_points: dict[str, CategoryFixedPoint] = {}
        self._writer_reps: dict[str, dict[str, float]] = {}
        self._dirty: set[str] = set(self._categories)
        self._fitted = False

    # ------------------------------------------------------------------ status

    @property
    def dirty_categories(self) -> set[str]:
        """Categories whose reputation data is stale."""
        return set(self._dirty)

    def mark_dirty(self, category_id: str) -> None:
        """Flag one category for recomputation at the next refresh."""
        if category_id not in self._categories:
            raise ValidationError(f"unknown category {category_id!r}")
        self._dirty.add(category_id)

    def mark_all_dirty(self) -> None:
        """Flag every category (e.g. after a bulk import)."""
        self._dirty = set(self._categories)

    # ------------------------------------------------------------------ solving

    def fit(self) -> ExpertiseResult:
        """Initial full solve (equivalent to ``ExpertiseEstimator.fit``)."""
        self.mark_all_dirty()
        return self.refresh()

    def refresh(self) -> ExpertiseResult:
        """Re-solve all dirty categories (warm-started) and return the result."""
        for category_id in sorted(self._dirty):
            previous = self._fixed_points.get(category_id)
            warm = previous.rater_reputation if previous is not None else None
            fixed_point = solve_category(
                self._community.rating_triples(category_id),
                self._config,
                warm_start=warm,
            )
            self._fixed_points[category_id] = fixed_point
            review_writers = {
                review.review_id: review.writer_id
                for review in self._community.reviews_in_category(category_id)
            }
            self._writer_reps[category_id] = writer_reputations(
                review_writers,
                fixed_point.review_quality,
                experience_discount_enabled=self._config.experience_discount_enabled,
                unrated_policy=self._unrated_policy,
            )
        self._dirty.clear()
        self._fitted = True
        return self._assemble()

    def last_iterations(self, category_id: str) -> int:
        """Solver sweeps used at the last refresh of ``category_id``."""
        fixed_point = self._fixed_points.get(category_id)
        if fixed_point is None:
            raise ValidationError(f"category {category_id!r} has not been solved yet")
        return fixed_point.iterations

    # ------------------------------------------------------------------ assembly

    def _assemble(self) -> ExpertiseResult:
        expertise = UserCategoryMatrix(self._users, self._categories)
        rater_rep = UserCategoryMatrix(self._users, self._categories)
        for category_id, fixed_point in self._fixed_points.items():
            for rater_id, value in fixed_point.rater_reputation.items():
                rater_rep.set(rater_id, category_id, value)
            for writer_id, value in self._writer_reps[category_id].items():
                expertise.set(writer_id, category_id, value)
        return ExpertiseResult(
            expertise=expertise,
            rater_reputation=rater_rep,
            fixed_points=dict(self._fixed_points),
        )
