"""Step 1 of the paper: reputation from rating data (Riggs' model).

Per category, the package computes three mutually-dependent quantities:

- **review quality** ``q(r_j)`` -- the rater-reputation-weighted mean of the
  helpfulness ratings a review received (eq. 1);
- **rater reputation** -- how consistently a rater rates reviews near their
  final quality, discounted for low rating activity (eq. 2);
- **writer reputation / expertise** -- the mean quality of a writer's
  reviews in the category, discounted for low writing activity (eq. 3).

Qualities and rater reputations are solved together as a fixed point
(:func:`solve_category`); writer reputations follow in one pass
(:func:`writer_reputations`); :class:`ExpertiseEstimator` orchestrates all
categories of a :class:`repro.community.Community` into the paper's
Users_Category Expertise matrix ``E``.
"""

from repro.reputation.estimator import ExpertiseEstimator, ExpertiseResult
from repro.reputation.incremental import IncrementalExpertise
from repro.reputation.riggs import (
    ArrayFixedPoint,
    BatchedFixedPoints,
    CategoryFixedPoint,
    LazyFixedPoints,
    RiggsConfig,
    experience_discount,
    solve_all_categories,
    solve_category,
    solve_category_arrays,
)
from repro.reputation.writer import writer_reputation_matrix, writer_reputations

__all__ = [
    "RiggsConfig",
    "CategoryFixedPoint",
    "ArrayFixedPoint",
    "BatchedFixedPoints",
    "LazyFixedPoints",
    "solve_category",
    "solve_category_arrays",
    "solve_all_categories",
    "experience_discount",
    "writer_reputations",
    "writer_reputation_matrix",
    "ExpertiseEstimator",
    "ExpertiseResult",
    "IncrementalExpertise",
]
