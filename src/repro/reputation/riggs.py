"""The review-quality / rater-reputation fixed point (paper eqs. 1-2).

Within one category, let ``rho_ij`` be the rating rater *i* gave review *j*.
The two coupled equations are

.. math::

    q(r_j) = \\frac{\\sum_{i \\in U(r_j)} rep(u_i) \\cdot \\rho_{ij}}
                   {\\sum_{i \\in U(r_j)} rep(u_i)}

    rep(u_i) = \\Big(1 - \\frac{1}{n_i + 1}\\Big)
               \\Big(1 - \\frac{\\sum_{j \\in R(u_i)} |q(r_j) - \\rho_{ij}|}{n_i}\\Big)

where ``n_i`` is the number of reviews rater *i* rated in the category.  We
iterate the pair of updates from ``rep = 1`` until the largest change in any
quality or reputation value falls below ``tolerance``.

The iteration operates on flat numpy arrays indexed by (rater, review)
incidence, so each sweep is O(number of ratings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.validation import (
    require_fraction,
    require_in_range,
    require_positive,
)

__all__ = ["RiggsConfig", "CategoryFixedPoint", "solve_category", "experience_discount"]


def experience_discount(n: np.ndarray | int) -> np.ndarray | float:
    """The paper's activity discount ``1 - 1/(n+1)``.

    Maps 1 activity event to 0.5, 9 events to 0.9, and approaches 1 as the
    user becomes more active, "compensating for less experience".
    """
    return 1.0 - 1.0 / (np.asarray(n, dtype=np.float64) + 1.0)


@dataclass(frozen=True)
class RiggsConfig:
    """Knobs of the fixed-point solver.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the L-infinity change of qualities and
        reputations between sweeps.
    max_iterations:
        Iteration budget; exceeding it raises :class:`ConvergenceError`.
    damping:
        Fraction of the *previous* reputation kept each sweep
        (``0`` = plain iteration).  Rarely needed; exposed for adversarial
        inputs.
    initial_reputation:
        Starting rater reputation.  The paper does not specify one; ``1.0``
        makes the first quality estimate the plain mean of ratings.
    weight_by_rater_reputation:
        Ablation A1: when ``False``, eq. 1 degrades to the unweighted mean
        of received ratings (rater reputations are still computed, but do
        not influence quality).
    experience_discount_enabled:
        Ablation A2: when ``False``, the ``1 - 1/(n+1)`` factor of eq. 2 is
        dropped.
    """

    tolerance: float = 1e-9
    max_iterations: int = 500
    damping: float = 0.0
    initial_reputation: float = 1.0
    weight_by_rater_reputation: bool = True
    experience_discount_enabled: bool = True

    def __post_init__(self) -> None:
        require_positive("tolerance", self.tolerance)
        require_positive("max_iterations", self.max_iterations)
        require_in_range("damping", self.damping, 0.0, 1.0)
        require_fraction("initial_reputation", self.initial_reputation)


@dataclass(frozen=True)
class CategoryFixedPoint:
    """Converged qualities and rater reputations for one category.

    Attributes
    ----------
    review_quality:
        ``{review_id: quality}`` for every review that received at least one
        rating in the category.
    rater_reputation:
        ``{rater_id: reputation}`` for every user who rated at least one
        review in the category.
    iterations:
        Sweeps performed until convergence.
    residual:
        Final L-infinity change (``<= tolerance``).
    """

    review_quality: dict[str, float]
    rater_reputation: dict[str, float]
    iterations: int
    residual: float
    rating_counts: dict[str, int] = field(default_factory=dict)


def solve_category(
    ratings: Iterable[tuple[str, str, float]],
    config: RiggsConfig | None = None,
    *,
    warm_start: Mapping[str, float] | None = None,
) -> CategoryFixedPoint:
    """Solve eqs. 1-2 for one category.

    Parameters
    ----------
    ratings:
        ``(rater_id, review_id, value)`` triples -- every helpfulness rating
        given in the category.  Values must lie in ``[0, 1]``; a
        ``(rater, review)`` pair may appear at most once.
    config:
        Solver configuration (defaults to :class:`RiggsConfig`).
    warm_start:
        Optional ``{rater_id: reputation}`` starting point (e.g. the
        previous fixed point, for incremental recomputation after a few
        new ratings).  Raters absent from the mapping start at
        ``config.initial_reputation``; values are clipped to ``[0, 1]``.

    Returns
    -------
    CategoryFixedPoint
        Converged qualities (one per rated review) and reputations (one per
        active rater).

    Raises
    ------
    ConvergenceError
        If ``config.max_iterations`` sweeps do not reach ``tolerance``.
    ValidationError
        On malformed input (duplicate pairs, out-of-range values).
    """
    cfg = config or RiggsConfig()
    triples = list(ratings)
    if not triples:
        return CategoryFixedPoint(
            review_quality={}, rater_reputation={}, iterations=0, residual=0.0
        )

    rater_ids, review_ids, rater_idx, review_idx, values = _index_triples(triples)
    num_raters = len(rater_ids)
    num_reviews = len(review_ids)

    counts = np.bincount(rater_idx, minlength=num_raters).astype(np.float64)
    if cfg.experience_discount_enabled:
        discount = experience_discount(counts)
    else:
        discount = np.ones(num_raters, dtype=np.float64)

    reputation = np.full(num_raters, cfg.initial_reputation, dtype=np.float64)
    if warm_start:
        for i, rater_id in enumerate(rater_ids):
            previous = warm_start.get(rater_id)
            if previous is not None:
                reputation[i] = min(1.0, max(0.0, float(previous)))
    quality = np.zeros(num_reviews, dtype=np.float64)

    iterations = 0
    residual = np.inf
    for iterations in range(1, cfg.max_iterations + 1):
        new_quality = _quality_update(
            reputation, rater_idx, review_idx, values, num_reviews, cfg
        )
        new_reputation = _reputation_update(
            new_quality, rater_idx, review_idx, values, counts, discount
        )
        if cfg.damping > 0.0:
            new_reputation = (
                cfg.damping * reputation + (1.0 - cfg.damping) * new_reputation
            )
        residual = max(
            float(np.max(np.abs(new_quality - quality))),
            float(np.max(np.abs(new_reputation - reputation))),
        )
        quality = new_quality
        reputation = new_reputation
        if residual < cfg.tolerance:
            break
    else:
        raise ConvergenceError(
            f"Riggs fixed point did not converge in {cfg.max_iterations} sweeps "
            f"(residual {residual:.3e} > tolerance {cfg.tolerance:.3e})",
            iterations=cfg.max_iterations,
            residual=float(residual),
            tolerance=cfg.tolerance,
        )

    return CategoryFixedPoint(
        review_quality={review_ids[j]: float(quality[j]) for j in range(num_reviews)},
        rater_reputation={rater_ids[i]: float(reputation[i]) for i in range(num_raters)},
        iterations=iterations,
        residual=float(residual),
        rating_counts={rater_ids[i]: int(counts[i]) for i in range(num_raters)},
    )


# --------------------------------------------------------------------------- internals


def _index_triples(
    triples: Sequence[tuple[str, str, float]],
) -> tuple[list[str], list[str], np.ndarray, np.ndarray, np.ndarray]:
    rater_pos: dict[str, int] = {}
    review_pos: dict[str, int] = {}
    seen_pairs: set[tuple[str, str]] = set()
    rater_idx = np.empty(len(triples), dtype=np.int64)
    review_idx = np.empty(len(triples), dtype=np.int64)
    values = np.empty(len(triples), dtype=np.float64)
    for k, (rater, review, value) in enumerate(triples):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"rating value must be a number, got {value!r}")
        if not 0.0 <= float(value) <= 1.0:
            raise ValidationError(f"rating value must lie in [0, 1], got {value!r}")
        pair = (rater, review)
        if pair in seen_pairs:
            raise ValidationError(f"duplicate rating for pair {pair!r}")
        seen_pairs.add(pair)
        rater_idx[k] = rater_pos.setdefault(rater, len(rater_pos))
        review_idx[k] = review_pos.setdefault(review, len(review_pos))
        values[k] = float(value)
    return (
        list(rater_pos),
        list(review_pos),
        rater_idx,
        review_idx,
        values,
    )


def _quality_update(
    reputation: np.ndarray,
    rater_idx: np.ndarray,
    review_idx: np.ndarray,
    values: np.ndarray,
    num_reviews: int,
    cfg: RiggsConfig,
) -> np.ndarray:
    """Eq. 1: reputation-weighted mean rating per review."""
    if cfg.weight_by_rater_reputation:
        weights = reputation[rater_idx]
    else:
        weights = np.ones_like(values)
    weighted_sum = np.bincount(review_idx, weights=weights * values, minlength=num_reviews)
    weight_sum = np.bincount(review_idx, weights=weights, minlength=num_reviews)
    plain_sum = np.bincount(review_idx, weights=values, minlength=num_reviews)
    plain_count = np.bincount(review_idx, minlength=num_reviews).astype(np.float64)
    # A review whose raters all have reputation 0 falls back to the plain
    # mean -- eq. 1 is 0/0 there and the paper leaves it undefined.
    safe = weight_sum > 0.0
    quality = np.where(
        safe,
        np.divide(weighted_sum, np.where(safe, weight_sum, 1.0)),
        plain_sum / np.maximum(plain_count, 1.0),
    )
    return np.clip(quality, 0.0, 1.0)


def _reputation_update(
    quality: np.ndarray,
    rater_idx: np.ndarray,
    review_idx: np.ndarray,
    values: np.ndarray,
    counts: np.ndarray,
    discount: np.ndarray,
) -> np.ndarray:
    """Eq. 2: activity-discounted (1 - mean absolute deviation)."""
    deviations = np.abs(quality[review_idx] - values)
    total_dev = np.bincount(rater_idx, weights=deviations, minlength=len(counts))
    mad = total_dev / counts
    return np.clip(discount * (1.0 - mad), 0.0, 1.0)
