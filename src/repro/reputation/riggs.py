"""The review-quality / rater-reputation fixed point (paper eqs. 1-2).

Within one category, let ``rho_ij`` be the rating rater *i* gave review *j*.
The two coupled equations are

.. math::

    q(r_j) = \\frac{\\sum_{i \\in U(r_j)} rep(u_i) \\cdot \\rho_{ij}}
                   {\\sum_{i \\in U(r_j)} rep(u_i)}

    rep(u_i) = \\Big(1 - \\frac{1}{n_i + 1}\\Big)
               \\Big(1 - \\frac{\\sum_{j \\in R(u_i)} |q(r_j) - \\rho_{ij}|}{n_i}\\Big)

where ``n_i`` is the number of reviews rater *i* rated in the category.  We
iterate the pair of updates from ``rep = 1`` until the largest change in any
quality or reputation value falls below ``tolerance``.

The iteration operates on flat numpy arrays indexed by (rater, review)
incidence, so each sweep is O(number of ratings).
"""

# repro: hot-path

from __future__ import annotations

from collections.abc import Mapping as _Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Protocol, Sequence, overload

import numpy as np

from repro import obs
from repro.common.arrays import FloatArray, IntArray
from repro.common.contracts import array_spec, checked_arrays
from repro.common.errors import ConvergenceError, ValidationError
from repro.common.validation import (
    require_fraction,
    require_in_range,
    require_positive,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.matrix.labels import LabelIndex

__all__ = [
    "RiggsConfig",
    "CategoryFixedPoint",
    "ArrayFixedPoint",
    "BatchedFixedPoints",
    "ColumnarRatings",
    "LazyFixedPoints",
    "solve_category",
    "solve_category_arrays",
    "solve_all_categories",
    "experience_discount",
]


class ColumnarRatings(Protocol):
    """Structural input of :func:`solve_all_categories`.

    Anything shaped like :class:`repro.community.CommunityColumns`
    qualifies: label axes, a category-major global review axis and
    category-major rating columns.  Declared as a protocol so this module
    stays import-independent of the community layer.
    """

    users: LabelIndex
    categories: LabelIndex
    review_ids: tuple[str, ...]
    review_category_idx: IntArray
    srt_rater_idx: IntArray
    srt_review_idx: IntArray
    srt_values: FloatArray
    rating_cat_starts: IntArray


@overload
def experience_discount(n: int) -> float: ...


@overload
def experience_discount(n: IntArray | FloatArray) -> FloatArray: ...


def experience_discount(n: IntArray | FloatArray | int) -> FloatArray | float:
    """The paper's activity discount ``1 - 1/(n+1)``.

    Maps 1 activity event to 0.5, 9 events to 0.9, and approaches 1 as the
    user becomes more active, "compensating for less experience".
    """
    result = 1.0 - 1.0 / (np.asarray(n, dtype=np.float64) + 1.0)
    if isinstance(n, (int, np.integer)):
        return float(result)
    return result


@dataclass(frozen=True)
class RiggsConfig:
    """Knobs of the fixed-point solver.

    Parameters
    ----------
    tolerance:
        Convergence threshold on the L-infinity change of qualities and
        reputations between sweeps.
    max_iterations:
        Iteration budget; exceeding it raises :class:`ConvergenceError`.
    damping:
        Fraction of the *previous* reputation kept each sweep
        (``0`` = plain iteration).  Rarely needed; exposed for adversarial
        inputs.
    initial_reputation:
        Starting rater reputation.  The paper does not specify one; ``1.0``
        makes the first quality estimate the plain mean of ratings.
    weight_by_rater_reputation:
        Ablation A1: when ``False``, eq. 1 degrades to the unweighted mean
        of received ratings (rater reputations are still computed, but do
        not influence quality).
    experience_discount_enabled:
        Ablation A2: when ``False``, the ``1 - 1/(n+1)`` factor of eq. 2 is
        dropped.
    """

    tolerance: float = 1e-9
    max_iterations: int = 500
    damping: float = 0.0
    initial_reputation: float = 1.0
    weight_by_rater_reputation: bool = True
    experience_discount_enabled: bool = True

    def __post_init__(self) -> None:
        require_positive("tolerance", self.tolerance)
        require_positive("max_iterations", self.max_iterations)
        require_in_range("damping", self.damping, 0.0, 1.0)
        require_fraction("initial_reputation", self.initial_reputation)


@dataclass(frozen=True)
class CategoryFixedPoint:
    """Converged qualities and rater reputations for one category.

    Attributes
    ----------
    review_quality:
        ``{review_id: quality}`` for every review that received at least one
        rating in the category.
    rater_reputation:
        ``{rater_id: reputation}`` for every user who rated at least one
        review in the category.
    iterations:
        Sweeps performed until convergence.
    residual:
        Final L-infinity change (``<= tolerance``).
    """

    review_quality: dict[str, float]
    rater_reputation: dict[str, float]
    iterations: int
    residual: float
    rating_counts: dict[str, int] = field(default_factory=dict)


def solve_category(
    ratings: Iterable[tuple[str, str, float]],
    config: RiggsConfig | None = None,
    *,
    warm_start: Mapping[str, float] | None = None,
) -> CategoryFixedPoint:
    """Solve eqs. 1-2 for one category.

    Parameters
    ----------
    ratings:
        ``(rater_id, review_id, value)`` triples -- every helpfulness rating
        given in the category.  Values must lie in ``[0, 1]``; a
        ``(rater, review)`` pair may appear at most once.
    config:
        Solver configuration (defaults to :class:`RiggsConfig`).
    warm_start:
        Optional ``{rater_id: reputation}`` starting point (e.g. the
        previous fixed point, for incremental recomputation after a few
        new ratings).  Raters absent from the mapping start at
        ``config.initial_reputation``; values are clipped to ``[0, 1]``.

    Returns
    -------
    CategoryFixedPoint
        Converged qualities (one per rated review) and reputations (one per
        active rater).

    Raises
    ------
    ConvergenceError
        If ``config.max_iterations`` sweeps do not reach ``tolerance``.
    ValidationError
        On malformed input (duplicate pairs, out-of-range values).
    """
    cfg = config or RiggsConfig()
    triples = list(ratings)
    if not triples:
        return CategoryFixedPoint(
            review_quality={}, rater_reputation={}, iterations=0, residual=0.0
        )

    rater_ids, review_ids, rater_idx, review_idx, values = _index_triples(triples)
    num_raters = len(rater_ids)
    num_reviews = len(review_ids)

    counts = np.bincount(rater_idx, minlength=num_raters).astype(np.float64)
    if cfg.experience_discount_enabled:
        discount = experience_discount(counts)
    else:
        discount = np.ones(num_raters, dtype=np.float64)

    reputation = np.full(num_raters, cfg.initial_reputation, dtype=np.float64)
    if warm_start:
        warm_hits = 0
        for i, rater_id in enumerate(rater_ids):
            previous = warm_start.get(rater_id)
            if previous is not None:
                reputation[i] = min(1.0, max(0.0, float(previous)))
                warm_hits += 1
        obs.add("step1.warm_start_hits", warm_hits)
    quality = np.zeros(num_reviews, dtype=np.float64)

    iterations = 0
    residual = np.inf
    for iterations in range(1, cfg.max_iterations + 1):
        new_quality = _quality_update(
            reputation, rater_idx, review_idx, values, num_reviews, cfg
        )
        new_reputation = _reputation_update(
            new_quality, rater_idx, review_idx, values, counts, discount
        )
        if cfg.damping > 0.0:
            new_reputation = (
                cfg.damping * reputation + (1.0 - cfg.damping) * new_reputation
            )
        residual = max(
            float(np.max(np.abs(new_quality - quality))),
            float(np.max(np.abs(new_reputation - reputation))),
        )
        quality = new_quality
        reputation = new_reputation
        if residual < cfg.tolerance:
            break
    else:
        raise ConvergenceError(
            f"Riggs fixed point did not converge in {cfg.max_iterations} sweeps "
            f"(residual {residual:.3e} > tolerance {cfg.tolerance:.3e})",
            iterations=cfg.max_iterations,
            residual=float(residual),
            tolerance=cfg.tolerance,
        )

    return CategoryFixedPoint(
        review_quality={review_ids[j]: float(quality[j]) for j in range(num_reviews)},
        rater_reputation={rater_ids[i]: float(reputation[i]) for i in range(num_raters)},
        iterations=iterations,
        residual=float(residual),
        rating_counts={rater_ids[i]: int(counts[i]) for i in range(num_raters)},
    )


# --------------------------------------------------------------------------- internals


def _index_triples(
    triples: Sequence[tuple[str, str, float]],
) -> tuple[list[str], list[str], IntArray, IntArray, FloatArray]:
    rater_pos: dict[str, int] = {}
    review_pos: dict[str, int] = {}
    seen_pairs: set[tuple[str, str]] = set()
    rater_idx = np.empty(len(triples), dtype=np.int64)
    review_idx = np.empty(len(triples), dtype=np.int64)
    values = np.empty(len(triples), dtype=np.float64)
    for k, (rater, review, value) in enumerate(triples):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"rating value must be a number, got {value!r}")
        if not 0.0 <= float(value) <= 1.0:
            raise ValidationError(f"rating value must lie in [0, 1], got {value!r}")
        pair = (rater, review)
        if pair in seen_pairs:
            raise ValidationError(f"duplicate rating for pair {pair!r}")
        seen_pairs.add(pair)
        rater_idx[k] = rater_pos.setdefault(rater, len(rater_pos))
        review_idx[k] = review_pos.setdefault(review, len(review_pos))
        values[k] = float(value)
    return (
        list(rater_pos),
        list(review_pos),
        rater_idx,
        review_idx,
        values,
    )


def _quality_update(
    reputation: FloatArray,
    rater_idx: IntArray,
    review_idx: IntArray,
    values: FloatArray,
    num_reviews: int,
    cfg: RiggsConfig,
) -> FloatArray:
    """Eq. 1: reputation-weighted mean rating per review."""
    if cfg.weight_by_rater_reputation:
        weights = reputation[rater_idx]
    else:
        weights = np.ones_like(values)
    weighted_sum = np.bincount(review_idx, weights=weights * values, minlength=num_reviews)
    weight_sum = np.bincount(review_idx, weights=weights, minlength=num_reviews)
    plain_sum = np.bincount(review_idx, weights=values, minlength=num_reviews)
    plain_count = np.bincount(review_idx, minlength=num_reviews).astype(np.float64)
    # A review whose raters all have reputation 0 falls back to the plain
    # mean -- eq. 1 is 0/0 there and the paper leaves it undefined.
    safe = weight_sum > 0.0
    quality = np.where(
        safe,
        np.divide(weighted_sum, np.where(safe, weight_sum, 1.0)),
        plain_sum / np.maximum(plain_count, 1.0),
    )
    return np.clip(quality, 0.0, 1.0)


def _reputation_update(
    quality: FloatArray,
    rater_idx: IntArray,
    review_idx: IntArray,
    values: FloatArray,
    counts: FloatArray,
    discount: FloatArray,
) -> FloatArray:
    """Eq. 2: activity-discounted (1 - mean absolute deviation)."""
    deviations = np.abs(quality[review_idx] - values)
    total_dev = np.bincount(rater_idx, weights=deviations, minlength=len(counts))
    mad = total_dev / counts
    return np.clip(discount * (1.0 - mad), 0.0, 1.0)


# ----------------------------------------------------------------- batched solver


@dataclass(frozen=True)
class ArrayFixedPoint:
    """Arrays-native result of one category's fixed point.

    Attributes
    ----------
    quality:
        Per review slot; slots that received no ratings stay at 0.
    reputation:
        Per rater slot; slots with no ratings hold their stationary value
        (0 with the experience discount, 1 without).
    rating_counts:
        Ratings given per rater slot.
    iterations, residual:
        As on :class:`CategoryFixedPoint`.
    """

    quality: FloatArray
    reputation: FloatArray
    rating_counts: IntArray
    iterations: int
    residual: float


@dataclass(frozen=True)
class BatchedFixedPoints:
    """All categories' fixed points on shared flat arrays.

    Slots are grouped by category: ``review_slot_cat`` / ``rater_slot_cat``
    are nondecreasing *compact* segment indices (one per category that has
    ratings; ``nonempty_categories`` maps them back to positions on the
    category axis).  :meth:`fixed_point` materialises the dict form of one
    category on demand; the arrays are the fast path for matrix assembly.
    """

    categories: tuple[str, ...]
    users: LabelIndex
    review_ids: tuple[str, ...]
    nonempty_categories: IntArray
    rated_review_idx: IntArray
    quality: FloatArray
    review_slot_cat: IntArray
    rater_slot_user: IntArray
    rater_slot_cat: IntArray
    reputation: FloatArray
    rater_counts: IntArray
    iterations: IntArray
    residuals: FloatArray

    @property
    def rater_slot_category_idx(self) -> IntArray:
        """Category-axis position of every rater slot."""
        return self.nonempty_categories[self.rater_slot_cat]

    @property
    def review_slot_category_idx(self) -> IntArray:
        """Category-axis position of every review slot."""
        return self.nonempty_categories[self.review_slot_cat]

    def fixed_point(self, category_id: str) -> CategoryFixedPoint:
        """The dict-form :class:`CategoryFixedPoint` of one category."""
        try:
            c = self.categories.index(category_id)
        except ValueError:
            raise ValidationError(f"unknown category {category_id!r}") from None
        compact = np.flatnonzero(self.nonempty_categories == c)
        if not len(compact):
            return CategoryFixedPoint(
                review_quality={}, rater_reputation={}, iterations=0, residual=0.0
            )
        k = int(compact[0])
        a, b = np.searchsorted(self.review_slot_cat, [k, k + 1])
        ua, ub = np.searchsorted(self.rater_slot_cat, [k, k + 1])
        labels = self.users.labels
        return CategoryFixedPoint(
            review_quality={
                self.review_ids[g]: q
                for g, q in zip(
                    self.rated_review_idx[a:b].tolist(), self.quality[a:b].tolist()
                )
            },
            rater_reputation={
                labels[u]: r
                for u, r in zip(
                    self.rater_slot_user[ua:ub].tolist(),
                    self.reputation[ua:ub].tolist(),
                )
            },
            iterations=int(self.iterations[c]),
            residual=float(self.residuals[c]),
            rating_counts={
                labels[u]: int(n)
                for u, n in zip(
                    self.rater_slot_user[ua:ub].tolist(),
                    self.rater_counts[ua:ub].tolist(),
                )
            },
        )

    def to_dict(self) -> dict[str, CategoryFixedPoint]:
        """Materialise every category (the estimator's ``fixed_points``)."""
        return {category_id: self.fixed_point(category_id) for category_id in self.categories}


class LazyFixedPoints(_Mapping[str, CategoryFixedPoint]):
    """``{category_id: CategoryFixedPoint}`` view over a batched solve.

    Building every category's dicts up front costs more than the batched
    sweeps themselves on large communities, and most callers only touch
    the matrices.  This mapping materialises a category on first access
    and caches it, so ``result.fixed_points["movies"]`` behaves exactly
    like the eager dict while unaccessed categories stay as arrays.
    """

    __slots__ = ("_batch", "_cache")

    def __init__(self, batch: BatchedFixedPoints) -> None:
        self._batch = batch
        self._cache: dict[str, CategoryFixedPoint] = {}

    def __getitem__(self, category_id: str) -> CategoryFixedPoint:
        if category_id not in self._cache:
            if category_id not in self._batch.categories:
                raise KeyError(category_id)
            self._cache[category_id] = self._batch.fixed_point(category_id)
        return self._cache[category_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self._batch.categories)

    def __len__(self) -> int:
        return len(self._batch.categories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyFixedPoints({len(self)} categories)"


@checked_arrays(
    rater_idx=array_spec(ndim=1, kind="iu", non_negative=True, length_of="ratings"),
    review_idx=array_spec(ndim=1, kind="iu", non_negative=True, length_of="ratings"),
    values=array_spec(ndim=1, kind="if", finite=True, length_of="ratings"),
    warm_start=array_spec(ndim=1, kind="if", finite=True, optional=True),
)
def solve_category_arrays(
    rater_idx: IntArray,
    review_idx: IntArray,
    values: FloatArray,
    *,
    num_raters: int | None = None,
    num_reviews: int | None = None,
    config: RiggsConfig | None = None,
    warm_start: FloatArray | None = None,
) -> ArrayFixedPoint:
    """Arrays-native :func:`solve_category`: integer slots in, arrays out.

    ``rater_idx`` / ``review_idx`` are dense slot positions (``int64``) and
    ``values`` the ratings, one entry per rating.  ``num_raters`` /
    ``num_reviews`` widen the slot spaces beyond the maximum seen index
    (extra slots converge to their stationary values without costing
    sweeps).  ``warm_start`` is a per-rater-slot reputation array.

    The fixed point is bitwise identical to :func:`solve_category` on the
    label-equivalent triples.
    """
    cfg = config or RiggsConfig()
    rater_idx = np.ascontiguousarray(rater_idx, dtype=np.int64)
    review_idx = np.ascontiguousarray(review_idx, dtype=np.int64)
    values = np.ascontiguousarray(values, dtype=np.float64)
    if not (len(rater_idx) == len(review_idx) == len(values)):
        raise ValidationError("rater_idx, review_idx and values must be equal length")
    if num_raters is None:
        num_raters = int(rater_idx.max()) + 1 if len(rater_idx) else 0
    if num_reviews is None:
        num_reviews = int(review_idx.max()) + 1 if len(review_idx) else 0
    if len(values) == 0:
        return ArrayFixedPoint(
            quality=np.zeros(num_reviews),
            reputation=np.zeros(num_raters),
            rating_counts=np.zeros(num_raters, dtype=np.int64),
            iterations=0,
            residual=0.0,
        )
    _validate_rating_arrays(rater_idx, review_idx, values, num_reviews)

    reputation = np.full(num_raters, cfg.initial_reputation, dtype=np.float64)
    if warm_start is not None:
        warm_start = np.asarray(warm_start, dtype=np.float64)
        if warm_start.shape != reputation.shape:
            raise ValidationError(
                f"warm_start shape {warm_start.shape} does not match {num_raters} raters"
            )
        reputation = np.clip(warm_start, 0.0, 1.0)

    quality, reputation, counts, iterations, residuals = _segmented_solve(
        rater_idx,
        review_idx,
        values,
        num_rater_slots=num_raters,
        num_review_slots=num_reviews,
        row_cat=np.zeros(len(values), dtype=np.int64),
        rater_slot_cat=np.zeros(num_raters, dtype=np.int64),
        review_slot_cat=np.zeros(num_reviews, dtype=np.int64),
        num_segments=1,
        cfg=cfg,
        reputation=reputation,
    )
    return ArrayFixedPoint(
        quality=quality,
        reputation=reputation,
        rating_counts=counts,
        iterations=int(iterations[0]),
        residual=float(residuals[0]),
    )


def solve_all_categories(
    columns: ColumnarRatings,
    config: RiggsConfig | None = None,
    *,
    warm_start: Mapping[str, float] | None = None,
) -> BatchedFixedPoints:
    """Solve eqs. 1-2 for *every* category in shared batched sweeps.

    Parameters
    ----------
    columns:
        A columnar ratings view -- anything shaped like
        :class:`repro.community.CommunityColumns`: ``users`` /
        ``categories`` label axes, a category-major global review axis
        (``review_ids``, ``review_category_idx``) and category-major rating
        columns (``srt_rater_idx``, ``srt_review_idx``, ``srt_values``,
        ``rating_cat_starts``).
    warm_start:
        Optional ``{rater_id: reputation}`` seed applied to every
        category's slots, exactly like :func:`solve_category`'s.

    Returns
    -------
    BatchedFixedPoints
        Per-slot arrays plus per-category iteration counts and residuals.
        Every category's fixed point is bitwise identical to a standalone
        :func:`solve_category` run: the sweeps reduce over globally
        flattened incidence arrays whose per-category segments preserve
        rating insertion order, and converged categories are masked out of
        later sweeps so their values (and iteration counts) freeze exactly
        where the standalone solver would stop.

    Raises
    ------
    ConvergenceError
        If any category fails to reach ``tolerance`` within
        ``config.max_iterations`` sweeps.
    """
    cfg = config or RiggsConfig()
    categories = tuple(columns.categories)
    starts = np.asarray(columns.rating_cat_starts, dtype=np.int64)
    rows_per_cat = np.diff(starts)
    nonempty = np.asarray(np.flatnonzero(rows_per_cat > 0), dtype=np.int64)
    num_users = len(columns.users)
    iterations = np.zeros(len(categories), dtype=np.int64)
    residuals = np.zeros(len(categories), dtype=np.float64)

    if len(nonempty) == 0:
        return BatchedFixedPoints(
            categories=categories,
            users=columns.users,
            review_ids=tuple(columns.review_ids),
            nonempty_categories=nonempty,
            rated_review_idx=np.empty(0, dtype=np.int64),
            quality=np.empty(0),
            review_slot_cat=np.empty(0, dtype=np.int64),
            rater_slot_user=np.empty(0, dtype=np.int64),
            rater_slot_cat=np.empty(0, dtype=np.int64),
            reputation=np.empty(0),
            rater_counts=np.empty(0, dtype=np.int64),
            iterations=iterations,
            residuals=residuals,
        )

    rater_pos = np.ascontiguousarray(columns.srt_rater_idx, dtype=np.int64)
    review_pos = np.ascontiguousarray(columns.srt_review_idx, dtype=np.int64)
    values = np.ascontiguousarray(columns.srt_values, dtype=np.float64)
    _validate_rating_arrays(rater_pos, review_pos, values, len(columns.review_ids))

    # compact segment index per category (nonempty categories only)
    compact_of_cat = np.full(len(categories), -1, dtype=np.int64)
    compact_of_cat[nonempty] = np.arange(len(nonempty))
    row_cat = compact_of_cat[np.repeat(np.arange(len(categories)), rows_per_cat)]

    # review slots: the rated subset of the (category-major) review axis
    # (sorted-dedup instead of np.unique -- the hash-based unique kernel is
    # several times slower than an int64 sort at this size)
    sorted_reviews = np.sort(review_pos)
    rated = sorted_reviews[np.r_[True, sorted_reviews[1:] != sorted_reviews[:-1]]]
    # position of each review on the rated-slot axis, via a dense lookup
    # table (O(1) gathers beat a binary search over every rating row)
    slot_of_review = np.empty(len(columns.review_ids), dtype=np.int64)
    slot_of_review[rated] = np.arange(len(rated), dtype=np.int64)
    review_slot = slot_of_review[review_pos]
    review_slot_cat = compact_of_cat[
        np.asarray(columns.review_category_idx, dtype=np.int64)[rated]
    ]

    # rater slots: one per (category, rater) incidence
    rater_keys = row_cat * np.int64(num_users) + rater_pos
    uniq_keys, rater_slot = np.unique(rater_keys, return_inverse=True)
    rater_slot_cat = uniq_keys // num_users
    rater_slot_user = uniq_keys % num_users

    reputation = np.full(len(uniq_keys), cfg.initial_reputation, dtype=np.float64)
    if warm_start:
        labels = columns.users.labels
        warm_hits = 0
        for slot, user in enumerate(rater_slot_user.tolist()):
            previous = warm_start.get(labels[user])
            if previous is not None:
                reputation[slot] = min(1.0, max(0.0, float(previous)))
                warm_hits += 1
        obs.add("step1.warm_start_hits", warm_hits)

    with obs.span(
        "step1.solve_all", categories=len(nonempty), ratings=len(values)
    ):
        quality, reputation, counts, seg_iterations, seg_residuals = _segmented_solve(
            rater_slot.astype(np.int64),
            review_slot,
            values,
            num_rater_slots=len(uniq_keys),
            num_review_slots=len(rated),
            row_cat=row_cat,
            rater_slot_cat=rater_slot_cat,
            review_slot_cat=review_slot_cat,
            num_segments=len(nonempty),
            cfg=cfg,
            reputation=reputation,
        )
    iterations[nonempty] = seg_iterations
    residuals[nonempty] = seg_residuals
    if obs.tracing_active():
        # per-category convergence telemetry (the batched solver converges
        # or raises, so these records always carry converged=True)
        for c in nonempty.tolist():
            obs.convergence(
                "step1.riggs",
                iterations=int(iterations[c]),
                residual=float(residuals[c]),
                tolerance=cfg.tolerance,
                converged=True,
                category=categories[c],
            )
            obs.observe("step1.sweeps", float(iterations[c]))
    return BatchedFixedPoints(
        categories=categories,
        users=columns.users,
        review_ids=tuple(columns.review_ids),
        nonempty_categories=nonempty,
        rated_review_idx=rated,
        quality=quality,
        review_slot_cat=review_slot_cat,
        rater_slot_user=rater_slot_user,
        rater_slot_cat=rater_slot_cat,
        reputation=reputation,
        rater_counts=counts,
        iterations=iterations,
        residuals=residuals,
    )


def _validate_rating_arrays(
    rater_idx: IntArray,
    review_idx: IntArray,
    values: FloatArray,
    num_reviews: int,
) -> None:
    if np.isnan(values).any() or (
        values.size and (values.min() < 0.0 or values.max() > 1.0)
    ):
        raise ValidationError("rating values must lie in [0, 1]")
    keys = np.sort(rater_idx * np.int64(max(num_reviews, 1)) + review_idx)
    if len(keys) > 1 and bool(np.any(keys[1:] == keys[:-1])):
        raise ValidationError("duplicate rating for a (rater, review) pair")


def _segmented_solve(
    rater_slot: IntArray,
    review_slot: IntArray,
    values: FloatArray,
    *,
    num_rater_slots: int,
    num_review_slots: int,
    row_cat: IntArray,
    rater_slot_cat: IntArray,
    review_slot_cat: IntArray,
    num_segments: int,
    cfg: RiggsConfig,
    reputation: FloatArray,
) -> tuple[FloatArray, FloatArray, IntArray, IntArray, FloatArray]:
    """Shared sweep loop over category-segmented incidence arrays.

    Every segment (category) is an independent fixed point; the sweeps run
    them simultaneously on the flat arrays and mask converged segments out
    so they stop updating.  Segment membership arrays must be nondecreasing
    and each segment must own at least one rating row.
    """
    counts = np.bincount(rater_slot, minlength=num_rater_slots).astype(np.float64)
    if cfg.experience_discount_enabled:
        discount = experience_discount(counts)
    else:
        discount = np.ones(num_rater_slots, dtype=np.float64)
    plain_sum = np.bincount(review_slot, weights=values, minlength=num_review_slots)
    plain_count = np.bincount(review_slot, minlength=num_review_slots).astype(np.float64)
    plain_mean = plain_sum / np.maximum(plain_count, 1.0)

    # rater slots with no ratings (possible via explicit num_raters) start at
    # their stationary value so they never delay convergence
    empty_raters = counts == 0.0
    if empty_raters.any():
        reputation = np.where(
            empty_raters, np.clip(discount, 0.0, 1.0), reputation
        )

    seg_starts_r = np.searchsorted(review_slot_cat, np.arange(num_segments))
    seg_starts_u = np.searchsorted(rater_slot_cat, np.arange(num_segments))

    quality = np.zeros(num_review_slots, dtype=np.float64)
    seg_iterations = np.zeros(num_segments, dtype=np.int64)
    seg_residuals = np.zeros(num_segments, dtype=np.float64)
    active = np.ones(num_segments, dtype=bool)
    all_active = True
    rows_rater, rows_review, rows_values = rater_slot, review_slot, values
    slot_active_r = np.ones(num_review_slots, dtype=bool)
    slot_active_u = np.ones(num_rater_slots, dtype=bool)

    for sweep in range(1, cfg.max_iterations + 1):
        # eq. 1 on the active rows
        if cfg.weight_by_rater_reputation:
            weights = reputation[rows_rater]
        else:
            weights = np.ones_like(rows_values)
        weighted_sum = np.bincount(
            rows_review, weights=weights * rows_values, minlength=num_review_slots
        )
        weight_sum = np.bincount(rows_review, weights=weights, minlength=num_review_slots)
        safe = weight_sum > 0.0
        new_quality = np.where(
            safe, np.divide(weighted_sum, np.where(safe, weight_sum, 1.0)), plain_mean
        )
        new_quality = np.clip(new_quality, 0.0, 1.0)
        if not all_active:
            new_quality = np.where(slot_active_r, new_quality, quality)

        # eq. 2 on the active rows, against the fresh qualities
        deviations = np.abs(new_quality[rows_review] - rows_values)
        total_dev = np.bincount(
            rows_rater, weights=deviations, minlength=num_rater_slots
        )
        mad = total_dev / np.maximum(counts, 1.0)
        new_reputation = np.clip(discount * (1.0 - mad), 0.0, 1.0)
        if cfg.damping > 0.0:
            new_reputation = (
                cfg.damping * reputation + (1.0 - cfg.damping) * new_reputation
            )
        if not all_active:
            new_reputation = np.where(slot_active_u, new_reputation, reputation)
        elif empty_raters.any():
            new_reputation = np.where(empty_raters, reputation, new_reputation)

        q_delta = np.abs(new_quality - quality)
        r_delta = np.abs(new_reputation - reputation)
        quality = new_quality
        reputation = new_reputation

        seg_res = np.maximum(
            np.maximum.reduceat(q_delta, seg_starts_r),
            np.maximum.reduceat(r_delta, seg_starts_u),
        )
        seg_iterations[active] = sweep
        seg_residuals[active] = seg_res[active]
        newly = active & (seg_res < cfg.tolerance)
        if newly.any():
            active = active & ~newly
            if not active.any():
                break
            all_active = False
            row_keep = active[row_cat]
            rows_rater = rater_slot[row_keep]
            rows_review = review_slot[row_keep]
            rows_values = values[row_keep]
            slot_active_r = active[review_slot_cat]
            slot_active_u = active[rater_slot_cat]
    else:
        worst = float(seg_residuals[active].max())
        raise ConvergenceError(
            f"Riggs fixed point did not converge in {cfg.max_iterations} sweeps "
            f"for {int(active.sum())} of {num_segments} categories "
            f"(worst residual {worst:.3e} > tolerance {cfg.tolerance:.3e})",
            iterations=cfg.max_iterations,
            residual=worst,
            tolerance=cfg.tolerance,
        )

    return quality, reputation, counts.astype(np.int64), seg_iterations, seg_residuals
