"""Baseline reputation models (comparators for the Riggs machinery).

The paper adopts Riggs' model without comparing it against simpler
alternatives.  These baselines fill that gap for the ablation experiment
``experiments.reputation_baselines``:

- **mean-received**: a writer's reputation is the plain mean of all
  ratings their reviews received (no rater weighting, no experience
  discount); a rater's reputation is ``1 - MAD`` against plain-mean
  qualities;
- **activity**: reputation is the user's normalised log activity volume
  (pure "quantity", no quality signal at all).

All functions return :class:`repro.matrix.UserCategoryMatrix` aligned
with the community's axes, directly comparable to
:class:`repro.reputation.ExpertiseEstimator` output.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.community import Community
from repro.matrix import LabelIndex, UserCategoryMatrix

__all__ = ["baseline_expertise", "baseline_rater_reputation", "BASELINE_KINDS"]

BASELINE_KINDS = ("mean_received", "activity")


def baseline_expertise(community: Community, kind: str = "mean_received") -> UserCategoryMatrix:
    """Writer-reputation baseline matrix (comparator for eq. 3)."""
    _require_kind(kind)
    users = LabelIndex(community.user_ids())
    categories = LabelIndex(community.category_ids())
    matrix = UserCategoryMatrix(users, categories)

    for category_id in categories:
        if kind == "activity":
            _fill_activity(matrix, category_id, community.writing_counts(category_id))
            continue
        received: dict[str, list[float]] = {}
        for review in community.reviews_in_category(category_id):
            values = [v for _, v in community.ratings_of_review(review.review_id)]
            if values:
                received.setdefault(review.writer_id, []).extend(values)
        for writer_id, values in received.items():
            matrix.set(writer_id, category_id, float(np.mean(values)))
    return matrix


def baseline_rater_reputation(
    community: Community, kind: str = "mean_received"
) -> UserCategoryMatrix:
    """Rater-reputation baseline matrix (comparator for eq. 2)."""
    _require_kind(kind)
    users = LabelIndex(community.user_ids())
    categories = LabelIndex(community.category_ids())
    matrix = UserCategoryMatrix(users, categories)

    for category_id in categories:
        if kind == "activity":
            _fill_activity(matrix, category_id, community.rating_counts(category_id))
            continue
        # plain-mean review qualities, then 1 - MAD per rater (no discount)
        quality: dict[str, float] = {}
        for review in community.reviews_in_category(category_id):
            values = [v for _, v in community.ratings_of_review(review.review_id)]
            if values:
                quality[review.review_id] = float(np.mean(values))
        deviations: dict[str, list[float]] = {}
        for review_id, q in quality.items():
            for rater_id, value in community.ratings_of_review(review_id):
                deviations.setdefault(rater_id, []).append(abs(q - value))
        for rater_id, devs in deviations.items():
            matrix.set(rater_id, category_id, max(0.0, 1.0 - float(np.mean(devs))))
    return matrix


def _fill_activity(
    matrix: UserCategoryMatrix, category_id: str, counts: dict[str, int]
) -> None:
    if not counts:
        return
    max_log = max(np.log1p(c) for c in counts.values())
    for user_id, count in counts.items():
        matrix.set(user_id, category_id, float(np.log1p(count) / max(max_log, 1e-12)))


def _require_kind(kind: str) -> None:
    if kind not in BASELINE_KINDS:
        raise ValidationError(f"kind must be one of {BASELINE_KINDS}, got {kind!r}")
