"""Writer reputation / expertise within one category (paper eq. 3).

.. math::

    rep(u^w) = \\Big(1 - \\frac{1}{n_w + 1}\\Big)
               \\frac{\\sum_{j \\in R(u^w)} q(r_j)}{n_w}

where ``R(u^w)`` is the set of the writer's reviews in the category and
``n_w = |R(u^w)|``.
"""

# repro: hot-path

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.common.arrays import FloatArray, IntArray
from repro.common.contracts import array_spec, checked_arrays
from repro.common.errors import ValidationError
from repro.reputation.riggs import experience_discount

__all__ = ["writer_reputations", "writer_reputation_matrix"]


def writer_reputations(
    review_writers: Mapping[str, str],
    review_quality: Mapping[str, float],
    *,
    experience_discount_enabled: bool = True,
    unrated_policy: str = "exclude",
) -> dict[str, float]:
    """Aggregate review qualities into per-writer reputation (eq. 3).

    Parameters
    ----------
    review_writers:
        ``{review_id: writer_id}`` for every review the writer has written
        in the category (rated or not).
    review_quality:
        ``{review_id: quality}`` from the category fixed point.  Reviews
        missing here received no ratings.
    experience_discount_enabled:
        Ablation A2: drop the ``1 - 1/(n+1)`` factor when ``False``.
    unrated_policy:
        How to treat reviews that received no ratings:

        - ``"exclude"`` (default): they contribute to neither the quality
          sum nor ``n_w`` -- reputation reflects only observed evidence;
        - ``"zero"``: they count in ``n_w`` with quality 0 -- unrated output
          drags reputation down;
        - ``"strict"``: raise if any review is unrated.

    Returns
    -------
    dict
        ``{writer_id: reputation in [0, 1]}``.  Writers none of whose
        reviews were rated get reputation ``0.0`` under ``"exclude"``.
    """
    if unrated_policy not in ("exclude", "zero", "strict"):
        raise ValidationError(
            f"unrated_policy must be 'exclude', 'zero' or 'strict', got {unrated_policy!r}"
        )
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for review_id, writer_id in review_writers.items():
        quality = review_quality.get(review_id)
        if quality is None:
            if unrated_policy == "strict":
                raise ValidationError(f"review {review_id!r} has no quality (unrated)")
            if unrated_policy == "exclude":
                sums.setdefault(writer_id, 0.0)
                counts.setdefault(writer_id, 0)
                continue
            quality = 0.0
        sums[writer_id] = sums.get(writer_id, 0.0) + float(quality)
        counts[writer_id] = counts.get(writer_id, 0) + 1

    reputations: dict[str, float] = {}
    for writer_id, n in counts.items():
        if n == 0:
            reputations[writer_id] = 0.0
            continue
        mean_quality = sums[writer_id] / n
        if experience_discount_enabled:
            factor = float(experience_discount(n))
        else:
            factor = 1.0
        reputations[writer_id] = float(np.clip(factor * mean_quality, 0.0, 1.0))
    return reputations


@checked_arrays(
    review_writer_idx=array_spec(ndim=1, kind="iu", non_negative=True, length_of="reviews"),
    review_category_idx=array_spec(
        ndim=1, kind="iu", non_negative=True, length_of="reviews"
    ),
    rated_review_idx=array_spec(ndim=1, kind="iu", non_negative=True, length_of="rated"),
    rated_quality=array_spec(ndim=1, kind="if", finite=True, length_of="rated"),
)
def writer_reputation_matrix(
    review_writer_idx: IntArray,
    review_category_idx: IntArray,
    num_users: int,
    num_categories: int,
    rated_review_idx: IntArray,
    rated_quality: FloatArray,
    *,
    experience_discount_enabled: bool = True,
    unrated_policy: str = "exclude",
) -> FloatArray:
    """Eq. 3 for every category at once, on columnar review arrays.

    Parameters
    ----------
    review_writer_idx, review_category_idx:
        Writer / category position per review on the global review axis
        (see :class:`repro.community.CommunityColumns`).
    rated_review_idx, rated_quality:
        Global positions of the rated reviews and their converged
        qualities (``BatchedFixedPoints.rated_review_idx`` / ``.quality``).
    unrated_policy:
        As on :func:`writer_reputations`.

    Returns
    -------
    numpy.ndarray
        Dense ``(num_users, num_categories)`` writer reputations -- the
        values of the paper's Expertise matrix ``E``, bitwise identical to
        the per-category dict aggregation.
    """
    if unrated_policy not in ("exclude", "zero", "strict"):
        raise ValidationError(
            f"unrated_policy must be 'exclude', 'zero' or 'strict', got {unrated_policy!r}"
        )
    if unrated_policy == "strict" and len(rated_review_idx) != len(review_writer_idx):
        raise ValidationError(
            f"{len(review_writer_idx) - len(rated_review_idx)} reviews have no "
            "quality (unrated)"
        )
    num_cells = num_users * num_categories
    rated_keys = (
        review_writer_idx[rated_review_idx] * num_categories
        + review_category_idx[rated_review_idx]
    )
    sums = np.bincount(rated_keys, weights=rated_quality, minlength=num_cells)
    if unrated_policy == "zero":
        all_keys = review_writer_idx * num_categories + review_category_idx
        counts = np.bincount(all_keys, minlength=num_cells).astype(np.float64)
    else:
        counts = np.bincount(rated_keys, minlength=num_cells).astype(np.float64)
    mean_quality = sums / np.maximum(counts, 1.0)
    if experience_discount_enabled:
        factor = experience_discount(counts)
    else:
        factor = np.ones(num_cells, dtype=np.float64)
    reputations = np.where(
        counts > 0.0, np.clip(factor * mean_quality, 0.0, 1.0), 0.0
    )
    return reputations.reshape(num_users, num_categories)
