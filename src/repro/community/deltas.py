"""Structured mutation records: the community's change log.

Every successful :class:`repro.community.Community` mutator appends one
:class:`Delta` to the community's :class:`ChangeLog` (lint rule R7 enforces
this).  Downstream consumers -- the delta-aware ``Community.columns()``
cache, :class:`repro.reputation.IncrementalExpertise`, the staged
:class:`repro.engine.Engine` -- subscribe by remembering the log's
``epoch`` and asking for :meth:`ChangeLog.since` their cursor, instead of
reacting to a blind version bump with a full rebuild.

Epochs are monotonically increasing, starting at 1 for the first delta; a
freshly created community sits at epoch 0.  The log is append-only and
per-community, so a cursor taken from one community is meaningless on
another.

Long-running communities would otherwise accumulate one :class:`Delta`
per mutation forever, so a coordinator that knows every subscriber has
caught up (the staged :class:`repro.engine.Engine` after an update) can
:meth:`ChangeLog.compact` the consumed prefix.  Compaction never renames
epochs -- it only forgets deltas at or below the new :attr:`ChangeLog.floor`
-- and :meth:`since` rejects cursors from before the floor, so a stale
subscriber fails loudly (and should fall back to a full rebuild) rather
than silently missing mutations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

from repro.common.errors import ValidationError

__all__ = ["Delta", "DeltaKind", "ChangeLog"]

#: What a delta records: one entity added ("user" ... "trust") or an
#: explicit recompute request for a category ("touch", no entity added).
DeltaKind = Literal["user", "category", "object", "review", "rating", "trust", "touch"]

_KINDS: frozenset[str] = frozenset(
    {"user", "category", "object", "review", "rating", "trust", "touch"}
)

#: Delta kinds that grow the (users, categories, reviews, ratings) counts
#: the columnar snapshot encodes; "object"/"trust"/"touch" do not.
_COUNTED_KINDS: tuple[str, ...] = ("user", "category", "review", "rating")


@dataclass(frozen=True, slots=True)
class Delta:
    """One recorded mutation.

    Attributes
    ----------
    epoch:
        Position in the log (1-based, strictly increasing).
    kind:
        What was added (or ``"touch"`` for an explicit recompute request).
    user_id:
        The acting user, where one exists: the registered user, the review
        writer, the rater, or the truster.
    category_id:
        The affected category, where one exists -- this is what dirty-set
        inference keys on (reviews and ratings always carry it).
    target_id:
        The added entity's own id (object/review id, the rated review, or
        the trustee).
    """

    epoch: int
    kind: DeltaKind
    user_id: str | None = None
    category_id: str | None = None
    target_id: str | None = None


class ChangeLog:
    """Append-only log of :class:`Delta` records with monotonic epochs.

    A compacted log keeps only deltas with ``epoch > floor``; epochs are
    global positions and never shift.
    """

    __slots__ = ("_deltas", "_floor")

    def __init__(self) -> None:
        self._deltas: list[Delta] = []
        self._floor = 0

    @property
    def epoch(self) -> int:
        """Epoch of the newest delta (0 when the log is empty)."""
        return self._floor + len(self._deltas)

    @property
    def floor(self) -> int:
        """Oldest epoch still replayable: :meth:`since` accepts cursors
        ``>= floor``.  0 until the first :meth:`compact`."""
        return self._floor

    def record(
        self,
        kind: DeltaKind,
        *,
        user_id: str | None = None,
        category_id: str | None = None,
        target_id: str | None = None,
    ) -> Delta:
        """Append one delta and return it (its epoch is ``self.epoch``)."""
        if kind not in _KINDS:
            raise ValidationError(f"unknown delta kind {kind!r}")
        delta = Delta(
            epoch=self.epoch + 1,
            kind=kind,
            user_id=user_id,
            category_id=category_id,
            target_id=target_id,
        )
        self._deltas.append(delta)
        return delta

    def since(self, epoch: int) -> tuple[Delta, ...]:
        """All deltas with ``delta.epoch > epoch`` (oldest first).

        ``since(floor)`` replays every retained delta; ``since(self.epoch)``
        is empty.  A cursor ahead of the log is rejected -- it can only
        come from a different community's log -- and a cursor below the
        compaction :attr:`floor` is rejected too, because deltas it never
        saw have been dropped (the caller must resynchronise in full).
        """
        if epoch < self._floor or epoch > self.epoch:
            raise ValidationError(
                f"epoch {epoch} outside this log's range "
                f"[{self._floor}, {self.epoch}]"
            )
        return tuple(self._deltas[epoch - self._floor :])

    def compact(self, upto: int | None = None) -> int:
        """Forget deltas with ``epoch <= upto``; returns how many were dropped.

        ``upto`` defaults to the newest epoch (drop everything).  Only a
        coordinator that knows every subscriber's cursor has passed
        ``upto`` may call this -- a subscriber left behind will have its
        next :meth:`since` rejected and must rebuild from scratch.
        """
        if upto is None:
            upto = self.epoch
        if upto < 0 or upto > self.epoch:
            raise ValidationError(
                f"compaction point {upto} outside this log's range "
                f"[0, {self.epoch}]"
            )
        if upto <= self._floor:
            return 0
        dropped = upto - self._floor
        del self._deltas[:dropped]
        self._floor = upto
        return dropped

    def count_growth(self, epoch: int) -> tuple[int, int, int, int]:
        """Rows the deltas after ``epoch`` added, as
        ``(users, categories, reviews, ratings)`` -- the counts the columnar
        snapshot is keyed on.  Object/trust/touch deltas contribute zeros.
        """
        deltas = self.since(epoch)
        return (
            sum(1 for d in deltas if d.kind == "user"),
            sum(1 for d in deltas if d.kind == "category"),
            sum(1 for d in deltas if d.kind == "review"),
            sum(1 for d in deltas if d.kind == "rating"),
        )

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self._deltas)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChangeLog(epoch={self.epoch})"
