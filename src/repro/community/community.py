"""The :class:`Community` aggregate: storage + integrity + typed queries.

This is the one object the reputation/affinity/trust layers consume.  It
exposes exactly the access patterns the paper's formulas need:

- reviews written per (user, category) -- eq. 3 and eq. 4's ``a^w``;
- ratings given per (user, category) -- eq. 2's ``n_u`` and eq. 4's ``a^r``;
- the ratings received by each review, with rater identity -- eq. 1;
- the direct-connection relation ``R`` (*i* rated some review of *j*) and
  per-pair rating averages -- the paper's baseline ``B`` (§IV.C);
- the explicit web of trust ``T`` when available (ground truth, §IV).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro import obs
from repro.common.errors import IntegrityError, ValidationError
from repro.community.columnar import CommunityColumns
from repro.community.deltas import ChangeLog, DeltaKind
from repro.community.model import (
    Category,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
    User,
)
from repro.store import Column, Database, ForeignKey, Schema

__all__ = ["Community"]


def _build_database(name: str) -> Database:
    db = Database(name)
    db.create_table(
        Schema(
            name="users",
            columns=[Column("user_id", str), Column("name", str, nullable=True)],
            primary_key=("user_id",),
        )
    )
    db.create_table(
        Schema(
            name="categories",
            columns=[Column("category_id", str), Column("name", str, nullable=True)],
            primary_key=("category_id",),
        )
    )
    db.create_table(
        Schema(
            name="objects",
            columns=[
                Column("object_id", str),
                Column("category_id", str),
                Column("title", str, nullable=True),
            ],
            primary_key=("object_id",),
            foreign_keys=(ForeignKey("category_id", "categories"),),
        )
    )
    db.create_table(
        Schema(
            name="reviews",
            columns=[
                Column("review_id", str),
                Column("writer_id", str),
                Column("object_id", str),
                Column("category_id", str),  # denormalised from the object
            ],
            primary_key=("review_id",),
            foreign_keys=(
                ForeignKey("writer_id", "users"),
                ForeignKey("object_id", "objects"),
                ForeignKey("category_id", "categories"),
            ),
            unique=(("writer_id", "object_id"),),  # one review per (writer, object)
        )
    )
    db.create_table(
        Schema(
            name="ratings",
            columns=[
                Column("rater_id", str),
                Column("review_id", str),
                Column("category_id", str),  # denormalised from the review
                Column("value", float),
            ],
            primary_key=("rater_id", "review_id"),
            foreign_keys=(
                ForeignKey("rater_id", "users"),
                ForeignKey("review_id", "reviews"),
                ForeignKey("category_id", "categories"),
            ),
        )
    )
    db.create_table(
        Schema(
            name="trust",
            columns=[Column("truster_id", str), Column("trustee_id", str)],
            primary_key=("truster_id", "trustee_id"),
            foreign_keys=(
                ForeignKey("truster_id", "users"),
                ForeignKey("trustee_id", "users"),
            ),
        )
    )
    reviews = db.table("reviews")
    reviews.create_index("category_id")
    reviews.create_index("writer_id")
    reviews.create_index("writer_id", "category_id")
    ratings = db.table("ratings")
    ratings.create_index("review_id")
    ratings.create_index("rater_id")
    ratings.create_index("category_id")
    ratings.create_index("rater_id", "category_id")
    objects = db.table("objects")
    objects.create_index("category_id")
    trust = db.table("trust")
    trust.create_index("truster_id")
    return db


class Community:
    """An Epinions-style review community.

    All writes go through typed ``add_*`` methods that enforce domain rules
    on top of the store's referential integrity.
    """

    def __init__(self, name: str = "community") -> None:
        self._db = _build_database(name)
        self.name = name
        self._version = 0
        self._log = ChangeLog()
        self._columns: CommunityColumns | None = None
        # (log epoch, (users, categories, reviews, ratings)) at build time
        self._columns_key: tuple[int, tuple[int, int, int, int]] | None = None

    # ------------------------------------------------------------------ writes

    @property
    def version(self) -> int:
        """Mutation counter; bumped by every successful ``add_*`` call."""
        return self._version

    @property
    def change_log(self) -> ChangeLog:
        """The per-community delta log every mutator appends to."""
        return self._log

    def _mutated(self) -> None:
        self._version += 1

    def _record(
        self,
        kind: DeltaKind,
        *,
        user_id: str | None = None,
        category_id: str | None = None,
        target_id: str | None = None,
    ) -> None:
        """Publish one delta and bump the version (the R1/R7 write hook)."""
        self._log.record(
            kind, user_id=user_id, category_id=category_id, target_id=target_id
        )
        self._mutated()

    def add_user(self, user: User | str, name: str = "") -> User:
        """Register a user (accepts a :class:`User` or a bare id)."""
        if isinstance(user, str):
            user = User(user_id=user, name=name)
        self._db.insert("users", {"user_id": user.user_id, "name": user.name})
        self._record("user", user_id=user.user_id)
        return user

    def add_category(self, category: Category | str, name: str = "") -> Category:
        """Register a category (accepts a :class:`Category` or a bare id)."""
        if isinstance(category, str):
            category = Category(category_id=category, name=name)
        self._db.insert(
            "categories", {"category_id": category.category_id, "name": category.name}
        )
        self._record("category", category_id=category.category_id)
        return category

    def add_object(self, obj: ReviewedObject) -> ReviewedObject:
        """Register a reviewable object under its category."""
        self._db.insert(
            "objects",
            {
                "object_id": obj.object_id,
                "category_id": obj.category_id,
                "title": obj.title,
            },
        )
        self._record("object", category_id=obj.category_id, target_id=obj.object_id)
        return obj

    def add_review(self, review: Review) -> Review:
        """Record a review; its category is inherited from the object.

        Raises :class:`IntegrityError` when the writer already reviewed the
        object (the paper: "a user is often allowed to write only one review
        on an object").
        """
        obj = self._db.table("objects").maybe_get(review.object_id)
        if obj is None:
            raise IntegrityError(f"review references unknown object {review.object_id!r}")
        self._db.insert(
            "reviews",
            {
                "review_id": review.review_id,
                "writer_id": review.writer_id,
                "object_id": review.object_id,
                "category_id": obj["category_id"],
            },
        )
        self._record(
            "review",
            user_id=review.writer_id,
            category_id=obj["category_id"],
            target_id=review.review_id,
        )
        return review

    def add_rating(self, rating: ReviewRating) -> ReviewRating:
        """Record a helpfulness rating of a review.

        Domain rules: the rater must not be the review's writer, and each
        (rater, review) pair may appear at most once (the primary key).
        """
        review = self._db.table("reviews").maybe_get(rating.review_id)
        if review is None:
            raise IntegrityError(f"rating references unknown review {rating.review_id!r}")
        if review["writer_id"] == rating.rater_id:
            raise IntegrityError(
                f"user {rating.rater_id!r} cannot rate their own review {rating.review_id!r}"
            )
        self._db.insert(
            "ratings",
            {
                "rater_id": rating.rater_id,
                "review_id": rating.review_id,
                "category_id": review["category_id"],
                "value": rating.value,
            },
        )
        self._record(
            "rating",
            user_id=rating.rater_id,
            category_id=review["category_id"],
            target_id=rating.review_id,
        )
        return rating

    def add_trust(self, statement: TrustStatement) -> TrustStatement:
        """Record an explicit (binary) trust statement."""
        self._db.insert(
            "trust",
            {"truster_id": statement.truster_id, "trustee_id": statement.trustee_id},
        )
        self._record(
            "trust", user_id=statement.truster_id, target_id=statement.trustee_id
        )
        return statement

    def touch(self, category_id: str | None = None) -> None:
        """Publish an explicit recompute request for ``category_id``.

        Adds no data; subscribers (e.g. the incremental Step-1 tracker)
        treat the named category -- or every category when ``None`` -- as
        dirty.  This is the change-log replacement for manual
        dirty-flagging.
        """
        if category_id is not None:
            self._require_category(category_id)
        self._record("touch", category_id=category_id)

    # ------------------------------------------------------------------ reads

    @property
    def database(self) -> Database:
        """The underlying store (read access for diagnostics and tests)."""
        return self._db

    def columns(self) -> CommunityColumns:
        """The cached columnar view of this community's reviews and ratings.

        The cache is **delta-aware**: when everything added since the last
        build is announced in the change log, the snapshot is refreshed in
        place -- appended reviews/ratings are merged into their category
        segments (:meth:`CommunityColumns.refreshed`) and trust/object
        deltas are pure cache hits, because the snapshot does not encode
        them.  Only out-of-band writes (rows inserted through
        :attr:`database` directly, which the raw row counts catch) fall
        back to a full rebuild.
        """
        counts = (
            len(self._db.table("users")),
            len(self._db.table("categories")),
            len(self._db.table("reviews")),
            len(self._db.table("ratings")),
        )
        epoch = self._log.epoch
        if self._columns is not None and self._columns_key is not None:
            old_epoch, old_counts = self._columns_key
            if old_epoch == epoch and old_counts == counts:
                obs.add("community.columns.hit")
                return self._columns
            if old_epoch < self._log.floor:
                # the deltas between the snapshot and now were compacted
                # away; nothing to replay, rebuild from scratch
                obs.add("community.columns.invalidated")
                return self._rebuild_columns(epoch, counts)
            growth = self._log.count_growth(old_epoch)
            predicted = tuple(old + new for old, new in zip(old_counts, growth))
            if predicted == counts:
                if growth == (0, 0, 0, 0):
                    # trust/object/touch deltas only: nothing the snapshot
                    # encodes changed
                    obs.add("community.columns.hit")
                    self._columns_key = (epoch, counts)
                    return self._columns
                obs.add("community.columns.refresh")
                with obs.span(
                    "community.columns.refresh",
                    new_reviews=growth[2],
                    new_ratings=growth[3],
                ):
                    self._columns = CommunityColumns.refreshed(
                        self._columns, self, old_counts
                    )
                self._columns_key = (epoch, counts)
                return self._columns
            # rows appeared that no delta announced (a direct bulk load):
            # the incremental merge cannot trust its segment bookkeeping
            obs.add("community.columns.invalidated")
        return self._rebuild_columns(epoch, counts)

    def _rebuild_columns(
        self, epoch: int, counts: tuple[int, int, int, int]
    ) -> CommunityColumns:
        obs.add("community.columns.miss")
        with obs.span(
            "community.columns.build",
            users=counts[0],
            ratings=counts[3],
        ):
            self._columns = CommunityColumns.from_community(self)
        self._columns_key = (epoch, counts)
        return self._columns

    def user_ids(self) -> list[str]:
        """All user ids, in registration order."""
        return self._db.table("users").distinct("user_id")

    def category_ids(self) -> list[str]:
        """All category ids, in registration order."""
        return self._db.table("categories").distinct("category_id")

    def object_ids(self, category_id: str | None = None) -> list[str]:
        """Object ids, optionally restricted to one category."""
        table = self._db.table("objects")
        if category_id is None:
            return table.distinct("object_id")
        return [row["object_id"] for row in table.find(category_id=category_id)]

    def has_user(self, user_id: str) -> bool:
        """Whether ``user_id`` is registered."""
        return self._db.table("users").contains(user_id)

    def num_users(self) -> int:
        """Number of registered users."""
        return len(self._db.table("users"))

    def num_categories(self) -> int:
        """Number of registered categories."""
        return len(self._db.table("categories"))

    def num_reviews(self, category_id: str | None = None) -> int:
        """Number of reviews (optionally within one category)."""
        table = self._db.table("reviews")
        if category_id is None:
            return len(table)
        return table.count(category_id=category_id)

    def num_ratings(self, category_id: str | None = None) -> int:
        """Number of review ratings (optionally within one category)."""
        table = self._db.table("ratings")
        if category_id is None:
            return len(table)
        return table.count(category_id=category_id)

    def reviews_in_category(self, category_id: str) -> list[Review]:
        """All reviews written in ``category_id``."""
        self._require_category(category_id)
        return [
            Review(
                review_id=row["review_id"],
                writer_id=row["writer_id"],
                object_id=row["object_id"],
            )
            for row in self._db.table("reviews").find(category_id=category_id)
        ]

    def review_category(self, review_id: str) -> str:
        """The category a review belongs to."""
        row = self._db.table("reviews").maybe_get(review_id)
        if row is None:
            raise ValidationError(f"unknown review {review_id!r}")
        return row["category_id"]

    def review_writer(self, review_id: str) -> str:
        """The writer of a review."""
        row = self._db.table("reviews").maybe_get(review_id)
        if row is None:
            raise ValidationError(f"unknown review {review_id!r}")
        return row["writer_id"]

    def ratings_of_review(self, review_id: str) -> list[tuple[str, float]]:
        """``(rater_id, value)`` pairs for one review, in insertion order."""
        return [
            (row["rater_id"], row["value"])
            for row in self._db.table("ratings").find(review_id=review_id)
        ]

    def reviews_by_writer(self, writer_id: str, category_id: str | None = None) -> list[str]:
        """Review ids written by ``writer_id`` (optionally in one category)."""
        table = self._db.table("reviews")
        if category_id is None:
            rows = table.find(writer_id=writer_id)
        else:
            rows = table.find(writer_id=writer_id, category_id=category_id)
        return [row["review_id"] for row in rows]

    def ratings_by_rater(
        self, rater_id: str, category_id: str | None = None
    ) -> list[tuple[str, float]]:
        """``(review_id, value)`` pairs rated by ``rater_id``."""
        table = self._db.table("ratings")
        if category_id is None:
            rows = table.find(rater_id=rater_id)
        else:
            rows = table.find(rater_id=rater_id, category_id=category_id)
        return [(row["review_id"], row["value"]) for row in rows]

    def writing_counts(self, category_id: str) -> dict[str, int]:
        """``a^w``: reviews written per user in ``category_id`` (eq. 4)."""
        self._require_category(category_id)
        return self.columns().writing_counts(category_id)

    def rating_counts(self, category_id: str) -> dict[str, int]:
        """``a^r``: review ratings given per user in ``category_id`` (eq. 4)."""
        self._require_category(category_id)
        return self.columns().rating_counts(category_id)

    def rating_triples(self, category_id: str) -> list[tuple[str, str, float]]:
        """``(rater_id, review_id, value)`` triples given in ``category_id``.

        This is exactly the input :func:`repro.reputation.solve_category`
        consumes (paper eqs. 1-2 operate per category).
        """
        self._require_category(category_id)
        return self.columns().rating_triples(category_id)

    def trust_edges(self) -> list[tuple[str, str]]:
        """All explicit trust statements as ``(truster, trustee)`` pairs."""
        return [
            (row["truster_id"], row["trustee_id"])
            for row in self._db.table("trust").rows()
        ]

    def trusts(self, truster_id: str, trustee_id: str) -> bool:
        """Whether an explicit trust statement ``truster -> trustee`` exists."""
        return self._db.table("trust").contains(truster_id, trustee_id)

    def num_trust_edges(self) -> int:
        """Number of explicit trust statements."""
        return len(self._db.table("trust"))

    def iter_ratings(self) -> Iterator[ReviewRating]:
        """Iterate over every rating in the community."""
        for row in self._db.table("ratings").rows():
            yield ReviewRating(
                rater_id=row["rater_id"],
                review_id=row["review_id"],
                value=row["value"],
            )

    def iter_reviews(self) -> Iterator[Review]:
        """Iterate over every review in the community."""
        for row in self._db.table("reviews").rows():
            yield Review(
                review_id=row["review_id"],
                writer_id=row["writer_id"],
                object_id=row["object_id"],
            )

    # -------------------------------------------------------- pairwise relations

    def direct_connections(self) -> dict[tuple[str, str], list[float]]:
        """The relation ``R`` with rating values attached.

        Returns a map ``(rater i, writer j) -> [rating values i gave to
        reviews of j]``.  ``R_ij = 1`` in the paper iff the pair is present.
        The baseline ``B_ij`` is the mean of the value list.
        """
        return self.columns().direct_connections()

    # ------------------------------------------------------------------ bulk

    @classmethod
    def from_records(
        cls,
        *,
        name: str = "community",
        users: Iterable[User | str] = (),
        categories: Iterable[Category | str] = (),
        objects: Iterable[ReviewedObject] = (),
        reviews: Iterable[Review] = (),
        ratings: Iterable[ReviewRating] = (),
        trust: Iterable[TrustStatement] = (),
    ) -> "Community":
        """Build a community from record iterables (order-safe)."""
        community = cls(name)
        for user in users:
            community.add_user(user)
        for cat in categories:
            community.add_category(cat)
        for obj in objects:
            community.add_object(obj)
        for review in reviews:
            community.add_review(review)
        for rating in ratings:
            community.add_rating(rating)
        for statement in trust:
            community.add_trust(statement)
        return community

    def summary(self) -> dict[str, int]:
        """Row counts of every entity kind."""
        return self._db.stats()

    # ------------------------------------------------------------------ internal

    def _require_category(self, category_id: str) -> None:
        if not self._db.table("categories").contains(category_id):
            raise ValidationError(f"unknown category {category_id!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.summary()
        return (
            f"Community({self.name!r}: users={s['users']}, reviews={s['reviews']}, "
            f"ratings={s['ratings']}, trust={s['trust']})"
        )
