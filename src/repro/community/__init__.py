"""Domain model of a review community (the paper's data substrate).

A :class:`Community` holds users, categories, reviewed objects, reviews,
review ratings and (optionally) explicit trust statements, with the
integrity rules of an Epinions-style site enforced:

- a user writes **at most one review per object** (paper §III.B);
- review ratings come from the 5-step helpfulness scale
  ``{0.2, 0.4, 0.6, 0.8, 1.0}`` (paper §IV.A);
- a user may rate a given review at most once, and never their own review;
- every review belongs to an object, every object to a category.

The community is backed by :class:`repro.store.Database`, so all referential
integrity is checked at insert time.
"""

from repro.community.columnar import CommunityColumns
from repro.community.community import Community
from repro.community.deltas import ChangeLog, Delta, DeltaKind
from repro.community.model import (
    HELPFULNESS_SCALE,
    Category,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
    User,
)

__all__ = [
    "Community",
    "CommunityColumns",
    "ChangeLog",
    "Delta",
    "DeltaKind",
    "User",
    "Category",
    "ReviewedObject",
    "Review",
    "ReviewRating",
    "TrustStatement",
    "HELPFULNESS_SCALE",
]
