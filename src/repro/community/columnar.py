"""Cached columnar view of a community's reviews and ratings.

The paper's hot paths (eqs. 1-4, the relation ``R``) consume ratings over
and over; materialising them as per-row Python dicts on every call is what
kept the Step-1 fit slow after the kernel layer landed.  This module holds
the remedy: one pass over the store encodes every review and rating into
integer-coded numpy columns, and every consumer afterwards works on those
arrays.

Layout
------
Reviews live on a **category-major global axis**: all reviews of category 0
first (in insertion order), then category 1, and so on.  Ratings are kept
twice -- once in community insertion order (for order-sensitive consumers
such as :meth:`CommunityColumns.direct_connections`) and once category-major
(``srt_*``), so a category's ratings are one contiguous slice.  Within a
category both views preserve insertion order, which keeps every accumulation
bitwise identical to the row-scan code it replaces.

The view is immutable; :meth:`repro.community.Community.columns` caches one
per community version and rebuilds it after any mutation.
"""

# repro: hot-path

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING

import numpy as np

from repro.common.arrays import AnyArray, FloatArray, IntArray
from repro.common.contracts import array_spec, checked_arrays
from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.community.community import Community

__all__ = ["CommunityColumns"]

# ratings grouped by (rater, writer) pair: (pair_rater_idx, pair_writer_idx,
# starts, counts, sums, order, first_seen) -- see _grouped_pairs
_PairGroups = tuple[AnyArray, AnyArray, AnyArray, AnyArray, AnyArray, AnyArray, AnyArray]


class CommunityColumns:
    """Integer-coded columnar snapshot of one community version.

    Attributes
    ----------
    users, categories:
        The axes every index column refers to (registration order).
    review_ids:
        Global review axis labels, category-major.
    review_writer_idx, review_category_idx:
        Per-review writer / category positions (``review_category_idx`` is
        nondecreasing by construction).
    review_cat_starts:
        ``(C + 1,)`` boundaries of each category's slice of the review axis.
    rater_idx, rating_review_idx, rating_category_idx, rating_values:
        Per-rating columns in community insertion order
        (``rating_review_idx`` points into the global review axis).
    srt_rater_idx, srt_review_idx, srt_values:
        The same ratings category-major (insertion order within a category).
    rating_cat_starts:
        ``(C + 1,)`` boundaries of each category's slice of the ``srt_*``
        columns.
    """

    __slots__ = (
        "users",
        "categories",
        "review_ids",
        "review_writer_idx",
        "review_category_idx",
        "review_cat_starts",
        "rater_idx",
        "rating_review_idx",
        "rating_category_idx",
        "rating_values",
        "srt_rater_idx",
        "srt_review_idx",
        "srt_values",
        "rating_cat_starts",
        "_writing_counts",
        "_rating_counts",
        "_pair_groups",
        "_review_pos",
    )

    users: LabelIndex
    categories: LabelIndex
    review_ids: tuple[str, ...]
    review_writer_idx: IntArray
    review_category_idx: IntArray
    review_cat_starts: IntArray
    rater_idx: IntArray
    rating_review_idx: IntArray
    rating_category_idx: IntArray
    rating_values: FloatArray
    srt_rater_idx: IntArray
    srt_review_idx: IntArray
    srt_values: FloatArray
    rating_cat_starts: IntArray
    _writing_counts: IntArray | None
    _rating_counts: IntArray | None
    _pair_groups: _PairGroups | None
    _review_pos: dict[str, int] | None

    @checked_arrays(
        review_writer_idx=array_spec(ndim=1, kind="i", non_negative=True, length_of="reviews"),
        review_category_idx=array_spec(
            ndim=1, kind="i", non_negative=True, length_of="reviews"
        ),
        rater_idx=array_spec(ndim=1, kind="i", non_negative=True, length_of="ratings"),
        rating_review_idx=array_spec(
            ndim=1, kind="i", non_negative=True, length_of="ratings"
        ),
        rating_values=array_spec(ndim=1, kind="f", finite=True, length_of="ratings"),
    )
    def __init__(
        self,
        *,
        users: LabelIndex,
        categories: LabelIndex,
        review_ids: tuple[str, ...],
        review_writer_idx: IntArray,
        review_category_idx: IntArray,
        rater_idx: IntArray,
        rating_review_idx: IntArray,
        rating_values: FloatArray,
        sorted_columns: tuple[IntArray, IntArray, IntArray, FloatArray, IntArray]
        | None = None,
    ) -> None:
        self.users = users
        self.categories = categories
        self.review_ids = review_ids
        self.review_writer_idx = review_writer_idx
        self.review_category_idx = review_category_idx
        self.rater_idx = rater_idx
        self.rating_review_idx = rating_review_idx
        self.rating_values = rating_values

        num_categories = len(categories)
        self.review_cat_starts = np.asarray(
            np.searchsorted(review_category_idx, np.arange(num_categories + 1)),
            dtype=np.int64,
        )
        if sorted_columns is not None:
            # a builder (see :meth:`refreshed`) already holds the
            # category-major view; it must equal what the stable sort below
            # would produce, bit for bit
            (
                self.rating_category_idx,
                self.srt_rater_idx,
                self.srt_review_idx,
                self.srt_values,
                self.rating_cat_starts,
            ) = sorted_columns
        else:
            self.rating_category_idx = (
                review_category_idx[rating_review_idx]
                if len(rating_review_idx)
                else np.empty(0, dtype=np.int64)
            )
            order = np.argsort(self.rating_category_idx, kind="stable")
            self.srt_rater_idx = rater_idx[order]
            self.srt_review_idx = rating_review_idx[order]
            self.srt_values = rating_values[order]
            self.rating_cat_starts = np.asarray(
                np.searchsorted(
                    self.rating_category_idx[order], np.arange(num_categories + 1)
                ),
                dtype=np.int64,
            )
        # the snapshot is shared through the Community.columns() cache, so
        # every column is frozen; consumers get copies via astype / fancy
        # indexing, never writable aliases of cached state
        for column in (
            self.review_writer_idx,
            self.review_category_idx,
            self.review_cat_starts,
            self.rater_idx,
            self.rating_review_idx,
            self.rating_category_idx,
            self.rating_values,
            self.srt_rater_idx,
            self.srt_review_idx,
            self.srt_values,
            self.rating_cat_starts,
        ):
            column.setflags(write=False)
        self._writing_counts = None
        self._rating_counts = None
        self._pair_groups = None
        self._review_pos = None

    # ------------------------------------------------------------------ build

    @classmethod
    def from_community(cls, community: "Community") -> "CommunityColumns":
        """Encode ``community`` into columns (one pass per table)."""
        users = LabelIndex(community.user_ids())
        categories = LabelIndex(community.category_ids())
        upos = users._positions  # bulk dict lookups, avoids per-call method cost
        cpos = categories._positions

        review_rows = list(community.database.table("reviews")._rows.values())
        num_reviews = len(review_rows)
        writer_idx = np.fromiter(
            (upos[row["writer_id"]] for row in review_rows),
            dtype=np.int64,
            count=num_reviews,
        )
        category_idx = np.fromiter(
            (cpos[row["category_id"]] for row in review_rows),
            dtype=np.int64,
            count=num_reviews,
        )
        order = np.argsort(category_idx, kind="stable")
        review_ids = tuple(review_rows[int(i)]["review_id"] for i in order)
        new_pos = {rid: pos for pos, rid in enumerate(review_ids)}

        rating_rows = list(community.database.table("ratings")._rows.values())
        num_ratings = len(rating_rows)
        rater_idx = np.fromiter(
            (upos[row["rater_id"]] for row in rating_rows),
            dtype=np.int64,
            count=num_ratings,
        )
        rating_review_idx = np.fromiter(
            (new_pos[row["review_id"]] for row in rating_rows),
            dtype=np.int64,
            count=num_ratings,
        )
        values = np.fromiter(
            (row["value"] for row in rating_rows), dtype=np.float64, count=num_ratings
        )
        out = cls(
            users=users,
            categories=categories,
            review_ids=review_ids,
            review_writer_idx=writer_idx[order],
            review_category_idx=category_idx[order],
            rater_idx=rater_idx,
            rating_review_idx=rating_review_idx,
            rating_values=values,
        )
        out._review_pos = new_pos
        return out

    @classmethod
    def refreshed(
        cls,
        old: "CommunityColumns",
        community: "Community",
        old_counts: tuple[int, int, int, int],
    ) -> "CommunityColumns":
        """Rebuild a snapshot from ``old`` plus the rows appended since.

        ``old_counts`` is the ``(users, categories, reviews, ratings)``
        row-count tuple at the time ``old`` was built; every table is
        append-only, so the rows beyond those counts are exactly the new
        ones.  New reviews are merged into their category segments with one
        stable sort over the category column -- old rows keep their
        relative order, new rows land behind them -- so the result is
        **bitwise identical** to a cold :meth:`from_community` build, while
        only the appended rows pay the per-row Python encoding cost.
        """
        old_users, old_categories, old_reviews, old_ratings = old_counts
        users = (
            LabelIndex(community.user_ids())
            if community.num_users() > old_users
            else old.users
        )
        categories = (
            LabelIndex(community.category_ids())
            if community.num_categories() > old_categories
            else old.categories
        )
        if (
            community.num_reviews() == old_reviews
            and categories is old.categories
        ):
            # the dominant steady-state delta -- new ratings on the existing
            # review axis -- skips the review re-encode entirely
            return cls._refreshed_ratings_only(old, community, users, old_ratings)
        upos = users._positions
        cpos = categories._positions

        review_rows = list(
            islice(community.database.table("reviews")._rows.values(), old_reviews, None)
        )
        new_writer_idx = np.fromiter(
            (upos[row["writer_id"]] for row in review_rows),
            dtype=np.int64,
            count=len(review_rows),
        )
        new_category_idx = np.fromiter(
            (cpos[row["category_id"]] for row in review_rows),
            dtype=np.int64,
            count=len(review_rows),
        )
        # old axis (already category-major, insertion order within each
        # category) followed by the appended reviews (insertion order):
        # a stable sort by category is the category-major order of the
        # full insertion sequence
        writer_idx = np.concatenate([old.review_writer_idx, new_writer_idx])
        category_idx = np.concatenate([old.review_category_idx, new_category_idx])
        order = np.argsort(category_idx, kind="stable")
        concat_ids = old.review_ids + tuple(row["review_id"] for row in review_rows)
        review_ids = tuple(concat_ids[int(i)] for i in order)
        # where each pre-refresh global review position landed
        moved = np.empty(len(order), dtype=np.int64)
        moved[order] = np.arange(len(order))

        rating_rows = list(
            islice(community.database.table("ratings")._rows.values(), old_ratings, None)
        )
        review_pos = {review_id: pos for pos, review_id in enumerate(review_ids)}
        new_rater_idx = np.fromiter(
            (upos[row["rater_id"]] for row in rating_rows),
            dtype=np.int64,
            count=len(rating_rows),
        )
        new_rating_review_idx = np.fromiter(
            (review_pos[row["review_id"]] for row in rating_rows),
            dtype=np.int64,
            count=len(rating_rows),
        )
        new_values = np.fromiter(
            (row["value"] for row in rating_rows),
            dtype=np.float64,
            count=len(rating_rows),
        )
        out = cls(
            users=users,
            categories=categories,
            review_ids=review_ids,
            review_writer_idx=writer_idx[order],
            review_category_idx=category_idx[order],
            rater_idx=np.concatenate([old.rater_idx, new_rater_idx]),
            rating_review_idx=np.concatenate(
                [moved[old.rating_review_idx], new_rating_review_idx]
            ),
            rating_values=np.concatenate([old.rating_values, new_values]),
        )
        out._review_pos = review_pos
        return out

    @classmethod
    def _refreshed_ratings_only(
        cls,
        old: "CommunityColumns",
        community: "Community",
        users: LabelIndex,
        old_ratings: int,
    ) -> "CommunityColumns":
        """Refresh when only ratings (and possibly inert rows) were appended.

        The review axis is untouched, so every review-side column carries
        over; the appended ratings splice into the ends of their categories'
        ``srt_*`` segments, which is exactly where the stable category sort
        of :meth:`from_community` would land them.  The result is bitwise
        identical to a cold build.
        """
        upos = users._positions
        rating_rows = list(
            islice(community.database.table("ratings")._rows.values(), old_ratings, None)
        )
        num_new = len(rating_rows)
        review_pos = old.review_positions()
        new_rater_idx = np.fromiter(
            (upos[row["rater_id"]] for row in rating_rows), dtype=np.int64, count=num_new
        )
        new_review_idx = np.fromiter(
            (review_pos[row["review_id"]] for row in rating_rows),
            dtype=np.int64,
            count=num_new,
        )
        new_values = np.fromiter(
            (row["value"] for row in rating_rows), dtype=np.float64, count=num_new
        )
        new_cat_idx = (
            old.review_category_idx[new_review_idx]
            if num_new
            else np.empty(0, dtype=np.int64)
        )

        num_categories = len(old.categories)
        counts = np.bincount(new_cat_idx, minlength=num_categories)
        shift = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
        starts = np.asarray(old.rating_cat_starts + shift, dtype=np.int64)
        # each appended rating lands at the end of its category's segment,
        # after its same-category predecessors (insertion order preserved)
        order = np.argsort(new_cat_idx, kind="stable")
        sorted_cats = new_cat_idx[order]
        rank = np.arange(num_new, dtype=np.int64) - shift[sorted_cats]
        positions = old.rating_cat_starts[sorted_cats + 1] + shift[sorted_cats] + rank
        total = old.srt_values.size + num_new
        keep = np.ones(total, dtype=bool)
        keep[positions] = False
        srt_rater_idx = np.empty(total, dtype=np.int64)
        srt_review_idx = np.empty(total, dtype=np.int64)
        srt_values = np.empty(total, dtype=np.float64)
        srt_rater_idx[keep] = old.srt_rater_idx
        srt_review_idx[keep] = old.srt_review_idx
        srt_values[keep] = old.srt_values
        srt_rater_idx[positions] = new_rater_idx[order]
        srt_review_idx[positions] = new_review_idx[order]
        srt_values[positions] = new_values[order]

        out = cls(
            users=users,
            categories=old.categories,
            review_ids=old.review_ids,
            review_writer_idx=old.review_writer_idx,
            review_category_idx=old.review_category_idx,
            rater_idx=np.concatenate([old.rater_idx, new_rater_idx]),
            rating_review_idx=np.concatenate([old.rating_review_idx, new_review_idx]),
            rating_values=np.concatenate([old.rating_values, new_values]),
            sorted_columns=(
                np.concatenate([old.rating_category_idx, new_cat_idx]),
                srt_rater_idx,
                srt_review_idx,
                srt_values,
                starts,
            ),
        )
        out._review_pos = review_pos
        return out

    # ------------------------------------------------------------------ shape

    @property
    def num_reviews(self) -> int:
        """Number of reviews on the global axis."""
        return len(self.review_ids)

    @property
    def num_ratings(self) -> int:
        """Number of ratings."""
        return len(self.rating_values)

    def reviews_slice(self, category_id: str) -> slice:
        """Slice of the review axis holding ``category_id``'s reviews."""
        c = self.categories.position(category_id)
        return slice(int(self.review_cat_starts[c]), int(self.review_cat_starts[c + 1]))

    def ratings_slice(self, category_id: str) -> slice:
        """Slice of the ``srt_*`` columns holding ``category_id``'s ratings."""
        c = self.categories.position(category_id)
        return slice(int(self.rating_cat_starts[c]), int(self.rating_cat_starts[c + 1]))

    # ------------------------------------------------------------------ readers

    def review_positions(self) -> dict[str, int]:
        """``{review_id: global position}`` over the review axis (cached).

        Built lazily and shared across ratings-only refreshes (the review
        axis is identical there), so steady-state updates never rebuild it.
        """
        if self._review_pos is None:
            self._review_pos = {
                review_id: pos for pos, review_id in enumerate(self.review_ids)
            }
        return self._review_pos

    def rating_triples(self, category_id: str) -> list[tuple[str, str, float]]:
        """``(rater_id, review_id, value)`` triples, insertion order."""
        sl = self.ratings_slice(category_id)
        ulabels = self.users.labels
        rlabels = self.review_ids
        return [
            (ulabels[i], rlabels[j], v)
            for i, j, v in zip(
                self.srt_rater_idx[sl].tolist(),
                self.srt_review_idx[sl].tolist(),
                self.srt_values[sl].tolist(),
            )
        ]

    def writing_counts_matrix(self) -> IntArray:
        """``(U, C)`` reviews written per (user, category) -- eq. 4's ``a^w``.

        The returned array is the cached snapshot itself (read-only); use
        ``.copy()`` for a private mutable version.
        """
        if self._writing_counts is None:
            num_cells = len(self.users) * len(self.categories)
            keys = self.review_writer_idx * len(self.categories) + self.review_category_idx
            counts = np.asarray(
                np.bincount(keys, minlength=num_cells), dtype=np.int64
            ).reshape(len(self.users), len(self.categories))
            counts.setflags(write=False)
            self._writing_counts = counts
        return self._writing_counts

    def rating_counts_matrix(self) -> IntArray:
        """``(U, C)`` ratings given per (user, category) -- eq. 4's ``a^r``.

        The returned array is the cached snapshot itself (read-only); use
        ``.copy()`` for a private mutable version.
        """
        if self._rating_counts is None:
            num_cells = len(self.users) * len(self.categories)
            keys = self.rater_idx * len(self.categories) + self.rating_category_idx
            counts = np.asarray(
                np.bincount(keys, minlength=num_cells), dtype=np.int64
            ).reshape(len(self.users), len(self.categories))
            counts.setflags(write=False)
            self._rating_counts = counts
        return self._rating_counts

    def writing_counts(self, category_id: str) -> dict[str, int]:
        """Per-writer review count in one category, first-seen order."""
        sl = self.reviews_slice(category_id)
        writers = self.review_writer_idx[sl]
        uniq, first, counts = np.unique(writers, return_index=True, return_counts=True)
        order = np.argsort(first, kind="stable")
        labels = self.users.labels
        return {labels[int(uniq[i])]: int(counts[i]) for i in order}

    def rating_counts(self, category_id: str) -> dict[str, int]:
        """Per-rater rating count in one category, first-seen order."""
        sl = self.ratings_slice(category_id)
        raters = self.srt_rater_idx[sl]
        uniq, first, counts = np.unique(raters, return_index=True, return_counts=True)
        order = np.argsort(first, kind="stable")
        labels = self.users.labels
        return {labels[int(uniq[i])]: int(counts[i]) for i in order}

    # ------------------------------------------------------ pairwise relation R

    def _grouped_pairs(self) -> _PairGroups:
        """Ratings grouped by (rater, writer) pair.

        Returns ``(pair_rater_idx, pair_writer_idx, starts, counts, sums,
        order, first_seen)`` where ``order`` permutes the insertion-order
        rating columns so each pair's ratings are contiguous (insertion
        order within a pair) and ``starts``/``counts`` delimit the groups.
        """
        if self._pair_groups is None:
            writer_per_rating = (
                self.review_writer_idx[self.rating_review_idx]
                if len(self.rating_review_idx)
                else np.empty(0, dtype=np.int64)
            )
            keys = self.rater_idx * len(self.users) + writer_per_rating
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            if len(sorted_keys):
                boundary = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
                starts = np.flatnonzero(boundary)
                counts = np.diff(np.r_[starts, len(sorted_keys)])
                # bincount accumulates strictly left-to-right, so each
                # pair's sum is bitwise what Python's sum() over its
                # insertion-order values produces (reduceat would differ
                # by an ulp on long groups via pairwise summation)
                group = np.cumsum(boundary) - 1
                sums = np.bincount(
                    group, weights=self.rating_values[order], minlength=len(starts)
                )
            else:
                starts = np.empty(0, dtype=np.int64)
                counts = np.empty(0, dtype=np.int64)
                sums = np.empty(0, dtype=np.float64)
            unique_keys = sorted_keys[starts] if len(sorted_keys) else sorted_keys
            n = max(len(self.users), 1)
            groups: _PairGroups = (
                unique_keys // n,
                unique_keys % n,
                starts,
                counts,
                sums,
                order,
                order[starts] if len(sorted_keys) else starts,
            )
            for arr in groups:
                arr.setflags(write=False)
            self._pair_groups = groups
        return self._pair_groups

    def direct_connection_arrays(
        self, *, include_self: bool = False
    ) -> tuple[IntArray, IntArray, IntArray, FloatArray]:
        """Unique ``(rater, writer)`` pairs of ``R`` as position arrays.

        Returns ``(rater_pos, writer_pos, counts, means)``; self-pairs are
        dropped unless ``include_self`` (they carry no trust signal).
        """
        rater, writer, _starts, counts, sums, _order, _first = self._grouped_pairs()
        means = sums / np.maximum(counts, 1)
        if not include_self and len(rater):
            keep = rater != writer
            return rater[keep], writer[keep], counts[keep], means[keep]
        return rater, writer, counts.copy(), means

    def direct_connections(self) -> dict[tuple[str, str], list[float]]:
        """The relation ``R`` with per-pair rating value lists attached.

        Pairs appear in first-seen order and each value list in insertion
        order, matching the row-scan implementation this replaces.
        """
        rater, writer, starts, counts, _sums, order, first = self._grouped_pairs()
        values = self.rating_values[order]
        labels = self.users.labels
        pairs: dict[tuple[str, str], list[float]] = {}
        for g in np.argsort(first, kind="stable"):
            start = int(starts[g])
            pairs[(labels[int(rater[g])], labels[int(writer[g])])] = values[
                start : start + int(counts[g])
            ].tolist()
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommunityColumns(users={len(self.users)}, "
            f"categories={len(self.categories)}, reviews={self.num_reviews}, "
            f"ratings={self.num_ratings})"
        )


def require_known_category(columns: CommunityColumns, category_id: str) -> None:
    """Raise :class:`ValidationError` when ``category_id`` is off-axis."""
    if category_id not in columns.categories:
        raise ValidationError(f"unknown category {category_id!r}")
