"""Value types for community entities.

These are plain frozen dataclasses; the :class:`repro.community.Community`
class owns storage and integrity.  The numeric helpfulness scale follows the
paper (§IV.A): Epinions' five rating stages *not helpful* ... *most helpful*
are mapped to ``0.2, 0.4, 0.6, 0.8, 1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError

__all__ = [
    "HELPFULNESS_SCALE",
    "is_on_scale",
    "User",
    "Category",
    "ReviewedObject",
    "Review",
    "ReviewRating",
    "TrustStatement",
]

#: The five helpfulness stages a review rating may take (paper §IV.A).
HELPFULNESS_SCALE: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)

_SCALE_SET = frozenset(HELPFULNESS_SCALE)
_SCALE_TOLERANCE = 1e-9


def is_on_scale(value: float) -> bool:
    """Whether ``value`` is (numerically) one of the five helpfulness stages."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return False
    return any(abs(value - stage) <= _SCALE_TOLERANCE for stage in HELPFULNESS_SCALE)


def _require_id(name: str, value: str) -> None:
    if not isinstance(value, str) or not value:
        raise ValidationError(f"{name} must be a non-empty string, got {value!r}")


@dataclass(frozen=True)
class User:
    """A community member (may act as review writer, rater, or both)."""

    user_id: str
    name: str = ""

    def __post_init__(self) -> None:
        _require_id("user_id", self.user_id)


@dataclass(frozen=True)
class Category:
    """A review category (the paper's *context*), e.g. a movie genre."""

    category_id: str
    name: str = ""

    def __post_init__(self) -> None:
        _require_id("category_id", self.category_id)


@dataclass(frozen=True)
class ReviewedObject:
    """Something reviews are written about (a movie, a product, ...)."""

    object_id: str
    category_id: str
    title: str = ""

    def __post_init__(self) -> None:
        _require_id("object_id", self.object_id)
        _require_id("category_id", self.category_id)


@dataclass(frozen=True)
class Review:
    """A text review ``r_j`` written by ``writer_id`` about ``object_id``."""

    review_id: str
    writer_id: str
    object_id: str

    def __post_init__(self) -> None:
        _require_id("review_id", self.review_id)
        _require_id("writer_id", self.writer_id)
        _require_id("object_id", self.object_id)


@dataclass(frozen=True)
class ReviewRating:
    """A helpfulness rating ``rho_ij`` given by ``rater_id`` to ``review_id``."""

    rater_id: str
    review_id: str
    value: float

    def __post_init__(self) -> None:
        _require_id("rater_id", self.rater_id)
        _require_id("review_id", self.review_id)
        if not is_on_scale(self.value):
            raise ValidationError(
                f"rating value must be one of {HELPFULNESS_SCALE}, got {self.value!r}"
            )


@dataclass(frozen=True)
class TrustStatement:
    """An explicit, binary trust edge ``truster -> trustee`` (the web of trust)."""

    truster_id: str
    trustee_id: str

    def __post_init__(self) -> None:
        _require_id("truster_id", self.truster_id)
        _require_id("trustee_id", self.trustee_id)
        if self.truster_id == self.trustee_id:
            raise ValidationError("a user cannot issue a trust statement about themselves")
