"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Any, Sequence

from repro.common.errors import ValidationError

__all__ = ["render_table", "format_float", "format_percent"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(render_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    if not headers:
        raise ValidationError("a table needs at least one column")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(separator)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_float(value: float, digits: int = 3) -> str:
    """Fixed-point formatting used across experiment tables."""
    return f"{value:.{digits}f}"


def format_percent(value: float, digits: int = 1) -> str:
    """Percentage formatting (``0.984`` -> ``'98.4%'``)."""
    return f"{100 * value:.{digits}f}%"


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)
