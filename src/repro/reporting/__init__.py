"""Plain-text rendering of experiment results (tables and reports)."""

from repro.reporting.tables import format_float, format_percent, render_table

__all__ = ["render_table", "format_float", "format_percent"]
