"""repro: a web of trust without explicit trust ratings.

A complete, from-scratch reproduction of

    Kim, Le, Lauw, Lim, Liu, Srivastava.
    "Building a Web of Trust without Explicit Trust Ratings."
    IEEE ICDE Workshops (ICDEW), 2008.

The library derives a dense, continuous user-to-user trust matrix from
review-rating data alone, in three steps: per-category expertise from
Riggs' reputation model (:mod:`repro.reputation`), per-category affinity
from activity counts (:mod:`repro.affinity`), and their affinity-weighted
combination (:mod:`repro.trust`).  Supporting subsystems provide the data
substrate (:mod:`repro.community`, :mod:`repro.store`,
:mod:`repro.datasets`), the paper's evaluation (:mod:`repro.metrics`,
:mod:`repro.experiments`) and the cited propagation models
(:mod:`repro.propagation`).

Quickstart
----------
>>> from repro import (
...     generate_community, ExpertiseEstimator, affiliation_matrix, derive_trust,
... )
>>> dataset = generate_community(seed=7)
>>> expertise = ExpertiseEstimator().fit(dataset.community)
>>> affinity = affiliation_matrix(dataset.community)
>>> trust = derive_trust(affinity, expertise.expertise)
"""

from repro.affinity import AffinityConfig, AffinityEstimator, affiliation_matrix
from repro.community import (
    HELPFULNESS_SCALE,
    Category,
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
    User,
)
from repro.datasets import (
    CommunityProfile,
    SyntheticDataset,
    dataset_stats,
    generate_community,
    load_epinions_community,
)
from repro.matrix import LabelIndex, UserCategoryMatrix, UserPairMatrix
from repro.reputation import (
    ExpertiseEstimator,
    ExpertiseResult,
    IncrementalExpertise,
    RiggsConfig,
    solve_category,
)
from repro.trust import (
    TrustDeriver,
    baseline_matrix,
    binarize_top_k,
    derive_trust,
    direct_connection_matrix,
    generousness,
    ground_truth_matrix,
    to_digraph,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # community
    "Community",
    "User",
    "Category",
    "ReviewedObject",
    "Review",
    "ReviewRating",
    "TrustStatement",
    "HELPFULNESS_SCALE",
    # datasets
    "CommunityProfile",
    "SyntheticDataset",
    "generate_community",
    "load_epinions_community",
    "dataset_stats",
    # matrices
    "LabelIndex",
    "UserCategoryMatrix",
    "UserPairMatrix",
    # step 1
    "RiggsConfig",
    "solve_category",
    "ExpertiseEstimator",
    "ExpertiseResult",
    "IncrementalExpertise",
    # step 2
    "AffinityConfig",
    "AffinityEstimator",
    "affiliation_matrix",
    # step 3 + evaluation machinery
    "TrustDeriver",
    "derive_trust",
    "direct_connection_matrix",
    "baseline_matrix",
    "ground_truth_matrix",
    "generousness",
    "binarize_top_k",
    "to_digraph",
]
