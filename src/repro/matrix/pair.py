"""Sparse user-by-user matrices (``T-hat``, ``B``, ``R``, ``T``)."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np
from scipy import sparse

from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex

__all__ = ["UserPairMatrix"]


class UserPairMatrix:
    """A sparse ``U x U`` matrix of user-pair values with named axes.

    Stored as a dict-of-dicts (row-major) for cheap incremental construction
    and row iteration, with conversion to :class:`scipy.sparse.csr_matrix`
    for bulk numeric work.  An explicitly stored zero is allowed (meaning
    "pair observed, value zero"), which matters when distinguishing
    *observed non-trust* from *unobserved*; :meth:`nonzero_entries` and
    :meth:`support` treat stored entries as present regardless of value.
    """

    def __init__(self, users: LabelIndex | Iterable[str]):
        self.users = users if isinstance(users, LabelIndex) else LabelIndex(users)
        self._rows: dict[int, dict[int, float]] = {}
        self._count = 0

    # ------------------------------------------------------------------ writes

    def set(self, source_id: str, target_id: str, value: float) -> None:
        """Store ``value`` for the (source, target) pair."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"pair value must be a number, got {value!r}")
        if not np.isfinite(value):
            raise ValidationError(f"pair value must be finite, got {value!r}")
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        row = self._rows.setdefault(i, {})
        if j not in row:
            self._count += 1
        row[j] = float(value)

    def accumulate(self, source_id: str, target_id: str, value: float) -> None:
        """Add ``value`` onto the stored value (treating absent as 0)."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        row = self._rows.setdefault(i, {})
        if j not in row:
            self._count += 1
            row[j] = 0.0
        row[j] += float(value)

    def discard(self, source_id: str, target_id: str) -> None:
        """Remove a stored pair (no-op when absent)."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        row = self._rows.get(i)
        if row is not None and j in row:
            del row[j]
            self._count -= 1
            if not row:
                del self._rows[i]

    # ------------------------------------------------------------------ reads

    def get(self, source_id: str, target_id: str, default: float = 0.0) -> float:
        """Stored value for the pair, or ``default`` when absent."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        row = self._rows.get(i)
        if row is None:
            return default
        return row.get(j, default)

    def contains(self, source_id: str, target_id: str) -> bool:
        """Whether the pair is explicitly stored (even with value 0)."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        row = self._rows.get(i)
        return row is not None and j in row

    def row(self, source_id: str) -> dict[str, float]:
        """All stored targets of ``source_id`` as ``{target_id: value}``."""
        i = self.users.position(source_id)
        row = self._rows.get(i, {})
        return {self.users.label(j): v for j, v in row.items()}

    def row_size(self, source_id: str) -> int:
        """Number of stored entries in the row of ``source_id``."""
        return len(self._rows.get(self.users.position(source_id), {}))

    def source_ids(self) -> list[str]:
        """Users with at least one stored outgoing entry."""
        return [self.users.label(i) for i in self._rows]

    def entries(self) -> Iterator[tuple[str, str, float]]:
        """Iterate over ``(source_id, target_id, value)`` triples."""
        for i, row in self._rows.items():
            source = self.users.label(i)
            for j, value in row.items():
                yield source, self.users.label(j), value

    def num_entries(self) -> int:
        """Number of stored pairs (including explicit zeros)."""
        return self._count

    def support(self) -> set[tuple[str, str]]:
        """The set of stored ``(source, target)`` pairs."""
        return {(s, t) for s, t, _ in self.entries()}

    def density(self) -> float:
        """Stored pairs divided by the ``U * (U - 1)`` possible ordered pairs."""
        n = len(self.users)
        possible = n * (n - 1)
        if possible == 0:
            return 0.0
        return self._count / possible

    def values(self) -> np.ndarray:
        """All stored values as a flat array (row-major order)."""
        out = np.empty(self._count, dtype=np.float64)
        k = 0
        for row in self._rows.values():
            for value in row.values():
                out[k] = value
                k += 1
        return out

    # ------------------------------------------------------------------ algebra

    def to_csr(self) -> sparse.csr_matrix:
        """Convert to a ``scipy.sparse.csr_matrix`` (explicit zeros kept)."""
        n = len(self.users)
        data: list[float] = []
        rows: list[int] = []
        cols: list[int] = []
        for i, row in self._rows.items():
            for j, value in row.items():
                rows.append(i)
                cols.append(j)
                data.append(value)
        return sparse.csr_matrix((data, (rows, cols)), shape=(n, n))

    @classmethod
    def from_csr(
        cls,
        matrix: sparse.spmatrix,
        users: LabelIndex,
        *,
        keep_zeros: bool = False,
    ) -> "UserPairMatrix":
        """Build from a scipy sparse matrix over the same user axis."""
        if matrix.shape != (len(users), len(users)):
            raise ValidationError(
                f"matrix shape {matrix.shape} does not match axis length {len(users)}"
            )
        coo = matrix.tocoo()
        out = cls(users)
        for i, j, v in zip(coo.row, coo.col, coo.data):
            if v == 0.0 and not keep_zeros:
                continue
            out.set(users.label(int(i)), users.label(int(j)), float(v))
        return out

    @classmethod
    def from_pairs(
        cls,
        users: LabelIndex | Iterable[str],
        pairs: Mapping[tuple[str, str], float] | Iterable[tuple[str, str, float]],
    ) -> "UserPairMatrix":
        """Build from a mapping ``{(source, target): value}`` or triples."""
        out = cls(users)
        if isinstance(pairs, Mapping):
            items: Iterable[tuple[str, str, float]] = (
                (s, t, v) for (s, t), v in pairs.items()
            )
        else:
            items = pairs
        for source, target, value in items:
            out.set(source, target, value)
        return out

    # ------------------------------------------------------------------ set ops

    def intersect_support(self, other: "UserPairMatrix") -> set[tuple[str, str]]:
        """Pairs stored in both matrices (paper's ``R ∩ T`` etc.)."""
        self._require_same_axis(other)
        return self.support() & other.support()

    def subtract_support(self, other: "UserPairMatrix") -> set[tuple[str, str]]:
        """Pairs stored here but not in ``other`` (paper's ``T − R`` etc.)."""
        self._require_same_axis(other)
        return self.support() - other.support()

    def restrict_to(self, pairs: set[tuple[str, str]]) -> "UserPairMatrix":
        """A new matrix keeping only the given pairs (values preserved)."""
        out = UserPairMatrix(self.users)
        for source, target, value in self.entries():
            if (source, target) in pairs:
                out.set(source, target, value)
        return out

    def _require_same_axis(self, other: "UserPairMatrix") -> None:
        if self.users != other.users:
            raise ValidationError("user axes differ; align matrices before set operations")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UserPairMatrix):
            return NotImplemented
        return self.users == other.users and dict(
            ((s, t), v) for s, t, v in self.entries()
        ) == dict(((s, t), v) for s, t, v in other.entries())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserPairMatrix(users={len(self.users)}, entries={self._count})"
