"""Sparse user-by-user matrices (``T-hat``, ``B``, ``R``, ``T``).

This module is the repo's sparse kernel layer: every hot path (trust
derivation, reputation assembly, propagation) reads and writes user-pair
state through the bulk APIs here, so the per-entry Python overhead of the
original dict-of-dicts implementation stays off the critical path.
"""

# repro: hot-path

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np
from scipy import sparse

from repro.common.arrays import FloatArray, IntArray
from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex

__all__ = ["UserPairMatrix"]


class UserPairMatrix:
    """A sparse ``U x U`` matrix of user-pair values with named axes.

    Storage is array-backed: the consolidated state is a pair of parallel
    arrays -- row-major-sorted flat keys ``i * U + j`` and their values --
    plus an ordered list of *pending* write blocks.  Bulk writes
    (:meth:`set_block`, :meth:`from_arrays`) append whole numpy blocks in
    O(1) Python calls; point writes buffer into the same pending queue.
    Reads consolidate lazily: pending blocks are merged with a single
    vectorised sort/dedup pass that keeps the **last** write per key,
    preserving overwrite semantics at O(nnz log nnz) numpy cost instead of
    O(nnz) interpreted dict operations.

    An explicitly stored zero is allowed (meaning "pair observed, value
    zero"), which matters when distinguishing *observed non-trust* from
    *unobserved*; :meth:`support` and friends treat stored entries as
    present regardless of value.

    A :class:`scipy.sparse.csr_matrix` view of the consolidated state is
    cached (:meth:`csr`) and invalidated by any write, so repeated sparse
    consumers (propagation, metrics) pay the conversion once.
    """

    def __init__(self, users: LabelIndex | Iterable[str]) -> None:
        self.users = users if isinstance(users, LabelIndex) else LabelIndex(users)
        self._n = len(self.users)
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.float64)
        # pending writes, in order: blocks of (keys, values) arrays plus a
        # cheap tuple buffer for point writes (flushed into a block whenever
        # ordering against a bulk write must be preserved)
        self._pending_blocks: list[tuple[IntArray, FloatArray]] = []
        self._pending_points: list[tuple[int, float]] = []
        # pending additive writes onto keys absent from the consolidated
        # arrays; invariant: non-empty only while the set-write queue above
        # is empty (set-writes flush it, accumulate drains the queue first),
        # so consolidation can merge it as plain base-zero sums
        self._pending_accum: dict[int, float] = {}
        self._lookup: dict[int, int] | None = None
        self._csr: sparse.csr_matrix | None = None

    # ------------------------------------------------------------------ writes

    def set(self, source_id: str, target_id: str, value: float) -> None:
        """Store ``value`` for the (source, target) pair."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"pair value must be a number, got {value!r}")
        if not np.isfinite(value):
            raise ValidationError(f"pair value must be finite, got {value!r}")
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        self._flush_accum()
        self._pending_points.append((i * self._n + j, float(value)))
        self._invalidate()

    def set_block(
        self,
        rows: IntArray | Iterable[int],
        cols: IntArray | Iterable[int],
        values: FloatArray | Iterable[float] | float,
    ) -> None:
        """Bulk-store ``values`` at integer positions ``(rows, cols)``.

        ``rows`` and ``cols`` are axis positions (see
        :meth:`LabelIndex.positions` for label conversion); a scalar
        ``values`` broadcasts across all pairs.  Later writes win over
        earlier ones, exactly like repeated :meth:`set` calls.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
            raise ValidationError(
                f"rows and cols must be equal-length 1-D arrays, got shapes "
                f"{rows.shape} and {cols.shape}"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0:
            values = np.full(rows.shape, float(values))
        elif values.shape != rows.shape:
            raise ValidationError(
                f"values shape {values.shape} does not match {rows.size} pairs"
            )
        else:
            values = values.copy()
        if values.size and not np.isfinite(values).all():
            raise ValidationError("pair values must be finite")
        n = self._n
        if rows.size:
            if rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n:
                raise ValidationError(
                    f"positions must lie in [0, {n}); got rows in "
                    f"[{rows.min()}, {rows.max()}], cols in [{cols.min()}, {cols.max()}]"
                )
        self._flush_accum()
        self._flush_points()
        self._pending_blocks.append((rows * n + cols, values))
        self._invalidate()

    def accumulate(self, source_id: str, target_id: str, value: float) -> None:
        """Add ``value`` onto the stored value (treating absent as 0).

        Amortised O(1): existing entries are updated in place (binary
        search on the sorted keys), new pairs buffer into a pending sum
        that the next consolidation folds in.
        """
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        key = i * self._n + j
        if self._pending_blocks or self._pending_points:
            self._consolidate()
        if key in self._pending_accum:
            self._pending_accum[key] += float(value)
            return
        pos = self._find(key)
        if pos is None:
            self._pending_accum[key] = float(value)
            self._invalidate()
        else:
            self._vals[pos] += float(value)
            self._csr = None

    def discard(self, source_id: str, target_id: str) -> None:
        """Remove a stored pair (no-op when absent)."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        key = i * self._n + j
        self._consolidate()
        pos = self._find(key)
        if pos is not None:
            self._keys = np.delete(self._keys, pos)
            self._vals = np.delete(self._vals, pos)
            self._invalidate()

    # ------------------------------------------------------------------ reads

    def get(self, source_id: str, target_id: str, default: float = 0.0) -> float:
        """Stored value for the pair, or ``default`` when absent."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        self._consolidate()
        pos = self._ensure_lookup().get(i * self._n + j)
        return default if pos is None else float(self._vals[pos])

    def contains(self, source_id: str, target_id: str) -> bool:
        """Whether the pair is explicitly stored (even with value 0)."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        self._consolidate()
        return i * self._n + j in self._ensure_lookup()

    def row(self, source_id: str) -> dict[str, float]:
        """All stored targets of ``source_id`` as ``{target_id: value}``."""
        lo, hi = self._row_bounds(self.users.position(source_id))
        labels = self.users.labels
        cols = (self._keys[lo:hi] % self._n).tolist()
        return {labels[j]: v for j, v in zip(cols, self._vals[lo:hi].tolist())}

    def row_size(self, source_id: str) -> int:
        """Number of stored entries in the row of ``source_id``."""
        lo, hi = self._row_bounds(self.users.position(source_id))
        return hi - lo

    def source_ids(self) -> list[str]:
        """Users with at least one stored outgoing entry (axis order)."""
        self._consolidate()
        if not self._keys.size:
            return []
        labels = self.users.labels
        return [labels[i] for i in np.unique(self._keys // self._n).tolist()]

    def entries(self) -> Iterator[tuple[str, str, float]]:
        """Iterate over ``(source_id, target_id, value)`` triples (row-major)."""
        self._consolidate()
        labels = self.users.labels
        n = self._n
        for key, value in zip(self._keys.tolist(), self._vals.tolist()):
            yield labels[key // n], labels[key % n], value

    def entries_arrays(self) -> tuple[IntArray, IntArray, FloatArray]:
        """All stored entries as ``(rows, cols, values)`` position arrays.

        Row-major sorted; this is the zero-interpretation bulk counterpart
        of :meth:`entries` and the preferred way to feed downstream numpy
        kernels.
        """
        self._consolidate()
        return self._keys // self._n, self._keys % self._n, self._vals.copy()

    def num_entries(self) -> int:
        """Number of stored pairs (including explicit zeros)."""
        self._consolidate()
        return int(self._keys.size)

    def support(self) -> set[tuple[str, str]]:
        """The set of stored ``(source, target)`` pairs as labels."""
        self._consolidate()
        return self._keys_to_pairs(self._keys)

    def support_keys(self) -> IntArray:
        """Stored pairs as sorted flat integer keys ``i * U + j`` (copy).

        The integer form is what the set operations below use internally;
        it joins against another matrix's keys with ``np.intersect1d`` /
        ``np.setdiff1d`` instead of allocating label-tuple sets.
        """
        self._consolidate()
        return self._keys.copy()

    def density(self) -> float:
        """Stored pairs divided by the ``U * (U - 1)`` possible ordered pairs."""
        possible = self._n * (self._n - 1)
        if possible == 0:
            return 0.0
        return self.num_entries() / possible

    def values(self) -> FloatArray:
        """All stored values as a flat array (row-major order)."""
        self._consolidate()
        return self._vals.copy()

    # ------------------------------------------------------------------ algebra

    def csr(self) -> sparse.csr_matrix:
        """Cached :class:`scipy.sparse.csr_matrix` view (explicit zeros kept).

        The returned matrix is shared and must be treated as read-only; it
        is rebuilt only after a write.  Use :meth:`to_csr` for a private
        mutable copy.
        """
        self._consolidate()
        if self._csr is None:
            n = self._n
            if self._keys.size:
                rows = self._keys // n
                indices = self._keys % n
                indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
                data = self._vals.copy()
            else:
                indices = np.empty(0, dtype=np.int64)
                indptr = np.zeros(n + 1, dtype=np.int64)
                data = np.empty(0, dtype=np.float64)
            matrix = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
            matrix.has_sorted_indices = True
            matrix.has_canonical_format = True
            matrix.data.setflags(write=False)
            self._csr = matrix
        return self._csr

    def to_csr(self) -> sparse.csr_matrix:
        """A fresh mutable ``csr_matrix`` copy (explicit zeros kept)."""
        return self.csr().copy()

    @classmethod
    def from_arrays(
        cls,
        users: LabelIndex | Iterable[str],
        rows: IntArray | Iterable[int],
        cols: IntArray | Iterable[int],
        values: FloatArray | Iterable[float] | float,
    ) -> "UserPairMatrix":
        """Build from position arrays in one bulk write."""
        out = cls(users)
        out.set_block(rows, cols, values)
        return out

    @classmethod
    def from_flat_sorted(
        cls,
        users: LabelIndex | Iterable[str],
        keys: IntArray,
        values: FloatArray | Iterable[float],
    ) -> "UserPairMatrix":
        """Build from already-consolidated flat keys ``i * U + j`` in O(nnz).

        The fast-path constructor for callers that hold a row-major-sorted,
        duplicate-free entry list -- e.g. patching a consolidated matrix
        with a recomputed region.  It skips the O(nnz log nnz) sort/dedup
        pass of :meth:`set_block`; ``keys`` must be strictly increasing and
        lie in ``[0, U*U)``.
        """
        out = cls(users)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        vals = np.ascontiguousarray(values, dtype=np.float64)
        if keys.ndim != 1 or vals.ndim != 1 or keys.shape != vals.shape:
            raise ValidationError(
                f"keys and values must be equal-length 1-D arrays, got shapes "
                f"{keys.shape} and {vals.shape}"
            )
        if keys.size:
            if keys[0] < 0 or keys[-1] >= out._n * out._n:
                raise ValidationError(
                    f"keys must lie in [0, {out._n * out._n}); got "
                    f"[{keys[0]}, {keys[-1]}]"
                )
            if keys.size > 1 and not bool(np.all(keys[1:] > keys[:-1])):
                raise ValidationError("keys must be strictly increasing (sorted, unique)")
            if not np.isfinite(vals).all():
                raise ValidationError("pair values must be finite")
        out._keys = keys.copy()
        out._vals = vals.copy()
        return out

    @classmethod
    def from_csr(
        cls,
        matrix: sparse.spmatrix,
        users: LabelIndex,
        *,
        keep_zeros: bool = False,
    ) -> "UserPairMatrix":
        """Build from a scipy sparse matrix over the same user axis."""
        if matrix.shape != (len(users), len(users)):
            raise ValidationError(
                f"matrix shape {matrix.shape} does not match axis length {len(users)}"
            )
        coo = matrix.tocoo()
        rows = np.asarray(coo.row, dtype=np.int64)
        cols = np.asarray(coo.col, dtype=np.int64)
        data = np.asarray(coo.data, dtype=np.float64)
        if not keep_zeros:
            nonzero = data != 0.0
            rows, cols, data = rows[nonzero], cols[nonzero], data[nonzero]
        return cls.from_arrays(users, rows, cols, data)

    @classmethod
    def from_pairs(
        cls,
        users: LabelIndex | Iterable[str],
        pairs: Mapping[tuple[str, str], float] | Iterable[tuple[str, str, float]],
    ) -> "UserPairMatrix":
        """Build from a mapping ``{(source, target): value}`` or triples."""
        out = cls(users)
        if isinstance(pairs, Mapping):
            items: Iterable[tuple[str, str, float]] = (
                (s, t, v) for (s, t), v in pairs.items()
            )
        else:
            items = pairs
        for source, target, value in items:
            out.set(source, target, value)
        return out

    # ------------------------------------------------------------------ patching

    def patched(
        self,
        users: LabelIndex,
        region: "UserPairMatrix",
        *,
        rows: IntArray,
        cols: IntArray,
    ) -> tuple["UserPairMatrix", int]:
        """Merge a recomputed ``region`` over this matrix in O(nnz).

        ``region`` holds every stored entry of ``(rows x all) | (all x
        cols)`` on the (possibly grown) ``users`` axis; this matrix's
        entries outside that region are carried over unchanged.  Both
        consolidated key sets are sorted and provably disjoint -- every
        region key has its row in ``rows`` or its column in ``cols``,
        every kept key has neither -- so the patched matrix assembles with
        one masked scatter instead of the O(nnz log nnz) consolidation
        sort.  Returns ``(patched, kept_entries)``.

        This axis must be a prefix of ``users`` (append-only growth keeps
        flat keys in row-major order: ``j < n_old <= n``).
        """
        if region.users != users:
            raise ValidationError("region must be indexed by the patched user axis")
        n = len(users)
        n_old = self._n
        if n_old > n or self.users.labels != users.labels[:n_old]:
            raise ValidationError("patched axis must extend this matrix's user axis")
        for name, positions in (("rows", rows), ("cols", cols)):
            if positions.size and (positions.min() < 0 or positions.max() >= n):
                raise ValidationError(f"{name} positions must lie in [0, {n})")
        self._consolidate()
        region._consolidate()
        r, c = np.divmod(self._keys, n_old)
        row_changed = np.zeros(n, dtype=bool)
        row_changed[rows] = True
        col_changed = np.zeros(n, dtype=bool)
        col_changed[cols] = True
        keep = ~(row_changed[r] | col_changed[c])
        kept_keys = self._keys[keep] if n == n_old else r[keep] * n + c[keep]
        kept_vals = self._vals[keep]
        region_keys = region._keys
        positions = np.searchsorted(kept_keys, region_keys) + np.arange(
            region_keys.size, dtype=np.int64
        )
        total = kept_keys.size + region_keys.size
        merged_keys = np.empty(total, dtype=np.int64)
        merged_vals = np.empty(total, dtype=np.float64)
        merged_keys[positions] = region_keys
        merged_vals[positions] = region._vals
        mask = np.ones(total, dtype=bool)
        mask[positions] = False
        merged_keys[mask] = kept_keys
        merged_vals[mask] = kept_vals
        out = UserPairMatrix(users)
        out._keys = merged_keys
        out._vals = merged_vals
        return out, int(kept_keys.size)

    # ------------------------------------------------------------------ set ops

    def intersect_support(self, other: "UserPairMatrix") -> set[tuple[str, str]]:
        """Pairs stored in both matrices (paper's ``R ∩ T`` etc.)."""
        self._require_same_axis(other)
        self._consolidate()
        other._consolidate()
        shared = np.intersect1d(self._keys, other._keys, assume_unique=True)
        return self._keys_to_pairs(shared)

    def subtract_support(self, other: "UserPairMatrix") -> set[tuple[str, str]]:
        """Pairs stored here but not in ``other`` (paper's ``T − R`` etc.)."""
        self._require_same_axis(other)
        self._consolidate()
        other._consolidate()
        only = np.setdiff1d(self._keys, other._keys, assume_unique=True)
        return self._keys_to_pairs(only)

    def restrict_to(self, pairs: set[tuple[str, str]]) -> "UserPairMatrix":
        """A new matrix keeping only the given pairs (values preserved)."""
        self._consolidate()
        out = UserPairMatrix(self.users)
        if pairs and self._keys.size:
            position = self.users.position
            users = self.users
            n = self._n
            # pairs naming users off this axis cannot be stored here; skip
            # them rather than failing the whole restriction
            wanted = np.fromiter(
                (
                    position(s) * n + position(t)
                    for s, t in pairs
                    if s in users and t in users
                ),
                dtype=np.int64,
            )
            mask = np.isin(self._keys, wanted, assume_unique=False)
            out._keys = self._keys[mask].copy()
            out._vals = self._vals[mask].copy()
        return out

    def _require_same_axis(self, other: "UserPairMatrix") -> None:
        if self.users != other.users:
            raise ValidationError("user axes differ; align matrices before set operations")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UserPairMatrix):
            return NotImplemented
        if self.users != other.users:
            return False
        self._consolidate()
        other._consolidate()
        return np.array_equal(self._keys, other._keys) and np.array_equal(
            self._vals, other._vals
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserPairMatrix(users={len(self.users)}, entries={self.num_entries()})"

    # ------------------------------------------------------------------ internals

    def _invalidate(self) -> None:
        self._lookup = None
        self._csr = None

    def _find(self, key: int) -> int | None:
        """Position of ``key`` in the consolidated arrays (binary search)."""
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and self._keys[pos] == key:
            return pos
        return None

    def _flush_accum(self) -> None:
        if self._pending_accum:
            # pending-accum keys are absent from the consolidated arrays and
            # (by invariant) from the set-write queue, so their sums merge
            # as ordinary base-zero writes
            keys = np.fromiter(
                self._pending_accum.keys(), dtype=np.int64, count=len(self._pending_accum)
            )
            vals = np.fromiter(
                self._pending_accum.values(),
                dtype=np.float64,
                count=len(self._pending_accum),
            )
            self._pending_blocks.append((keys, vals))
            self._pending_accum = {}

    def _flush_points(self) -> None:
        if self._pending_points:
            keys = np.fromiter(
                (k for k, _ in self._pending_points),
                dtype=np.int64,
                count=len(self._pending_points),
            )
            vals = np.fromiter(
                (v for _, v in self._pending_points),
                dtype=np.float64,
                count=len(self._pending_points),
            )
            self._pending_blocks.append((keys, vals))
            self._pending_points = []

    def _consolidate(self) -> None:
        """Merge pending writes into the sorted, deduplicated arrays."""
        if not (self._pending_blocks or self._pending_points or self._pending_accum):
            return
        self._flush_accum()
        self._flush_points()
        keys = np.concatenate([self._keys] + [k for k, _ in self._pending_blocks])
        vals = np.concatenate([self._vals] + [v for _, v in self._pending_blocks])
        self._pending_blocks = []
        # keep the LAST write per key: unique over the reversed array picks
        # the first occurrence there, i.e. the most recent write
        uniq, idx = np.unique(keys[::-1], return_index=True)
        self._keys = uniq
        self._vals = vals[::-1][idx]

    def _ensure_lookup(self) -> dict[int, int]:
        if self._lookup is None:
            self._lookup = dict(zip(self._keys.tolist(), range(self._keys.size)))
        return self._lookup

    def _row_bounds(self, i: int) -> tuple[int, int]:
        self._consolidate()
        n = self._n
        lo = int(np.searchsorted(self._keys, i * n, side="left"))
        hi = int(np.searchsorted(self._keys, (i + 1) * n, side="left"))
        return lo, hi

    def _keys_to_pairs(self, keys: IntArray) -> set[tuple[str, str]]:
        labels = self.users.labels
        n = self._n
        return {(labels[k // n], labels[k % n]) for k in keys.tolist()}
