"""Dense user-by-category matrices (Expertise ``E`` and Affiliation ``A``)."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.common.arrays import FloatArray, IntArray
from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex

__all__ = ["UserCategoryMatrix"]


class UserCategoryMatrix:
    """A ``U x C`` matrix with named axes and values in ``[0, 1]``.

    Both the paper's Expertise matrix ``E`` (eq. 3) and Affiliation matrix
    ``A`` (eq. 4) are instances.  The matrix is dense because the number of
    categories is small (12 sub-categories in the paper's evaluation).
    """

    def __init__(
        self,
        users: LabelIndex | Iterable[str],
        categories: LabelIndex | Iterable[str],
        values: FloatArray | None = None,
    ) -> None:
        self.users = users if isinstance(users, LabelIndex) else LabelIndex(users)
        self.categories = (
            categories if isinstance(categories, LabelIndex) else LabelIndex(categories)
        )
        shape = (len(self.users), len(self.categories))
        if values is None:
            self._values = np.zeros(shape, dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.shape != shape:
                raise ValidationError(
                    f"values shape {values.shape} does not match axes {shape}"
                )
            if np.isnan(values).any():
                raise ValidationError("user-category values must not contain NaN")
            if values.size and (values.min() < -1e-12 or values.max() > 1 + 1e-12):
                raise ValidationError("user-category values must lie in [0, 1]")
            self._values = values.copy()

    # ------------------------------------------------------------------ access

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_users, num_categories)``."""
        rows, cols = self._values.shape
        return int(rows), int(cols)

    def get(self, user_id: str, category_id: str) -> float:
        """Value for ``(user, category)``."""
        return float(
            self._values[self.users.position(user_id), self.categories.position(category_id)]
        )

    def set(self, user_id: str, category_id: str, value: float) -> None:
        """Set the value for ``(user, category)`` (must lie in [0, 1])."""
        if not 0.0 - 1e-12 <= value <= 1.0 + 1e-12:
            raise ValidationError(f"value must lie in [0, 1], got {value!r}")
        self._values[
            self.users.position(user_id), self.categories.position(category_id)
        ] = value

    def set_column(
        self,
        category_id: str,
        user_ids: Iterable[str],
        values: FloatArray | Iterable[float],
    ) -> None:
        """Bulk-set one category's column for many users at once.

        The vectorised counterpart of per-entry :meth:`set`: ``values[k]``
        is stored at ``(user_ids[k], category_id)`` in a single fancy-index
        write.  All values must lie in ``[0, 1]``.
        """
        values = np.asarray(values, dtype=np.float64)
        rows = self.users.positions(user_ids)
        if values.shape != rows.shape:
            raise ValidationError(
                f"values shape {values.shape} does not match {rows.size} users"
            )
        if values.size:
            if np.isnan(values).any():
                raise ValidationError("user-category values must not contain NaN")
            if values.min() < -1e-12 or values.max() > 1 + 1e-12:
                raise ValidationError("user-category values must lie in [0, 1]")
        self._values[rows, self.categories.position(category_id)] = values

    def set_entries(
        self,
        user_positions: IntArray | Iterable[int],
        category_positions: IntArray | Iterable[int],
        values: FloatArray | Iterable[float],
    ) -> None:
        """Bulk-set many ``(user, category)`` cells by axis position.

        The scatter counterpart of :meth:`set_column` for callers that
        already hold integer indices (e.g. the columnar Step-1 assembly):
        ``values[k]`` is stored at ``(user_positions[k],
        category_positions[k])``.  All values must lie in ``[0, 1]``.
        """
        rows = np.asarray(user_positions, dtype=np.int64)
        cols = np.asarray(category_positions, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if rows.shape != cols.shape or rows.shape != values.shape:
            raise ValidationError(
                f"positions and values must be equal-length, got shapes "
                f"{rows.shape}, {cols.shape} and {values.shape}"
            )
        if values.size:
            if rows.min() < 0 or rows.max() >= len(self.users):
                raise ValidationError("user positions out of range")
            if cols.min() < 0 or cols.max() >= len(self.categories):
                raise ValidationError("category positions out of range")
            if np.isnan(values).any():
                raise ValidationError("user-category values must not contain NaN")
            if values.min() < -1e-12 or values.max() > 1 + 1e-12:
                raise ValidationError("user-category values must lie in [0, 1]")
        self._values[rows, cols] = values

    def user_row(self, user_id: str) -> FloatArray:
        """Copy of the row for ``user_id`` (length ``C``)."""
        return self._values[self.users.position(user_id), :].copy()

    def category_column(self, category_id: str) -> FloatArray:
        """Copy of the column for ``category_id`` (length ``U``)."""
        return self._values[:, self.categories.position(category_id)].copy()

    def to_array(self) -> FloatArray:
        """Copy of the underlying dense array."""
        return self._values.copy()

    def values_view(self) -> FloatArray:
        """Read-only view of the underlying array (no copy)."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    # ------------------------------------------------------------------ helpers

    def row_sums(self) -> FloatArray:
        """Per-user sum across categories (the denominator of eq. 5)."""
        return self._values.sum(axis=1)

    def nonzero_user_ids(self) -> list[str]:
        """Users with at least one nonzero category value."""
        mask = (self._values != 0).any(axis=1)
        return [self.users.label(int(i)) for i in np.nonzero(mask)[0]]

    def ranking(self, category_id: str, *, restrict_to: set[str] | None = None) -> list[str]:
        """User ids ranked by descending value in ``category_id``.

        Ties are broken by axis order (stable), matching how a site would
        display a leaderboard.  ``restrict_to`` limits the ranking to a
        subset of users (e.g. users active in the category).
        """
        column = self._values[:, self.categories.position(category_id)]
        order = np.argsort(-column, kind="stable")
        labels = [self.users.label(int(i)) for i in order]
        if restrict_to is not None:
            labels = [u for u in labels if u in restrict_to]
        return labels

    @classmethod
    def from_dict(
        cls,
        entries: Mapping[str, Mapping[str, float]],
        users: Iterable[str],
        categories: Iterable[str],
    ) -> "UserCategoryMatrix":
        """Build from ``{user: {category: value}}`` (missing entries are 0)."""
        matrix = cls(LabelIndex(users), LabelIndex(categories))
        for user_id, row in entries.items():
            for category_id, value in row.items():
                matrix.set(user_id, category_id, value)
        return matrix

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UserCategoryMatrix):
            return NotImplemented
        return (
            self.users == other.users
            and self.categories == other.categories
            and np.array_equal(self._values, other._values)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserCategoryMatrix(users={len(self.users)}, categories={len(self.categories)})"
