"""Bidirectional label <-> position mapping for matrix axes."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.common.arrays import IntArray
from repro.common.errors import ValidationError

__all__ = ["LabelIndex"]


class LabelIndex:
    """An ordered, immutable-after-construction axis of string labels.

    >>> idx = LabelIndex(["u1", "u2", "u3"])
    >>> idx.position("u2")
    1
    >>> idx.label(2)
    'u3'
    """

    def __init__(self, labels: Iterable[str]) -> None:
        self._labels: tuple[str, ...] = tuple(labels)
        self._positions: dict[str, int] = {}
        for pos, label in enumerate(self._labels):
            if not isinstance(label, str) or not label:
                raise ValidationError(f"labels must be non-empty strings, got {label!r}")
            if label in self._positions:
                raise ValidationError(f"duplicate label {label!r}")
            self._positions[label] = pos

    def position(self, label: str) -> int:
        """The position of ``label`` on this axis."""
        pos = self._positions.get(label)
        if pos is None:
            raise KeyError(f"unknown label {label!r}")
        return pos

    def positions(self, labels: Iterable[str]) -> IntArray:
        """Positions of many labels as an ``int64`` array (bulk lookup).

        The counterpart of :meth:`position` for array-backed callers: one
        call maps a whole batch of labels so downstream work stays in numpy.
        """
        getter = self._positions.get
        labels = list(labels)
        out = np.empty(len(labels), dtype=np.int64)
        for k, label in enumerate(labels):
            pos = getter(label)
            if pos is None:
                raise KeyError(f"unknown label {label!r}")
            out[k] = pos
        return out

    def label(self, position: int) -> str:
        """The label at ``position``."""
        if not 0 <= position < len(self._labels):
            raise IndexError(f"position {position} out of range [0, {len(self._labels)})")
        return self._labels[position]

    @property
    def labels(self) -> tuple[str, ...]:
        """All labels, in axis order."""
        return self._labels

    def __contains__(self, label: str) -> bool:
        return label in self._positions

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelIndex):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self) -> int:
        return hash(self._labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = ", ".join(self._labels[:3])
        tail = ", ..." if len(self._labels) > 3 else ""
        return f"LabelIndex([{head}{tail}], n={len(self._labels)})"
