"""Typed matrices shared by all framework steps.

The paper works with three matrix shapes:

- ``U x C`` user-by-category matrices (Expertise ``E``, Affiliation ``A``) --
  :class:`UserCategoryMatrix`, dense (``C`` is small);
- ``U x U`` user-by-user matrices (derived trust ``T-hat``, baseline ``B``,
  direct connections ``R``, ground-truth trust ``T``) --
  :class:`UserPairMatrix`, sparse;
- the id <-> index bookkeeping both need -- :class:`LabelIndex`.
"""

from repro.matrix.labels import LabelIndex
from repro.matrix.pair import UserPairMatrix
from repro.matrix.user_category import UserCategoryMatrix

__all__ = ["LabelIndex", "UserCategoryMatrix", "UserPairMatrix"]
