"""``python -m repro.obs`` renders a trace (alias of ``repro.obs.report``)."""

from repro.obs.report import main

if __name__ == "__main__":
    raise SystemExit(main())
