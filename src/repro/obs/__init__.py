"""``repro.obs`` -- tracing, kernel metrics and convergence telemetry.

The instrumented kernels call the module-level helpers below; they
delegate to the process's *active* recorder, which defaults to the
zero-overhead :class:`NullRecorder`.  A caller that wants a trace swaps a
:class:`Recorder` in for the duration of the traced work::

    from repro import obs

    recorder = obs.Recorder()
    with obs.use_recorder(recorder):
        artifacts = run_pipeline(profile, seed)
    recorder.write("trace.json")

and renders it afterwards with ``python -m repro.obs.report trace.json``.

Instrumentation idioms
----------------------
- ``with obs.span("step1.solve", category=c):`` -- hierarchical timing;
  spans must be entered via the context manager (lint rule R6).
- ``obs.add("community.columns.hit")`` -- monotonic counters.
- ``obs.observe("step1.sweeps", n)`` -- value histograms.
- ``obs.convergence("propagation.eigentrust", iterations=i, ...)`` --
  per-kernel convergence records.
- ``if obs.tracing_active():`` -- gate per-item telemetry loops so the
  null-recorder path never pays them.

``REPRO_TRACE=0`` (read once at import, like ``REPRO_CHECKS``) pins the
null recorder: :func:`set_recorder` / :func:`use_recorder` become no-ops
and instrumentation can never be switched on in that process.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.recorder import (
    TRACE_ENABLED,
    Attr,
    ConvergenceRecord,
    NullRecorder,
    Recorder,
    SpanContext,
    SpanRecord,
    TraceRecorder,
    convergence_failures,
)

__all__ = [
    "TRACE_ENABLED",
    "ConvergenceRecord",
    "NullRecorder",
    "Recorder",
    "SpanContext",
    "SpanRecord",
    "TraceRecorder",
    "add",
    "convergence",
    "convergence_failures",
    "get_recorder",
    "observe",
    "set_recorder",
    "span",
    "tracing_active",
    "use_recorder",
]

_NULL = NullRecorder()
_active: TraceRecorder = _NULL


def get_recorder() -> TraceRecorder:
    """The currently active recorder (the null recorder by default)."""
    return _active


def set_recorder(recorder: TraceRecorder | None) -> None:
    """Install ``recorder`` as the active recorder (``None`` resets).

    A no-op when tracing was compiled out with ``REPRO_TRACE=0``.
    """
    global _active
    if not TRACE_ENABLED:
        return
    _active = recorder if recorder is not None else _NULL


@contextmanager
def use_recorder(recorder: TraceRecorder | None) -> Iterator[TraceRecorder]:
    """Scoped :func:`set_recorder`: restores the previous recorder on exit."""
    previous = _active
    set_recorder(recorder)
    try:
        yield _active
    finally:
        set_recorder(previous)


def tracing_active() -> bool:
    """Whether the active recorder actually records (gate telemetry loops)."""
    return _active.active


def span(name: str, **attributes: Attr) -> SpanContext:
    """A context manager timing one span on the active recorder."""
    # repro: allow(R6): delegation shim -- the caller's with-statement enters it
    return _active.span(name, **attributes)


def add(name: str, amount: int | float = 1) -> None:
    """Increment a monotonic counter on the active recorder."""
    _active.add(name, amount)


def observe(name: str, value: float) -> None:
    """Record one histogram observation on the active recorder."""
    _active.observe(name, value)


def convergence(
    kernel: str,
    *,
    iterations: int,
    residual: float,
    tolerance: float,
    converged: bool,
    **attributes: Attr,
) -> None:
    """Record one kernel convergence outcome on the active recorder."""
    _active.convergence(
        kernel,
        iterations=iterations,
        residual=residual,
        tolerance=tolerance,
        converged=converged,
        **attributes,
    )
