"""Process-local tracing: hierarchical spans, counters, convergence records.

The kernel layer is instrumented at its entry points (one span per
``derive`` / ``fit`` / propagation call, never per sweep) through the
module-level helpers in :mod:`repro.obs`.  Those helpers delegate to the
*active* recorder:

- :class:`NullRecorder` (the default) makes every operation a no-op --
  ``span()`` returns one shared, reusable null context manager, so
  instrumented code costs an attribute lookup and a call when tracing is
  off;
- :class:`Recorder` builds a span tree with wall-clock durations, plus
  monotonic counters, value histograms and convergence records, and dumps
  everything as one structured JSON document.

Mirroring ``repro.common.contracts``'s ``REPRO_CHECKS`` pattern, the
``REPRO_TRACE`` environment variable is read **once at import**: under
``REPRO_TRACE=0`` the active recorder is pinned to the null recorder and
:func:`repro.obs.set_recorder` becomes a no-op, so production deployments
can guarantee tracing stays compiled out.

Spans are only ever entered through the context-manager protocol (lint
rule R6 enforces this at call sites); there is deliberately no public
``start``/``stop`` pair to misuse.  Span stacks are thread-local, so the
opt-in thread-pool Step-1 path records each worker's spans as separate
roots instead of interleaving one shared stack.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable, Iterable, Mapping, Protocol

__all__ = [
    "TRACE_ENABLED",
    "SpanRecord",
    "ConvergenceRecord",
    "Recorder",
    "NullRecorder",
    "SpanContext",
    "TraceRecorder",
    "convergence_failures",
]

#: Read once at import time (the ``REPRO_CHECKS`` pattern): ``0`` pins the
#: null recorder for the life of the process.
TRACE_ENABLED: bool = os.environ.get("REPRO_TRACE", "1") != "0"

#: Attribute values allowed on spans and convergence records -- everything
#: JSON-serialisable without a custom encoder.
Attr = str | int | float | bool | None


class SpanContext(Protocol):
    """Structural type of the object ``span()`` returns: a ``with`` target."""

    def __enter__(self) -> "SpanRecord | None": ...

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None: ...


@dataclass
class SpanRecord:
    """One node of the span tree.

    ``end_s`` stays ``None`` while the span is open; ``to_dict`` reports
    such spans with ``"incomplete": true`` (a crash dump mid-span is more
    useful than a lost trace).
    """

    name: str
    attributes: dict[str, Attr]
    start_s: float
    end_s: float | None = None
    children: list["SpanRecord"] = field(default_factory=list)

    def duration_s(self) -> float:
        """Wall-clock span duration (0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def self_s(self) -> float:
        """Duration minus the cumulative duration of direct children."""
        return self.duration_s() - sum(c.duration_s() for c in self.children)

    def to_dict(self, origin_s: float) -> dict[str, object]:
        """JSON form; times are relative to the recorder's origin."""
        doc: dict[str, object] = {
            "name": self.name,
            "start_s": round(self.start_s - origin_s, 6),
            "duration_s": round(self.duration_s(), 6),
            "self_s": round(self.self_s(), 6),
        }
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        if self.end_s is None:
            doc["incomplete"] = True
        if self.children:
            doc["children"] = [c.to_dict(origin_s) for c in self.children]
        return doc


@dataclass(frozen=True)
class ConvergenceRecord:
    """One iterative kernel's convergence telemetry."""

    kernel: str
    iterations: int
    residual: float
    tolerance: float
    converged: bool
    attributes: dict[str, Attr] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        doc: dict[str, object] = {
            "kernel": self.kernel,
            "iterations": self.iterations,
            "residual": self.residual,
            "tolerance": self.tolerance,
            "converged": self.converged,
        }
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        return doc


class _NullSpan:
    """The shared no-op context manager returned by ``NullRecorder.span``."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder with the full API and zero behaviour.

    The default active recorder: every instrumented call site pays one
    method dispatch and nothing else, and results are bitwise identical
    to an uninstrumented run (the instrumentation never touches the
    numerics).
    """

    __slots__ = ()

    #: Null recorders never record; hot loops gate optional per-item
    #: telemetry on this flag.
    active: bool = False

    def span(self, name: str, **attributes: Attr) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, amount: int | float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def convergence(
        self,
        kernel: str,
        *,
        iterations: int,
        residual: float,
        tolerance: float,
        converged: bool,
        **attributes: Attr,
    ) -> None:
        return None


class _SpanHandle:
    """Context manager that opens/closes one :class:`SpanRecord`.

    Created by :meth:`Recorder.span`; the record is attached to the tree
    at *open* time, so sibling order is call order (deterministic for the
    serial kernels) and a crash mid-span still leaves the node in place.
    """

    __slots__ = ("_recorder", "_record")

    def __init__(
        self, recorder: "Recorder", name: str, attributes: dict[str, Attr]
    ) -> None:
        self._recorder = recorder
        self._record = SpanRecord(name=name, attributes=attributes, start_s=0.0)

    def __enter__(self) -> SpanRecord:
        self._recorder._open(self._record)
        return self._record

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self._recorder._close(self._record)
        return None


class Recorder:
    """Collects spans, counters, histograms and convergence records.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    active: bool = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._origin_s = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        self.convergence_records: list[ConvergenceRecord] = []

    # ------------------------------------------------------------------ spans

    def span(self, name: str, **attributes: Attr) -> _SpanHandle:
        """A context manager recording one span under the current parent."""
        return _SpanHandle(self, name, dict(attributes))

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, record: SpanRecord) -> None:
        stack = self._stack()
        record.start_s = self._clock()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self.roots.append(record)
        stack.append(record)

    def _close(self, record: SpanRecord) -> None:
        record.end_s = self._clock()
        stack = self._stack()
        # tolerate a torn-down stack (e.g. a generator finalised late)
        while stack and stack[-1] is not record:
            stack.pop()
        if stack:
            stack.pop()

    # --------------------------------------------------------------- counters

    def add(self, name: str, amount: int | float = 1) -> None:
        """Increment the monotonic counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the value histogram ``name``."""
        with self._lock:
            self.histograms.setdefault(name, []).append(float(value))

    def convergence(
        self,
        kernel: str,
        *,
        iterations: int,
        residual: float,
        tolerance: float,
        converged: bool,
        **attributes: Attr,
    ) -> None:
        """Record one iterative kernel's convergence outcome."""
        record = ConvergenceRecord(
            kernel=kernel,
            iterations=int(iterations),
            residual=float(residual),
            tolerance=float(tolerance),
            converged=bool(converged),
            attributes=dict(attributes),
        )
        with self._lock:
            self.convergence_records.append(record)

    # ------------------------------------------------------------------- dump

    def to_dict(self) -> dict[str, object]:
        """The whole trace as one JSON-serialisable document."""
        with self._lock:
            histograms = {
                name: _histogram_summary(values)
                for name, values in sorted(self.histograms.items())
            }
            return {
                "version": 1,
                "meta": {
                    "python": platform.python_version(),
                    "trace_enabled": TRACE_ENABLED,
                },
                "spans": [root.to_dict(self._origin_s) for root in self.roots],
                "counters": {k: self.counters[k] for k in sorted(self.counters)},
                "histograms": histograms,
                "convergence": [r.to_dict() for r in self.convergence_records],
            }

    def write(self, path: str) -> None:
        """Dump the trace document to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _histogram_summary(values: Iterable[float]) -> dict[str, object]:
    data = list(values)
    if not data:
        return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": None}
    total = sum(data)
    return {
        "count": len(data),
        "total": total,
        "min": min(data),
        "max": max(data),
        "mean": total / len(data),
        "values": data,
    }


#: Either recorder flavour (both satisfy the same structural API).
TraceRecorder = Recorder | NullRecorder


def convergence_failures(document: Mapping[str, object]) -> list[dict[str, object]]:
    """The convergence records of a trace document with ``converged=False``."""
    records = document.get("convergence", [])
    failures: list[dict[str, object]] = []
    if isinstance(records, list):
        for record in records:
            if isinstance(record, dict) and not record.get("converged", True):
                failures.append(record)
    return failures
