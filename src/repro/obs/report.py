"""Render a ``repro.obs`` JSON trace as tables.

::

    python -m repro.obs.report trace.json

prints, from one trace document:

- the **span tree** (indented, with durations);
- a per-span-name **timing table** -- calls, cumulative time, self time
  (cumulative minus direct children), sorted by self time;
- the **counters** and **histogram** summaries;
- an **incremental engine** section (when engine counters are present):
  deltas applied, Step-1 categories re-solved vs skipped, ``T-hat`` pairs
  re-derived vs reused, propagation sweeps saved -- each with its reuse
  ratio;
- a **shard IO** section (when ``shard.*`` counters are present): bytes
  and files written/read, cache hits vs mmap misses, spills, patched
  shards;
- a **convergence summary** per iterative kernel (count, worst residual,
  iteration range, whether every run converged).

``--check-converged`` exits nonzero when any convergence record reports
``converged=False`` -- the CI gate's building block.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.recorder import convergence_failures
from repro.reporting import render_table

__all__ = ["SpanStat", "aggregate_spans", "render_trace_report", "main"]


@dataclass
class SpanStat:
    """Aggregated timings of every span sharing one name."""

    name: str
    calls: int = 0
    cumulative_s: float = 0.0
    self_s: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "calls": self.calls,
            "cumulative_s": round(self.cumulative_s, 6),
            "self_s": round(self.self_s, 6),
        }


def aggregate_spans(spans: Iterable[Mapping[str, Any]]) -> dict[str, SpanStat]:
    """Per-name call counts and cumulative/self times over a span forest."""
    stats: dict[str, SpanStat] = {}
    stack: list[Mapping[str, Any]] = list(spans)
    while stack:
        node = stack.pop()
        stat = stats.setdefault(str(node.get("name", "?")), SpanStat(str(node.get("name", "?"))))
        stat.calls += 1
        stat.cumulative_s += float(node.get("duration_s", 0.0))
        stat.self_s += float(node.get("self_s", node.get("duration_s", 0.0)))
        stack.extend(node.get("children", ()))
    return stats


def _span_tree_lines(spans: Sequence[Mapping[str, Any]], depth: int = 0) -> list[str]:
    lines: list[str] = []
    for node in spans:
        attributes = node.get("attributes") or {}
        attr_text = (
            " [" + ", ".join(f"{k}={v}" for k, v in attributes.items()) + "]"
            if attributes
            else ""
        )
        open_marker = " (open)" if node.get("incomplete") else ""
        lines.append(
            f"{'  ' * depth}{node.get('name', '?')}  "
            f"{float(node.get('duration_s', 0.0)) * 1000:.2f} ms{attr_text}{open_marker}"
        )
        lines.extend(_span_tree_lines(node.get("children", ()), depth + 1))
    return lines


def _timing_table(stats: Mapping[str, SpanStat]) -> str:
    rows = [
        [
            stat.name,
            stat.calls,
            f"{stat.cumulative_s * 1000:.2f}",
            f"{stat.self_s * 1000:.2f}",
            f"{stat.cumulative_s / stat.calls * 1000:.2f}" if stat.calls else "-",
        ]
        for stat in sorted(stats.values(), key=lambda s: (-s.self_s, s.name))
    ]
    return render_table(
        ["span", "calls", "cumulative ms", "self ms", "mean ms"],
        rows,
        title="Span timings (by self time)",
    )


def _convergence_table(records: Sequence[Mapping[str, Any]]) -> str:
    by_kernel: dict[str, list[Mapping[str, Any]]] = {}
    for record in records:
        by_kernel.setdefault(str(record.get("kernel", "?")), []).append(record)
    rows = []
    for kernel in sorted(by_kernel):
        runs = by_kernel[kernel]
        iterations = [int(r.get("iterations", 0)) for r in runs]
        residuals = [float(r.get("residual", 0.0)) for r in runs]
        all_converged = all(bool(r.get("converged", True)) for r in runs)
        rows.append(
            [
                kernel,
                len(runs),
                f"{min(iterations)}..{max(iterations)}" if iterations else "-",
                f"{max(residuals):.3e}" if residuals else "-",
                "yes" if all_converged else "NO",
            ]
        )
    return render_table(
        ["kernel", "runs", "iterations", "worst residual", "converged"],
        rows,
        title="Convergence summary",
    )


#: (label, done counter, avoided counter) rows of the engine section; the
#: "avoided" share is the incremental win the table makes visible.
_ENGINE_RATIOS: tuple[tuple[str, str, str], ...] = (
    (
        "step1 categories",
        "step1.incremental.categories_resolved",
        "step1.incremental.categories_skipped",
    ),
    (
        "derive pairs",
        "engine.derive.pairs_rederived",
        "engine.derive.pairs_reused",
    ),
)


def _engine_table(counters: Mapping[str, Any]) -> str | None:
    """The incremental-engine counter summary, or ``None`` when absent."""
    if not any(str(name).startswith(("engine.", "step1.incremental.")) for name in counters):
        return None
    rows: list[list[object]] = [
        ["deltas applied", int(counters.get("engine.deltas_applied", 0)), "-", "-"]
    ]
    for label, done_key, avoided_key in _ENGINE_RATIOS:
        done = int(counters.get(done_key, 0))
        avoided = int(counters.get(avoided_key, 0))
        total = done + avoided
        ratio = f"{avoided / total:.1%}" if total else "-"
        rows.append([f"{label} recomputed", done, avoided, ratio])
    rows.append(
        [
            "propagation sweeps saved",
            int(counters.get("engine.propagation.iterations_saved", 0)),
            "-",
            "-",
        ]
    )
    refreshes = int(counters.get("community.columns.refresh", 0))
    if refreshes:
        rows.append(["columns segment refreshes", refreshes, "-", "-"])
    return render_table(
        ["stage", "recomputed", "reused", "reuse"],
        rows,
        title="Incremental engine",
    )


def _shard_table(counters: Mapping[str, Any]) -> str | None:
    """The sharded-store IO summary, or ``None`` when absent."""
    if not any(str(name).startswith("shard.") for name in counters):
        return None

    def human(n: int) -> str:
        return f"{n / 1024:.1f} KiB" if n else "0"

    rows: list[list[object]] = [
        [
            "written",
            int(counters.get("shard.write.files", 0)),
            human(int(counters.get("shard.write.bytes", 0))),
        ],
        [
            "read (mmap)",
            int(counters.get("shard.read.files", 0)),
            human(int(counters.get("shard.read.bytes", 0))),
        ],
    ]
    hits = int(counters.get("shard.hit", 0))
    misses = int(counters.get("shard.miss", 0))
    rows.append(["cache hits / misses", f"{hits} / {misses}", "-"])
    spills = int(counters.get("shard.spill", 0))
    if spills:
        rows.append(["spills over budget", spills, "-"])
    patched = int(counters.get("shard.patched_shards", 0))
    untouched = int(counters.get("engine.shard.shards_untouched", 0))
    if patched or untouched:
        rows.append(["shards patched / untouched", f"{patched} / {untouched}", "-"])
    sweeps = int(counters.get("propagation.eigentrust.shard_sweeps", 0))
    if sweeps:
        rows.append(["eigentrust shard sweeps", sweeps, "-"])
    return render_table(["shard IO", "files", "bytes"], rows, title="Sharded store")


def render_trace_report(document: Mapping[str, Any]) -> str:
    """The full multi-table report for one trace document."""
    sections: list[str] = []
    spans = document.get("spans") or []
    if spans:
        sections.append("Span tree\n=========\n" + "\n".join(_span_tree_lines(spans)))
        sections.append(_timing_table(aggregate_spans(spans)))
    counters = document.get("counters") or {}
    if counters:
        rows = [[name, counters[name]] for name in sorted(counters)]
        sections.append(render_table(["counter", "value"], rows, title="Counters"))
        engine_section = _engine_table(counters)
        if engine_section is not None:
            sections.append(engine_section)
        shard_section = _shard_table(counters)
        if shard_section is not None:
            sections.append(shard_section)
    histograms = document.get("histograms") or {}
    if histograms:
        rows = [
            [
                name,
                summary.get("count", 0),
                summary.get("min", "-"),
                summary.get("mean", "-"),
                summary.get("max", "-"),
                summary.get("total", "-"),
            ]
            for name, summary in sorted(histograms.items())
        ]
        sections.append(
            render_table(
                ["histogram", "count", "min", "mean", "max", "total"],
                rows,
                title="Histograms",
            )
        )
    convergence = document.get("convergence") or []
    if convergence:
        sections.append(_convergence_table(convergence))
    if not sections:
        sections.append("(empty trace)")
    return "\n\n".join(sections)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``python -m repro.obs.report trace.json``."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.report",
        description="Render a repro.obs JSON trace as timing and convergence tables.",
    )
    parser.add_argument("trace", help="path to a trace JSON file")
    parser.add_argument(
        "--check-converged",
        action="store_true",
        help="exit nonzero when any kernel reports converged=False",
    )
    args = parser.parse_args(argv)
    with open(args.trace, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    print(render_trace_report(document))
    if args.check_converged:
        failures = convergence_failures(document)
        for failure in failures:
            print(
                f"convergence check failed: {failure.get('kernel')} "
                f"stopped at {failure.get('iterations')} iterations "
                f"(residual {failure.get('residual')})",
                file=sys.stderr,
            )
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
