"""Configuration for the sharded artifact backend.

One frozen :class:`ShardConfig` travels from the CLI / bench flags down
to whatever builds :class:`repro.shard.matrix.ShardedPairMatrix`
instances -- the engine, the sharded deriver, the perf scenario -- so
every layer agrees on the shard count, spill budget and store location.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex
from repro.shard.layout import ShardLayout
from repro.shard.store import ShardStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.matrix import ShardedPairMatrix

__all__ = ["ShardConfig"]


@dataclass(frozen=True)
class ShardConfig:
    """How to shard the pair matrix and where the shards live.

    Parameters
    ----------
    num_shards:
        Row blocks to split the ``U x U`` matrix into.
    spill_bytes:
        Per-shard heap budget in bytes; a shard whose buffered entries
        exceed it is written to the store immediately.  ``None`` keeps
        shards in memory until an explicit flush.
    root:
        Store directory.  ``None`` uses a fresh temporary directory that
        is removed when the store is garbage-collected.
    """

    num_shards: int = 4
    spill_bytes: int | None = None
    root: str | Path | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.spill_bytes is not None and self.spill_bytes <= 0:
            raise ValidationError(
                f"spill_bytes must be positive, got {self.spill_bytes}"
            )

    def make_store(self, subdir: str | None = None) -> ShardStore:
        """Open (or create) the configured store directory."""
        if self.root is None:
            return ShardStore.temporary()
        root = Path(self.root)
        if subdir is not None:
            root = root / subdir
        return ShardStore(root)

    def layout_for(self, n_rows: int) -> ShardLayout:
        """The even row-block layout this config implies for ``n_rows``."""
        return ShardLayout.even(n_rows, self.num_shards)

    def matrix_for(
        self, users: LabelIndex, *, store: ShardStore | None = None
    ) -> "ShardedPairMatrix":
        """An empty sharded matrix over ``users`` per this config."""
        from repro.shard.matrix import ShardedPairMatrix

        return ShardedPairMatrix(
            users,
            self.layout_for(len(users)),
            store=store if store is not None else self.make_store(),
            spill_bytes=self.spill_bytes,
        )
