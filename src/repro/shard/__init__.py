"""repro.shard -- sharded, out-of-core storage for the trust artifacts.

The paper's ``T-hat`` web of trust is the one quadratically-growing
artifact; this package keeps it on disk in row-block shards so derive,
propagation and incremental patching all run with bounded peak memory:

- :class:`ShardLayout` -- contiguous row-block boundaries;
- :class:`ShardStore` -- a directory of memory-mappable ``.npy`` payloads
  with a checksummed JSON manifest;
- :class:`ShardedPairMatrix` -- the drop-in, bitwise-identical sharded
  backend for :class:`repro.matrix.UserPairMatrix`;
- :class:`ShardConfig` -- shard count / spill budget / store location;
- :class:`ArtifactStore` -- save/load facade for whole pipeline outputs.

The shard-aware compute paths live with their kernels:
:meth:`repro.trust.TrustDeriver.derive_sharded`, the out-of-core sweep in
:func:`repro.propagation.eigen_trust`, and the per-shard patching mode of
:class:`repro.engine.Engine`.
"""

from repro.shard.artifacts import ArtifactStore, StoredArtifacts
from repro.shard.config import ShardConfig
from repro.shard.layout import ShardLayout
from repro.shard.matrix import ShardedPairMatrix
from repro.shard.store import ShardStore

__all__ = [
    "ArtifactStore",
    "ShardConfig",
    "ShardLayout",
    "ShardStore",
    "ShardedPairMatrix",
    "StoredArtifacts",
]
