"""The ``repro shard`` subcommand: build / inspect / verify artifact stores.

- ``build`` runs the cold pipeline on a community (synthetic or loaded
  from an Epinions-format directory) and persists every staged output to
  an :class:`repro.shard.artifacts.ArtifactStore` directory;
- ``inspect`` prints the manifest: epoch, axes, shard boundaries, entry
  counts and on-disk bytes;
- ``verify`` re-hashes every payload against the manifest checksums and
  exits non-zero on any mismatch; it accepts either a full artifact
  store (``artifacts.json``) or a bare pair-matrix shard store
  (``manifest.json``, e.g. the perf bench's ``--shard-dir`` output).

Kept separate from :mod:`repro.cli` so the heavyweight pipeline imports
only load for ``build``; the top-level CLI registers these parsers.
"""

from __future__ import annotations

import argparse
from typing import IO

from repro.shard.artifacts import ArtifactStore

__all__ = ["add_shard_parser", "run_shard"]


def add_shard_parser(
    sub: "argparse._SubParsersAction[argparse.ArgumentParser]",
) -> None:
    """Register the ``shard`` subcommand on a subparsers action."""
    shard = sub.add_parser(
        "shard", help="build / inspect / verify a sharded artifact store"
    )
    actions = shard.add_subparsers(dest="shard_command", required=True)

    build = actions.add_parser(
        "build", help="run the pipeline and persist the outputs as shards"
    )
    build.add_argument("--store", required=True, help="artifact store directory")
    build.add_argument("--dir", help="load an Epinions-format directory instead")
    build.add_argument("--users", type=int, default=1200, help="community size")
    build.add_argument("--seed", type=int, default=7, help="random seed")
    build.add_argument(
        "--shards", type=int, default=4, help="row blocks for the pair matrix"
    )
    build.add_argument(
        "--trace",
        metavar="PATH",
        help="record a repro.obs trace of the run and write it as JSON",
    )

    inspect = actions.add_parser("inspect", help="print a store's manifest")
    inspect.add_argument("--store", required=True, help="artifact store directory")

    verify = actions.add_parser(
        "verify", help="re-hash every payload against the manifest checksums"
    )
    verify.add_argument("--store", required=True, help="artifact store directory")


def run_shard(args: argparse.Namespace, out: IO[str]) -> int:
    """Dispatch one ``repro shard`` action; returns the exit code."""
    if args.shard_command == "build":
        return _run_build(args, out)
    if args.shard_command == "inspect":
        return _run_inspect(args, out)
    return _run_verify(args, out)


def _run_build(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.datasets import generate_community, load_epinions_community
    from repro.engine import cold_artifacts
    from repro.experiments import paper_profile

    if args.dir:
        community = load_epinions_community(args.dir)
    else:
        community = generate_community(paper_profile(args.users), args.seed).community
    artifacts = cold_artifacts(community)
    store = ArtifactStore(args.store)
    manifest = store.save(
        expertise=artifacts.expertise,
        affiliation=artifacts.affiliation,
        derived=artifacts.derived,
        scores=artifacts.scores,
        epoch=community.change_log.epoch,
        num_shards=args.shards,
    )
    print(
        f"wrote {manifest['derived']['entries']} derived pairs in "
        f"{manifest['derived']['shards']} shards "
        f"(epoch {manifest['epoch']}, {manifest['n_users']} users) to {args.store}",
        file=out,
    )
    return 0


def _run_inspect(args: argparse.Namespace, out: IO[str]) -> int:
    from repro.reporting import render_table

    store = ArtifactStore(args.store)
    manifest = store.read_manifest()
    derived_manifest = store.derived_store.read_manifest()
    rows = [
        ["epoch", manifest["epoch"]],
        ["users", manifest["n_users"]],
        ["categories", manifest["n_categories"]],
        ["derived entries", manifest["derived"]["entries"]],
        ["shards", manifest["derived"]["shards"]],
        ["scores converged", manifest["scores"]["converged"]],
        ["scores iterations", manifest["scores"]["iterations"]],
    ]
    print(render_table(["field", "value"], rows, title=f"Artifacts: {args.store}"), file=out)
    shard_rows = []
    for doc in derived_manifest["shards"]:
        lo, hi = doc["rows"]
        keys_file = store.derived_store.path(doc["files"]["keys"])
        vals_file = store.derived_store.path(doc["files"]["vals"])
        size = keys_file.stat().st_size + vals_file.stat().st_size
        shard_rows.append([doc["index"], f"[{lo}, {hi})", doc["entries"], size])
    print(
        render_table(
            ["shard", "rows", "entries", "bytes"], shard_rows, title="Shards"
        ),
        file=out,
    )
    return 0


def _run_verify(args: argparse.Namespace, out: IO[str]) -> int:
    from pathlib import Path

    from repro.shard.artifacts import ARTIFACTS_NAME
    from repro.shard.store import ShardStore

    if (Path(args.store) / ARTIFACTS_NAME).exists():
        store = ArtifactStore(args.store)
        mismatched = store.verify()
        checked = len(store.read_manifest().get("checksums", {}))
        checked += len(store.derived_store.read_manifest().get("checksums", {}))
    else:  # a bare pair-matrix shard store
        shard_store = ShardStore(args.store)
        mismatched = shard_store.verify()
        checked = len(shard_store.read_manifest().get("checksums", {}))
    if mismatched:
        print(f"CHECKSUM MISMATCH: {', '.join(mismatched)}", file=out)
        return 1
    print(f"verified {checked} payloads: all checksums match", file=out)
    return 0
