"""Row-block shard layout for the user-pair matrix.

A :class:`ShardLayout` partitions the ``U`` rows of a ``U x U`` pair
matrix into contiguous row blocks.  Row-block sharding is what keeps
every shard-local operation exact: each matrix row lives wholly inside
one shard, so per-row reductions (row sums, normalisation, the keep/drop
masks of region patching) never cross a shard boundary, and the
concatenation of the shards' row-major entries *is* the row-major entry
list of the whole matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.common.arrays import IntArray
from repro.common.errors import ValidationError

__all__ = ["ShardLayout"]


@dataclass(frozen=True)
class ShardLayout:
    """Contiguous row-block boundaries over an ``n_rows``-row matrix.

    ``bounds`` holds ``num_shards + 1`` monotonically increasing row
    starts with ``bounds[0] == 0`` and ``bounds[-1] == n_rows``; shard
    ``s`` covers rows ``[bounds[s], bounds[s + 1])``.
    """

    n_rows: int
    bounds: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise ValidationError(f"n_rows must be >= 0, got {self.n_rows}")
        if len(self.bounds) < 2:
            raise ValidationError("layout needs at least one shard (two bounds)")
        if self.bounds[0] != 0 or self.bounds[-1] != self.n_rows:
            raise ValidationError(
                f"bounds must run from 0 to n_rows={self.n_rows}, got "
                f"[{self.bounds[0]}, {self.bounds[-1]}]"
            )
        if any(b > a for a, b in zip(self.bounds[1:], self.bounds)):
            raise ValidationError("bounds must be monotonically increasing")

    # ------------------------------------------------------------- constructors

    @classmethod
    def even(cls, n_rows: int, num_shards: int) -> "ShardLayout":
        """Split ``n_rows`` into ``num_shards`` near-equal row blocks.

        ``num_shards`` is clamped to ``n_rows`` (every shard gets at
        least one row when there are any rows at all).
        """
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        shards = max(1, min(num_shards, n_rows)) if n_rows else 1
        edges = np.linspace(0, n_rows, shards + 1).astype(np.int64)
        return cls(n_rows=n_rows, bounds=tuple(int(e) for e in edges))

    @classmethod
    def for_rows_per_shard(cls, n_rows: int, rows_per_shard: int) -> "ShardLayout":
        """Fixed-height blocks of at most ``rows_per_shard`` rows."""
        if rows_per_shard < 1:
            raise ValidationError(
                f"rows_per_shard must be >= 1, got {rows_per_shard}"
            )
        edges = list(range(0, n_rows, rows_per_shard)) + [n_rows]
        if len(edges) < 2:
            edges = [0, n_rows]
        return cls(n_rows=n_rows, bounds=tuple(edges))

    # ------------------------------------------------------------------ queries

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    def row_range(self, shard: int) -> tuple[int, int]:
        """The ``[lo, hi)`` row range of ``shard``."""
        self._require_shard(shard)
        return self.bounds[shard], self.bounds[shard + 1]

    def rows_in(self, shard: int) -> int:
        lo, hi = self.row_range(shard)
        return hi - lo

    def shard_of_rows(self, rows: IntArray) -> IntArray:
        """The shard index of each row position (vectorised)."""
        edges = np.asarray(self.bounds[1:-1], dtype=np.int64)
        return np.searchsorted(edges, np.asarray(rows, dtype=np.int64), side="right")

    def shards_for_rows(self, rows: IntArray) -> IntArray:
        """Sorted unique shard indices containing any of ``rows``."""
        if np.asarray(rows).size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self.shard_of_rows(rows))

    def key_range(self, shard: int, n_cols: int) -> tuple[int, int]:
        """The flat-key range ``[lo * n_cols, hi * n_cols)`` of ``shard``."""
        lo, hi = self.row_range(shard)
        return lo * n_cols, hi * n_cols

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        """Iterate ``(shard, lo, hi)`` triples in row order."""
        for s in range(self.num_shards):
            yield s, self.bounds[s], self.bounds[s + 1]

    def _require_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ValidationError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
