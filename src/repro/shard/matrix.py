"""The row-block--sharded, out-of-core user-pair matrix.

:class:`ShardedPairMatrix` is the storage backend that lifts the
``U x U`` web-of-trust artifact out of memory: the consolidated entry
arrays of :class:`repro.matrix.UserPairMatrix` are split into contiguous
row blocks (:class:`repro.shard.layout.ShardLayout`), each block living
either in memory or as a pair of memory-mapped ``.npy`` files inside a
:class:`repro.shard.store.ShardStore`.  Writers (:meth:`set_block`,
:meth:`set_shard_entries`) spill a shard to disk as soon as its entries
exceed a configurable byte budget, so peak heap usage during a build is
one shard, not the whole matrix.

The read contract mirrors ``UserPairMatrix`` where consumers need it --
:meth:`entries_arrays`, :meth:`support_keys`, :meth:`values`,
:meth:`get`/:meth:`contains`, ``==`` against either matrix type -- plus
the shard-native views the out-of-core kernels consume:
:meth:`shard_entries` (zero-copy, possibly memory-mapped) and
:meth:`shard_csr` (a ``rows_in_shard x U`` CSR block).  Because shards
are row blocks, concatenating the shards in order reproduces the
row-major consolidated arrays exactly, which is what makes the sharded
backend a drop-in, bitwise-identical replacement rather than a fork of
the math.
"""

# repro: hot-path

from __future__ import annotations

from typing import Any, Iterable

import numpy as np
from scipy import sparse

from repro import obs
from repro.common.arrays import FloatArray, IntArray
from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex
from repro.matrix.pair import UserPairMatrix
from repro.shard.layout import ShardLayout
from repro.shard.store import FORMAT, USERS_NAME, ShardStore

__all__ = ["ShardedPairMatrix", "ENTRY_BYTES"]

#: Heap bytes per stored entry: one int64 key plus one float64 value.
ENTRY_BYTES = 16

_EMPTY_KEYS = np.empty(0, dtype=np.int64)
_EMPTY_VALS = np.empty(0, dtype=np.float64)


def _shard_files(shard: int) -> tuple[str, str]:
    return f"shard_{shard:05d}.keys.npy", f"shard_{shard:05d}.vals.npy"


class ShardedPairMatrix:
    """A sparse ``U x U`` pair matrix stored as row-block shards."""

    def __init__(
        self,
        users: LabelIndex | Iterable[str],
        layout: ShardLayout | None = None,
        *,
        num_shards: int = 4,
        store: ShardStore | None = None,
        spill_bytes: int | None = None,
    ) -> None:
        self.users = users if isinstance(users, LabelIndex) else LabelIndex(users)
        self._n = len(self.users)
        self.layout = layout or ShardLayout.even(self._n, num_shards)
        if self.layout.n_rows != self._n:
            raise ValidationError(
                f"layout covers {self.layout.n_rows} rows but the user axis "
                f"has {self._n}"
            )
        if spill_bytes is not None and spill_bytes <= 0:
            raise ValidationError(f"spill_bytes must be positive, got {spill_bytes}")
        if spill_bytes is not None and store is None:
            store = ShardStore.temporary()
        self._store = store
        self._spill_bytes = spill_bytes
        shards = self.layout.num_shards
        # per-shard consolidated state: None means "offloaded to disk,
        # reload lazily"; on first touch a memory-mapped view is cached
        self._keys: list[Any] = [_EMPTY_KEYS] * shards
        self._vals: list[Any] = [_EMPTY_VALS] * shards
        self._on_disk = [False] * shards
        self._dirty = [False] * shards
        self._pending: list[list[tuple[IntArray, FloatArray]]] = [
            [] for _ in range(shards)
        ]
        self._pending_entries = [0] * shards
        self._checksums: dict[str, str] = {}

    # ------------------------------------------------------------------ basics

    @property
    def num_shards(self) -> int:
        return self.layout.num_shards

    @property
    def store(self) -> ShardStore | None:
        return self._store

    def num_entries(self) -> int:
        """Stored pairs across all shards (including explicit zeros)."""
        return sum(
            int(self._shard_arrays(s)[0].shape[0]) for s in range(self.num_shards)
        )

    def shard_nnz(self, shard: int) -> int:
        return int(self._shard_arrays(shard)[0].shape[0])

    # ------------------------------------------------------------------ writes

    def set_block(
        self,
        rows: IntArray | Iterable[int],
        cols: IntArray | Iterable[int],
        values: FloatArray | Iterable[float] | float,
    ) -> None:
        """Bulk-store ``values`` at positions ``(rows, cols)``.

        Same contract as :meth:`repro.matrix.UserPairMatrix.set_block`:
        later writes win over earlier ones.  Entries are routed to their
        row shard; a shard whose buffered entries exceed the byte budget
        spills to its store immediately.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1 or rows.shape != cols.shape:
            raise ValidationError(
                f"rows and cols must be equal-length 1-D arrays, got shapes "
                f"{rows.shape} and {cols.shape}"
            )
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 0:
            values = np.full(rows.shape, float(values))
        elif values.shape != rows.shape:
            raise ValidationError(
                f"values shape {values.shape} does not match {rows.size} pairs"
            )
        else:
            values = values.copy()
        if values.size and not np.isfinite(values).all():
            raise ValidationError("pair values must be finite")
        n = self._n
        if rows.size:
            if rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n:
                raise ValidationError(
                    f"positions must lie in [0, {n}); got rows in "
                    f"[{rows.min()}, {rows.max()}], cols in [{cols.min()}, {cols.max()}]"
                )
        if not rows.size:
            return
        keys = rows * n + cols
        shard_idx = self.layout.shard_of_rows(rows)
        for s in np.unique(shard_idx).tolist():
            mask = shard_idx == s
            self._pending[s].append((keys[mask], values[mask]))
            self._pending_entries[s] += int(np.count_nonzero(mask))
            self._dirty[s] = True
            self._maybe_spill(s)

    def set(self, source_id: str, target_id: str, value: float) -> None:
        """Store one pair (buffered like a one-entry :meth:`set_block`)."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        self.set_block(
            np.asarray([i], dtype=np.int64),
            np.asarray([j], dtype=np.int64),
            np.asarray([float(value)], dtype=np.float64),
        )

    def set_shard_entries(self, shard: int, keys: IntArray, vals: FloatArray) -> None:
        """Replace one shard's content with consolidated entries in O(nnz).

        The fast-path writer for streaming builders
        (:meth:`repro.trust.TrustDeriver.derive_sharded`): ``keys`` must
        be strictly increasing flat keys inside the shard's row range.
        Pending buffered writes for the shard are discarded.
        """
        lo_key, hi_key = self.layout.key_range(shard, self._n)
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        if keys.ndim != 1 or vals.ndim != 1 or keys.shape != vals.shape:
            raise ValidationError(
                f"keys and values must be equal-length 1-D arrays, got shapes "
                f"{keys.shape} and {vals.shape}"
            )
        if keys.size:
            if keys[0] < lo_key or keys[-1] >= hi_key:
                raise ValidationError(
                    f"shard {shard} keys must lie in [{lo_key}, {hi_key}); got "
                    f"[{keys[0]}, {keys[-1]}]"
                )
            if keys.size > 1 and not bool(np.all(keys[1:] > keys[:-1])):
                raise ValidationError(
                    "keys must be strictly increasing (sorted, unique)"
                )
            if not np.isfinite(vals).all():
                raise ValidationError("pair values must be finite")
        keys.setflags(write=False)
        vals.setflags(write=False)
        self._keys[shard] = keys
        self._vals[shard] = vals
        self._pending[shard] = []
        self._pending_entries[shard] = 0
        self._dirty[shard] = True
        self._maybe_spill(shard)

    @classmethod
    def from_arrays(
        cls,
        users: LabelIndex | Iterable[str],
        rows: IntArray | Iterable[int],
        cols: IntArray | Iterable[int],
        values: FloatArray | Iterable[float] | float,
        *,
        layout: ShardLayout | None = None,
        num_shards: int = 4,
        store: ShardStore | None = None,
        spill_bytes: int | None = None,
    ) -> "ShardedPairMatrix":
        """Build from position arrays in one bulk write."""
        out = cls(
            users,
            layout,
            num_shards=num_shards,
            store=store,
            spill_bytes=spill_bytes,
        )
        out.set_block(rows, cols, values)
        return out

    # ---------------------------------------------------------------- patching

    def patch_with(
        self,
        region: UserPairMatrix,
        *,
        rows: IntArray,
        cols: IntArray,
    ) -> tuple[int, int]:
        """Merge a recomputed ``region`` over this matrix, shard by shard.

        ``region`` holds every stored entry of ``(rows x all) | (all x
        cols)`` on the **same** user axis (sharded patching does not grow
        axes; axis growth re-derives from scratch).  Only the shards the
        region touches are rewritten -- each via the O(nnz) masked
        scatter of :meth:`repro.matrix.UserPairMatrix.patched` -- and
        untouched shards keep their (possibly on-disk) entries without
        any IO.  Returns ``(kept_entries, shards_patched)``.
        """
        if region.users != self.users:
            raise ValidationError("region must be indexed by this matrix's user axis")
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        cols = np.unique(np.asarray(cols, dtype=np.int64))
        n = self._n
        for name, positions in (("rows", rows), ("cols", cols)):
            if positions.size and (positions[0] < 0 or positions[-1] >= n):
                raise ValidationError(f"{name} positions must lie in [0, {n})")
        region_keys = region.support_keys()
        region_vals = region.values()
        if cols.size:
            # a changed column crosses every row block
            touched = np.arange(self.num_shards, dtype=np.int64)
        else:
            touched = self.layout.shards_for_rows(rows)
        touched_set = set(touched.tolist())
        kept_total = 0
        with obs.span(
            "shard.patch",
            shards=len(touched_set),
            region_entries=int(region_keys.size),
        ):
            for s in range(self.num_shards):
                if s not in touched_set:
                    kept_total += self.shard_nnz(s)
                    continue
                keys, vals = self._shard_arrays(s)
                shard_matrix = UserPairMatrix.from_flat_sorted(
                    self.users, np.asarray(keys), np.asarray(vals)
                )
                lo_key, hi_key = self.layout.key_range(s, n)
                r_lo, r_hi = np.searchsorted(region_keys, [lo_key, hi_key])
                shard_region = UserPairMatrix.from_flat_sorted(
                    self.users, region_keys[r_lo:r_hi], region_vals[r_lo:r_hi]
                )
                patched, kept = shard_matrix.patched(
                    self.users, shard_region, rows=rows, cols=cols
                )
                kept_total += kept
                self.set_shard_entries(s, patched.support_keys(), patched.values())
            obs.add("shard.patched_shards", len(touched_set))
        return kept_total, len(touched_set)

    # ------------------------------------------------------------------- reads

    def shard_entries(self, shard: int) -> tuple[IntArray, FloatArray]:
        """One shard's consolidated ``(keys, values)`` arrays, read-only.

        The returned arrays are shared views -- memory-mapped when the
        shard lives on disk -- and are invalidated by the next write to
        the shard; copy before holding long-term.
        """
        return self._shard_arrays(shard)

    def shard_csr(self, shard: int) -> sparse.csr_matrix:
        """One shard as a ``rows_in_shard x U`` CSR block (local rows)."""
        keys, vals = self._shard_arrays(shard)
        lo, hi = self.layout.row_range(shard)
        n = self._n
        local_rows = np.asarray(keys) // n - lo
        indices = np.asarray(keys) % n
        indptr = np.zeros(hi - lo + 1, dtype=np.int64)
        if local_rows.size:
            np.cumsum(np.bincount(local_rows, minlength=hi - lo), out=indptr[1:])
        matrix = sparse.csr_matrix(
            (np.asarray(vals, dtype=np.float64), indices, indptr),
            shape=(hi - lo, n),
        )
        matrix.has_sorted_indices = True
        matrix.has_canonical_format = True
        return matrix

    def entries_arrays(self) -> tuple[IntArray, IntArray, FloatArray]:
        """All stored entries as ``(rows, cols, values)`` position arrays.

        Row-major sorted, identical to the in-memory
        :meth:`repro.matrix.UserPairMatrix.entries_arrays`.  This
        materialises every shard -- it is the compatibility reader for
        consumers that genuinely need the whole matrix, not a hot path.
        """
        keys = self.support_keys()
        return keys // self._n, keys % self._n, self.values()

    def support_keys(self) -> IntArray:
        """All stored pairs as sorted flat keys ``i * U + j`` (materialised)."""
        parts = [
            np.asarray(self._shard_arrays(s)[0]) for s in range(self.num_shards)
        ]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    def values(self) -> FloatArray:
        """All stored values in row-major order (materialised copy)."""
        parts = [
            np.asarray(self._shard_arrays(s)[1], dtype=np.float64)
            for s in range(self.num_shards)
        ]
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )

    def get(self, source_id: str, target_id: str, default: float = 0.0) -> float:
        """Stored value for the pair, or ``default`` when absent."""
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        key = i * self._n + j
        shard = int(self.layout.shard_of_rows(np.asarray([i], dtype=np.int64))[0])
        keys, vals = self._shard_arrays(shard)
        pos = int(np.searchsorted(np.asarray(keys), key))
        if pos < keys.shape[0] and int(keys[pos]) == key:
            return float(vals[pos])
        return default

    def contains(self, source_id: str, target_id: str) -> bool:
        """Whether the pair is explicitly stored (even with value 0)."""
        sentinel = float("nan")
        value = self.get(source_id, target_id, default=sentinel)
        return not np.isnan(value)

    def density(self) -> float:
        """Stored pairs divided by the ``U * (U - 1)`` ordered pairs."""
        possible = self._n * (self._n - 1)
        if possible == 0:
            return 0.0
        return self.num_entries() / possible

    def to_pair_matrix(self) -> UserPairMatrix:
        """Materialise the whole matrix as an in-memory ``UserPairMatrix``."""
        return UserPairMatrix.from_flat_sorted(
            self.users, self.support_keys(), self.values()
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ShardedPairMatrix):
            if self.users != other.users:
                return False
            return np.array_equal(
                self.support_keys(), other.support_keys()
            ) and np.array_equal(self.values(), other.values())
        if isinstance(other, UserPairMatrix):
            if self.users != other.users:
                return False
            return np.array_equal(
                self.support_keys(), other.support_keys()
            ) and np.array_equal(self.values(), other.values())
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("ShardedPairMatrix is mutable and unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedPairMatrix(users={self._n}, shards={self.num_shards}, "
            f"store={None if self._store is None else str(self._store.root)!r})"
        )

    # ------------------------------------------------------------- persistence

    def flush(self, *, epoch: int = 0) -> dict[str, Any]:
        """Write every dirty shard plus the manifest; returns the manifest.

        Requires a store.  After a flush the matrix can be reopened with
        :meth:`open`; in-memory shard state is dropped so subsequent
        reads are memory-mapped.
        """
        store = self._require_store()
        with obs.span("shard.store.flush", shards=self.num_shards):
            shard_docs = []
            checksums: dict[str, str] = {}
            for s in range(self.num_shards):
                keys_name, vals_name = _shard_files(s)
                if self._dirty[s] or not self._on_disk[s]:
                    self._flush_shard(s)
                checksums[keys_name] = self._checksums[keys_name]
                checksums[vals_name] = self._checksums[vals_name]
                lo, hi = self.layout.row_range(s)
                shard_docs.append(
                    {
                        "index": s,
                        "rows": [lo, hi],
                        "entries": self.shard_nnz(s),
                        "files": {"keys": keys_name, "vals": vals_name},
                    }
                )
            store.write_labels(self.users.labels)
            checksums[USERS_NAME] = store.checksum(USERS_NAME)
            manifest: dict[str, Any] = {
                "format": FORMAT,
                "n_users": self._n,
                "epoch": int(epoch),
                "bounds": list(self.layout.bounds),
                "dtype": {"keys": "int64", "vals": "float64"},
                "entries": self.num_entries(),
                "shards": shard_docs,
                "checksums": checksums,
            }
            store.write_manifest(manifest)
        return manifest

    @classmethod
    def open(cls, store: ShardStore) -> "ShardedPairMatrix":
        """Reopen a flushed matrix from its store (reads stay mmapped)."""
        with obs.span("shard.store.load"):
            manifest = store.read_manifest()
            labels = store.read_labels()
            if len(labels) != manifest["n_users"]:
                raise ValidationError(
                    f"user axis file has {len(labels)} labels but the manifest "
                    f"says {manifest['n_users']}"
                )
            layout = ShardLayout(
                n_rows=int(manifest["n_users"]),
                bounds=tuple(int(b) for b in manifest["bounds"]),
            )
            out = cls(LabelIndex(labels), layout, store=store)
            for s in range(out.num_shards):
                out._keys[s] = None
                out._vals[s] = None
                out._on_disk[s] = True
            out._checksums = dict(manifest.get("checksums", {}))
        return out

    # -------------------------------------------------------------- internals

    def _require_store(self) -> ShardStore:
        if self._store is None:
            raise ValidationError(
                "this ShardedPairMatrix has no store; pass store= (or "
                "spill_bytes=) at construction to enable persistence"
            )
        return self._store

    def _estimated_bytes(self, shard: int) -> int:
        consolidated = 0
        if self._keys[shard] is not None and not self._on_disk[shard]:
            consolidated = int(self._keys[shard].shape[0])
        return ENTRY_BYTES * (consolidated + self._pending_entries[shard])

    def _maybe_spill(self, shard: int) -> None:
        if self._spill_bytes is None or self._store is None:
            return
        if self._estimated_bytes(shard) > self._spill_bytes:
            obs.add("shard.spill")
            self._flush_shard(shard)

    def _flush_shard(self, shard: int) -> None:
        store = self._require_store()
        keys, vals = self._consolidate(shard)
        keys_name, vals_name = _shard_files(shard)
        store.write_array(keys_name, np.asarray(keys))
        store.write_array(vals_name, np.asarray(vals, dtype=np.float64))
        self._checksums[keys_name] = store.checksum(keys_name)
        self._checksums[vals_name] = store.checksum(vals_name)
        self._on_disk[shard] = True
        self._dirty[shard] = False
        # drop the heap copy: the next read memory-maps the files
        self._keys[shard] = None
        self._vals[shard] = None

    def _shard_arrays(self, shard: int) -> tuple[IntArray, FloatArray]:
        self.layout._require_shard(shard)
        if self._pending[shard]:
            return self._consolidate(shard)
        if self._keys[shard] is None:
            store = self._require_store()
            keys_name, vals_name = _shard_files(shard)
            obs.add("shard.miss")
            self._keys[shard] = store.read_array(keys_name)
            self._vals[shard] = store.read_array(vals_name)
        else:
            obs.add("shard.hit")
        return self._keys[shard], self._vals[shard]

    def _consolidate(self, shard: int) -> tuple[IntArray, FloatArray]:
        """Merge pending blocks into the shard (last write per key wins)."""
        if not self._pending[shard]:
            if self._keys[shard] is None:
                return self._shard_arrays(shard)
            return self._keys[shard], self._vals[shard]
        if self._keys[shard] is None:
            # shard was spilled with writes still arriving: materialise
            # the on-disk entries to merge against
            store = self._require_store()
            keys_name, vals_name = _shard_files(shard)
            obs.add("shard.miss")
            base_keys = np.asarray(store.read_array(keys_name))
            base_vals = np.asarray(store.read_array(vals_name))
        else:
            base_keys = np.asarray(self._keys[shard])
            base_vals = np.asarray(self._vals[shard])
        keys = np.concatenate([base_keys] + [k for k, _ in self._pending[shard]])
        vals = np.concatenate([base_vals] + [v for _, v in self._pending[shard]])
        self._pending[shard] = []
        self._pending_entries[shard] = 0
        # keep the LAST write per key: unique over the reversed array picks
        # the first occurrence there, i.e. the most recent write
        uniq, idx = np.unique(keys[::-1], return_index=True)
        merged_vals = vals[::-1][idx]
        uniq.setflags(write=False)
        merged_vals.setflags(write=False)
        self._keys[shard] = uniq
        self._vals[shard] = merged_vals
        return uniq, merged_vals
