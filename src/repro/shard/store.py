"""Directory-backed storage for sharded trust artifacts.

A :class:`ShardStore` owns one directory.  Array payloads are plain
``.npy`` files so reads can be memory-mapped (``np.load(mmap_mode="r")``
never pulls the whole shard into the heap); the ``manifest.json``
document records the shard boundaries, dtypes, entry counts, the
community epoch the artifact corresponds to, and a SHA-256 checksum per
payload file.  :meth:`ShardStore.verify` re-hashes every payload against
the manifest -- the integrity gate behind ``repro shard verify`` and the
CI perf smoke.

All IO is surfaced through :mod:`repro.obs`: ``shard.write.bytes`` /
``shard.read.bytes`` counters and ``shard.store.flush`` /
``shard.store.load`` spans.
"""

from __future__ import annotations

import hashlib
import json
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.common.arrays import FloatArray, IntArray
from repro.common.errors import ValidationError

__all__ = ["ShardStore", "MANIFEST_NAME", "FORMAT"]

MANIFEST_NAME = "manifest.json"
USERS_NAME = "users.txt"
FORMAT = "repro.shard/v1"

_HASH_CHUNK = 1 << 18  # stream checksums in 256 KiB chunks: bounded memory


class ShardStore:
    """One directory of ``.npy`` shard payloads plus a JSON manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @classmethod
    def temporary(cls, prefix: str = "repro-shard-") -> "ShardStore":
        """A store in a fresh temp directory, removed when unreferenced."""
        root = tempfile.mkdtemp(prefix=prefix)
        store = cls(root)
        weakref.finalize(store, shutil.rmtree, root, True)
        return store

    def path(self, name: str) -> Path:
        """Absolute path of a payload or manifest file inside the store."""
        if "/" in name or "\\" in name or name.startswith("."):
            raise ValidationError(f"store file names must be flat, got {name!r}")
        return self.root / name

    # ------------------------------------------------------------------ arrays

    def write_array(self, name: str, values: IntArray | FloatArray) -> int:
        """Persist one array as ``<name>.npy``; returns the bytes written."""
        target = self.path(name)
        with open(target, "wb") as handle:
            np.save(handle, np.ascontiguousarray(values))
        size = target.stat().st_size
        obs.add("shard.write.bytes", size)
        obs.add("shard.write.files")
        return int(size)

    def read_array(self, name: str, *, mmap: bool = True) -> Any:
        """Load one array, memory-mapped read-only by default."""
        target = self.path(name)
        if not target.exists():
            raise ValidationError(f"store is missing payload {name!r}")
        obs.add("shard.read.bytes", target.stat().st_size)
        obs.add("shard.read.files")
        if mmap:
            return np.load(target, mmap_mode="r")
        return np.load(target)

    # ---------------------------------------------------------------- manifest

    def write_manifest(self, document: dict[str, Any]) -> None:
        with open(self.path(MANIFEST_NAME), "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def read_manifest(self) -> dict[str, Any]:
        target = self.path(MANIFEST_NAME)
        if not target.exists():
            raise ValidationError(f"no manifest at {target}")
        with open(target, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict) or document.get("format") != FORMAT:
            raise ValidationError(
                f"{target} is not a {FORMAT} manifest "
                f"(format={document.get('format')!r})"
            )
        return document

    def has_manifest(self) -> bool:
        return self.path(MANIFEST_NAME).exists()

    # ------------------------------------------------------------------ labels

    def write_labels(self, labels: tuple[str, ...]) -> None:
        """Persist the user axis, one label per line (order is the axis)."""
        with open(self.path(USERS_NAME), "w", encoding="utf-8") as handle:
            for label in labels:
                if "\n" in label:
                    raise ValidationError(
                        f"labels may not contain newlines, got {label!r}"
                    )
                handle.write(label)
                handle.write("\n")

    def read_labels(self) -> tuple[str, ...]:
        target = self.path(USERS_NAME)
        if not target.exists():
            raise ValidationError(f"store is missing the user axis file {USERS_NAME}")
        with open(target, "r", encoding="utf-8") as handle:
            return tuple(line.rstrip("\n") for line in handle if line != "\n")

    # --------------------------------------------------------------- integrity

    def checksum(self, name: str) -> str:
        """Streamed SHA-256 of one payload file (hex digest)."""
        digest = hashlib.sha256()
        buffer = bytearray(_HASH_CHUNK)  # one reusable buffer, no per-chunk bytes
        view = memoryview(buffer)
        with open(self.path(name), "rb", buffering=0) as handle:
            while True:
                read = handle.readinto(buffer)
                if not read:
                    break
                digest.update(view[:read])
        return digest.hexdigest()

    def verify(self) -> list[str]:
        """Names of payloads whose checksum disagrees with the manifest.

        Missing payloads are reported too; an empty list means the store
        is internally consistent.
        """
        manifest = self.read_manifest()
        mismatched: list[str] = []
        with obs.span("shard.store.verify", files=len(manifest.get("checksums", {}))):
            for name, expected in sorted(manifest.get("checksums", {}).items()):
                target = self.path(name)
                if not target.exists() or self.checksum(name) != expected:
                    mismatched.append(name)
        return mismatched

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardStore({str(self.root)!r})"
