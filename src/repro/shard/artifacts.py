"""Save/load facade for the pipeline's staged outputs.

An :class:`ArtifactStore` is one directory holding a complete derived
state: the web of trust ``T-hat`` as a sharded sub-store (``derived/``),
the dense ``E`` / ``A`` user-by-category matrices, the propagation score
vector, and an ``artifacts.json`` manifest tying them to a community
epoch with per-file checksums.  It is the persistence layer behind
``repro shard build`` / ``inspect`` / ``verify``: a pipeline run can be
written once and reopened later (or on another machine) without paying
the derive again -- reads of the pair matrix stay memory-mapped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro import obs
from repro.common.errors import ValidationError
from repro.matrix.labels import LabelIndex
from repro.matrix.pair import UserPairMatrix
from repro.matrix.user_category import UserCategoryMatrix
from repro.propagation.scores import PropagationScores
from repro.shard.layout import ShardLayout
from repro.shard.matrix import ShardedPairMatrix
from repro.shard.store import ShardStore

__all__ = ["ArtifactStore", "StoredArtifacts", "ARTIFACTS_NAME", "DERIVED_DIR"]

ARTIFACTS_NAME = "artifacts.json"
DERIVED_DIR = "derived"

_EXPERTISE_NAME = "expertise.npy"
_AFFILIATION_NAME = "affiliation.npy"
_SCORES_NAME = "scores.npy"
_CATEGORIES_NAME = "categories.txt"


@dataclass(frozen=True)
class StoredArtifacts:
    """What :meth:`ArtifactStore.load` hands back."""

    expertise: UserCategoryMatrix
    affiliation: UserCategoryMatrix
    derived: ShardedPairMatrix
    scores: PropagationScores
    epoch: int


class ArtifactStore:
    """One directory of persisted pipeline outputs plus a manifest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._flat = ShardStore(self.root)
        self.derived_store = ShardStore(self.root / DERIVED_DIR)

    # -------------------------------------------------------------------- save

    def save(
        self,
        *,
        expertise: UserCategoryMatrix,
        affiliation: UserCategoryMatrix,
        derived: UserPairMatrix | ShardedPairMatrix,
        scores: PropagationScores,
        epoch: int = 0,
        num_shards: int = 4,
    ) -> dict[str, Any]:
        """Persist one consistent set of pipeline outputs; returns the manifest.

        An in-memory ``derived`` matrix is sharded into ``num_shards`` row
        blocks on the way out; a :class:`ShardedPairMatrix` is flushed
        shard by shard (its own store is left untouched).
        """
        if expertise.users != derived.users or affiliation.users != derived.users:
            raise ValidationError("artifacts must share one user axis")
        if scores.users != derived.users:
            raise ValidationError("scores must cover the derived matrix's user axis")
        with obs.span("shard.artifacts.save", users=len(derived.users)):
            sharded = self._as_sharded(derived, num_shards)
            derived_manifest = sharded.flush(epoch=epoch)
            checksums: dict[str, str] = {}
            for name, values in (
                (_EXPERTISE_NAME, expertise.values_view()),
                (_AFFILIATION_NAME, affiliation.values_view()),
                (_SCORES_NAME, scores.scores_array()),
            ):
                self._flat.write_array(name, np.ascontiguousarray(values))
                checksums[name] = self._flat.checksum(name)
            self._write_categories(expertise.categories)
            checksums[_CATEGORIES_NAME] = self._flat.checksum(_CATEGORIES_NAME)
            manifest: dict[str, Any] = {
                "format": "repro.artifacts/v1",
                "epoch": int(epoch),
                "n_users": len(derived.users),
                "n_categories": len(expertise.categories),
                "derived": {
                    "dir": DERIVED_DIR,
                    "entries": derived_manifest["entries"],
                    "shards": len(derived_manifest["shards"]),
                },
                "scores": {
                    "converged": bool(scores.converged),
                    "iterations": scores.iterations,
                    "residual": scores.residual,
                },
                "checksums": checksums,
            }
            with open(self.root / ARTIFACTS_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return manifest

    # -------------------------------------------------------------------- load

    def load(self) -> StoredArtifacts:
        """Reopen a saved artifact set (the pair matrix stays memory-mapped)."""
        with obs.span("shard.artifacts.load"):
            manifest = self.read_manifest()
            derived = ShardedPairMatrix.open(self.derived_store)
            users = derived.users
            categories = LabelIndex(self._read_categories())
            e_values = np.asarray(self._flat.read_array(_EXPERTISE_NAME, mmap=False))
            a_values = np.asarray(self._flat.read_array(_AFFILIATION_NAME, mmap=False))
            s_values = np.asarray(self._flat.read_array(_SCORES_NAME, mmap=False))
            meta = manifest.get("scores", {})
            scores = PropagationScores(
                users,
                s_values,
                converged=bool(meta.get("converged", True)),
                iterations=meta.get("iterations"),
                residual=meta.get("residual"),
            )
            return StoredArtifacts(
                expertise=UserCategoryMatrix(users, categories, e_values),
                affiliation=UserCategoryMatrix(users, categories, a_values),
                derived=derived,
                scores=scores,
                epoch=int(manifest["epoch"]),
            )

    def read_manifest(self) -> dict[str, Any]:
        target = self.root / ARTIFACTS_NAME
        if not target.exists():
            raise ValidationError(f"no artifact manifest at {target}")
        with open(target, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict) or manifest.get("format") != "repro.artifacts/v1":
            raise ValidationError(f"{target} is not a repro.artifacts/v1 manifest")
        return manifest

    # --------------------------------------------------------------- integrity

    def verify(self) -> list[str]:
        """Payloads whose checksum disagrees with either manifest.

        Covers both the flat artifact files and the ``derived/`` shard
        payloads; an empty list means the whole directory is consistent.
        """
        manifest = self.read_manifest()
        mismatched: list[str] = []
        for name, expected in sorted(manifest.get("checksums", {}).items()):
            target = self.root / name
            if not target.exists() or self._flat.checksum(name) != expected:
                mismatched.append(name)
        mismatched.extend(
            f"{DERIVED_DIR}/{name}" for name in self.derived_store.verify()
        )
        return mismatched

    # --------------------------------------------------------------- internals

    def _as_sharded(
        self, derived: UserPairMatrix | ShardedPairMatrix, num_shards: int
    ) -> ShardedPairMatrix:
        if isinstance(derived, ShardedPairMatrix):
            if derived.store is not None and derived.store.root == self.derived_store.root:
                return derived
            copy = ShardedPairMatrix(
                derived.users, derived.layout, store=self.derived_store
            )
            for s in range(derived.num_shards):
                keys, vals = derived.shard_entries(s)
                copy.set_shard_entries(s, np.asarray(keys), np.asarray(vals))
            return copy
        out = ShardedPairMatrix(
            derived.users,
            ShardLayout.even(len(derived.users), num_shards),
            store=self.derived_store,
        )
        n = len(derived.users)
        keys = derived.support_keys()
        vals = derived.values()
        for s, lo, hi in out.layout:
            k_lo, k_hi = np.searchsorted(keys, [lo * n, hi * n])
            out.set_shard_entries(s, keys[k_lo:k_hi], vals[k_lo:k_hi])
        return out

    def _write_categories(self, categories: LabelIndex) -> None:
        with open(self.root / _CATEGORIES_NAME, "w", encoding="utf-8") as handle:
            for label in categories.labels:
                if "\n" in label:
                    raise ValidationError(
                        f"labels may not contain newlines, got {label!r}"
                    )
                handle.write(label)
                handle.write("\n")

    def _read_categories(self) -> tuple[str, ...]:
        target = self.root / _CATEGORIES_NAME
        if not target.exists():
            raise ValidationError(f"store is missing {_CATEGORIES_NAME}")
        with open(target, "r", encoding="utf-8") as handle:
            return tuple(line.rstrip("\n") for line in handle if line != "\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"
