"""The paper's observed user-pair relations: ``R``, ``B`` and ``T``.

- ``R`` (direct connections): ``R_ij = 1`` iff user *i* rated at least one
  review written by user *j*;
- ``B`` (baseline, §IV.C): ``B_ij`` = the mean rating *i* gave to *j*'s
  reviews -- defined exactly on the support of ``R``;
- ``T`` (ground truth): the explicit web of trust, binary.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.community import Community
from repro.matrix import LabelIndex, UserPairMatrix

__all__ = ["direct_connection_matrix", "baseline_matrix", "ground_truth_matrix"]


def direct_connection_matrix(
    community: Community, users: LabelIndex | None = None
) -> UserPairMatrix:
    """Build ``R`` with entry values = number of ratings *i* gave *j*.

    The paper treats ``R`` as binary; the stored count is extra diagnostic
    information (any stored entry means ``R_ij = 1``).
    """
    users = users or LabelIndex(community.user_ids())
    matrix = UserPairMatrix(users)
    for (rater_id, writer_id), values in community.direct_connections().items():
        if rater_id == writer_id:
            continue  # self-connections carry no trust signal
        matrix.set(rater_id, writer_id, float(len(values)))
    return matrix


def baseline_matrix(community: Community, users: LabelIndex | None = None) -> UserPairMatrix:
    """Build the paper's baseline ``B``: mean rating per direct connection.

    ``B_ij`` is the average of all ratings user *i* gave to user *j*'s
    reviews; it exists only where ``R_ij = 1``.
    """
    users = users or LabelIndex(community.user_ids())
    matrix = UserPairMatrix(users)
    for (rater_id, writer_id), values in community.direct_connections().items():
        if rater_id == writer_id:
            continue
        matrix.set(rater_id, writer_id, sum(values) / len(values))
    return matrix


def ground_truth_matrix(community: Community, users: LabelIndex | None = None) -> UserPairMatrix:
    """Build the explicit web of trust ``T`` (binary entries of 1.0)."""
    users = users or LabelIndex(community.user_ids())
    matrix = UserPairMatrix(users)
    for truster_id, trustee_id in community.trust_edges():
        matrix.set(truster_id, trustee_id, 1.0)
    return matrix
