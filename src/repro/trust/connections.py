"""The paper's observed user-pair relations: ``R``, ``B`` and ``T``.

- ``R`` (direct connections): ``R_ij = 1`` iff user *i* rated at least one
  review written by user *j*;
- ``B`` (baseline, §IV.C): ``B_ij`` = the mean rating *i* gave to *j*'s
  reviews -- defined exactly on the support of ``R``;
- ``T`` (ground truth): the explicit web of trust, binary.

``R`` and ``B`` are assembled from the community's columnar view
(:meth:`repro.community.Community.columns`): the unique rating pairs with
their counts and mean values come back as position arrays and land in the
matrix through one :meth:`repro.matrix.UserPairMatrix.set_block` call.
The per-pair Python loop survives only for callers that supply a custom
user axis differing from the community's own.
"""

from __future__ import annotations

import numpy as np

from repro.community import Community
from repro.matrix import LabelIndex, UserPairMatrix

__all__ = ["direct_connection_matrix", "baseline_matrix", "ground_truth_matrix"]


def direct_connection_matrix(
    community: Community, users: LabelIndex | None = None
) -> UserPairMatrix:
    """Build ``R`` with entry values = number of ratings *i* gave *j*.

    The paper treats ``R`` as binary; the stored count is extra diagnostic
    information (any stored entry means ``R_ij = 1``).
    """
    columns = community.columns()
    if users is None or users == columns.users:
        matrix = UserPairMatrix(users if users is not None else columns.users)
        rater, writer, counts, _means = columns.direct_connection_arrays()
        matrix.set_block(rater, writer, counts.astype(np.float64))
        return matrix
    matrix = UserPairMatrix(users)
    for (rater_id, writer_id), values in community.direct_connections().items():
        if rater_id == writer_id:
            continue  # self-connections carry no trust signal
        matrix.set(rater_id, writer_id, float(len(values)))
    return matrix


def baseline_matrix(community: Community, users: LabelIndex | None = None) -> UserPairMatrix:
    """Build the paper's baseline ``B``: mean rating per direct connection.

    ``B_ij`` is the average of all ratings user *i* gave to user *j*'s
    reviews; it exists only where ``R_ij = 1``.
    """
    columns = community.columns()
    if users is None or users == columns.users:
        matrix = UserPairMatrix(users if users is not None else columns.users)
        rater, writer, _counts, means = columns.direct_connection_arrays()
        matrix.set_block(rater, writer, means)
        return matrix
    matrix = UserPairMatrix(users)
    for (rater_id, writer_id), values in community.direct_connections().items():
        if rater_id == writer_id:
            continue
        matrix.set(rater_id, writer_id, sum(values) / len(values))
    return matrix


def ground_truth_matrix(community: Community, users: LabelIndex | None = None) -> UserPairMatrix:
    """Build the explicit web of trust ``T`` (binary entries of 1.0)."""
    users = users or LabelIndex(community.user_ids())
    matrix = UserPairMatrix(users)
    edges = community.trust_edges()
    if edges:
        trusters, trustees = zip(*edges)
        matrix.set_block(users.positions(trusters), users.positions(trustees), 1.0)
    return matrix
