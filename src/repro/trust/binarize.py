"""Converting continuous trust values into a binary web of trust (§IV.C).

The ground-truth web of trust is binary, so the paper converts each user's
continuous trust row into binary decisions: user *i* is judged to trust user
*j* iff ``T-hat_ij`` is within the top ``k_i`` per cent of *i*'s derived
connections.  ``k_i`` is the user's **generousness** -- the fraction of
their direct connections they explicitly trust:

.. math::

    k_i = \\frac{|R_i \\cap T_i|}{|R_i|}

Applying the *same* per-user ``k_i`` to both the model and the baseline
makes the comparison fair while respecting that some users hand out trust
freely and others almost never.
"""

from __future__ import annotations

from typing import Mapping

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix

__all__ = ["generousness", "binarize_top_k"]


def generousness(
    connections: UserPairMatrix, ground_truth: UserPairMatrix
) -> dict[str, float]:
    """Per-user trust generousness ``k_i = |R_i ∩ T_i| / |R_i|``.

    Users with no direct connections get ``k_i = 0`` (no evidence of any
    willingness to trust).
    """
    if connections.users != ground_truth.users:
        raise ValidationError("connection and ground-truth matrices must share a user axis")
    result: dict[str, float] = {}
    for source in connections.source_ids():
        row = connections.row(source)
        if not row:
            continue
        trusted = sum(1 for target in row if ground_truth.contains(source, target))
        result[source] = trusted / len(row)
    return result


def binarize_top_k(
    matrix: UserPairMatrix,
    k_by_user: Mapping[str, float],
    *,
    default_k: float = 0.0,
) -> UserPairMatrix:
    """Binarise each row of ``matrix`` at the user's top-``k`` fraction.

    For user *i* with ``n_i`` stored entries, the ``round(k_i * n_i)``
    highest-valued entries become 1; everything else is dropped.  Ties at
    the cut are resolved in favour of earlier axis positions (stable), the
    way a site would cut a ranked list: rows iterate in canonical
    row-major order, so equal matrices always binarise identically
    regardless of the order their entries were stored in.

    Parameters
    ----------
    matrix:
        Continuous trust values (e.g. ``T-hat`` or baseline ``B``).
    k_by_user:
        Per-user fractions in ``[0, 1]`` (missing users fall back to
        ``default_k``).

    Returns
    -------
    UserPairMatrix
        A binary matrix whose stored entries all have value 1.0.
    """
    for user, k in k_by_user.items():
        if not 0.0 <= k <= 1.0:
            raise ValidationError(f"k for user {user!r} must be in [0, 1], got {k!r}")
    if not 0.0 <= default_k <= 1.0:
        raise ValidationError(f"default_k must be in [0, 1], got {default_k!r}")

    result = UserPairMatrix(matrix.users)
    for source in matrix.source_ids():
        row = matrix.row(source)
        k = k_by_user.get(source, default_k)
        keep = _round_half_up(k * len(row))
        if keep <= 0:
            continue
        # stable: sort by value descending, preserving insertion order on ties
        ranked = sorted(row.items(), key=lambda item: -item[1])
        for target, _value in ranked[:keep]:
            result.set(source, target, 1.0)
    return result


def _round_half_up(x: float) -> int:
    """Round to nearest integer, halves up, with float-noise tolerance."""
    return int(x + 0.5 + 1e-9)
