"""Deriving the degree-of-trust matrix ``T-hat`` (paper eq. 5).

.. math::

    \\hat{T}_{ij} = \\frac{\\sum_c A_{ic} E_{jc}}{\\sum_c A_{ic}}

Row ``i`` of ``T-hat`` is an affinity-weighted average of user *j*'s
per-category expertise: an expert in categories that matter to *i* earns a
high degree of trust from *i*.  ``T-hat_ij = 0`` means the categories *i*
cares about and the categories *j* is expert in do not overlap.

Implementation notes
--------------------
The full matrix is the product ``W @ E.T`` where ``W`` is ``A`` with rows
normalised to sum 1 (zero-affinity rows stay zero).  For large communities
the product is computed in row blocks and only entries above ``min_value``
are stored, keeping memory proportional to the stored result rather than
``U^2``.

Every block product goes through :func:`_block_product`, a non-BLAS einsum
whose reduction order per output element is the fixed category sweep
``c = 0..C-1`` regardless of the operand shapes.  BLAS gemm does not give
that guarantee -- it dispatches different micro-kernels (and different
accumulation orders) by shape, so a 2-row or 7-column slice of the product
can differ in the last ulp from the same entries of the full product.
The fixed-order kernel is what lets :meth:`TrustDeriver.derive_region`
recompute an arbitrary subset of rows/columns **bitwise identical** to the
full :meth:`TrustDeriver.derive` -- the contract the incremental
:class:`repro.engine.Engine` is built on.  With the small category counts
of this problem (C ~ 12) the einsum is also at least as fast as gemm.
"""

# repro: hot-path

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.common.arrays import FloatArray, IntArray
from repro.common.errors import ValidationError
from repro.common.validation import require_non_negative, require_positive
from repro.matrix import UserCategoryMatrix, UserPairMatrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.layout import ShardLayout
    from repro.shard.matrix import ShardedPairMatrix
    from repro.shard.store import ShardStore

__all__ = ["TrustDeriver", "derive_trust"]


def _block_product(weights: FloatArray, e_transposed: FloatArray) -> FloatArray:
    """``weights @ e_transposed`` with a shape-independent reduction order.

    The non-optimised einsum path accumulates every output element over
    ``c = 0..C-1`` in sequence, so any row/column subset of the product is
    bitwise equal to the same entries of the full product (see the module
    notes); keep :func:`repro.perf.reference.reference_derive_trust` on the
    identical expression.
    """
    return np.einsum("mc,cn->mn", weights, e_transposed, optimize=False)


@dataclass(frozen=True)
class TrustDeriver:
    """Configured derivation of ``T-hat`` from ``A`` and ``E``.

    Parameters
    ----------
    min_value:
        Entries with derived trust less than or equal to this threshold are
        not stored.  The default ``0.0`` stores every strictly-positive
        degree of trust, matching the paper's reading that a zero degree
        means "no category overlap", i.e. no derived connection.
    include_self:
        Whether to store the diagonal ``T-hat_ii``.  The paper's web of
        trust has no self-edges; the default drops them.
    block_size:
        Number of truster rows processed per dense block.
    """

    min_value: float = 0.0
    include_self: bool = False
    block_size: int = 512

    def __post_init__(self) -> None:
        require_non_negative("min_value", self.min_value)
        require_positive("block_size", self.block_size)

    def derive(
        self,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
    ) -> UserPairMatrix:
        """Compute ``T-hat`` for every user pair (eq. 5).

        Both matrices must share identical user and category axes.
        """
        _require_aligned(affiliation, expertise)
        users = affiliation.users
        with obs.span(
            "derive.trust",
            users=len(users),
            categories=len(affiliation.categories),
            block_size=self.block_size,
        ):
            a_values = affiliation.values_view()
            e_transposed = expertise.values_view().T.copy()  # C x U, contiguous

            row_sums = a_values.sum(axis=1)
            active_rows = np.nonzero(row_sums > 0.0)[0]

            result = UserPairMatrix(users)
            stored = 0
            blocks = 0
            for start in range(0, len(active_rows), self.block_size):
                blocks += 1
                block_rows = active_rows[start : start + self.block_size]
                weights = a_values[block_rows, :] / row_sums[block_rows, None]
                block = _block_product(weights, e_transposed)  # block x U
                mask = block > self.min_value
                if not self.include_self:
                    mask[np.arange(block_rows.size), block_rows] = False
                local, cols = np.nonzero(mask)
                if local.size:
                    result.set_block(block_rows[local], cols, block[local, cols])
                    stored += int(local.size)
            obs.add("derive.blocks", blocks)
            obs.add("derive.entries_stored", stored)
            return result

    def derive_sharded(
        self,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
        *,
        layout: "ShardLayout | None" = None,
        num_shards: int = 4,
        store: "ShardStore | None" = None,
        spill_bytes: int | None = None,
    ) -> "ShardedPairMatrix":
        """Compute ``T-hat`` one row-block shard at a time (eq. 5).

        The streaming counterpart of :meth:`derive`: rows are processed
        shard by shard and each finished shard is handed to the
        :class:`repro.shard.ShardedPairMatrix` (which spills it to its
        store once over budget), so peak memory is one shard's entries
        plus one dense block -- never the whole matrix.  Dense blocks do
        not cross shard boundaries, so every stored entry goes through
        the same fixed-reduction-order :func:`_block_product` as the
        in-memory path and the result is **bitwise identical** to
        :meth:`derive` on the same inputs.
        """
        from repro.shard.layout import ShardLayout
        from repro.shard.matrix import ShardedPairMatrix

        _require_aligned(affiliation, expertise)
        users = affiliation.users
        n = len(users)
        layout = layout or ShardLayout.even(n, num_shards)
        result = ShardedPairMatrix(
            users, layout, store=store, spill_bytes=spill_bytes
        )
        block_size = self.block_size
        if spill_bytes is not None:
            # the spill budget bounds the dense scratch too: one block of
            # b rows costs b * n float64s, and block boundaries cannot
            # change stored values (the per-element reduction order of
            # _block_product is shape-independent)
            block_size = max(1, min(block_size, int(spill_bytes) // (8 * max(1, n))))
        with obs.span(
            "derive.trust.sharded",
            users=n,
            categories=len(affiliation.categories),
            shards=layout.num_shards,
            block_size=block_size,
        ):
            a_values = affiliation.values_view()
            e_transposed = expertise.values_view().T.copy()  # C x U, contiguous
            row_sums = a_values.sum(axis=1)
            active_rows = np.nonzero(row_sums > 0.0)[0]

            stored = 0
            blocks = 0
            for shard, lo, hi in layout:
                shard_rows = active_rows[
                    np.searchsorted(active_rows, lo) : np.searchsorted(active_rows, hi)
                ]
                key_parts: list[IntArray] = []
                val_parts: list[FloatArray] = []
                for start in range(0, len(shard_rows), block_size):
                    blocks += 1
                    block_rows = shard_rows[start : start + block_size]
                    weights = a_values[block_rows, :] / row_sums[block_rows, None]
                    block = _block_product(weights, e_transposed)  # block x U
                    mask = block > self.min_value
                    if not self.include_self:
                        mask[np.arange(block_rows.size), block_rows] = False
                    local, cols = np.nonzero(mask)
                    if local.size:
                        # np.nonzero is row-major, so keys come out strictly
                        # increasing: the set_shard_entries fast path applies
                        key_parts.append(block_rows[local] * n + cols)
                        val_parts.append(block[local, cols])
                        stored += int(local.size)
                keys = (
                    np.concatenate(key_parts)
                    if key_parts
                    else np.empty(0, dtype=np.int64)
                )
                vals = (
                    np.concatenate(val_parts)
                    if val_parts
                    else np.empty(0, dtype=np.float64)
                )
                result.set_shard_entries(shard, keys, vals)
            obs.add("derive.blocks", blocks)
            obs.add("derive.entries_stored", stored)
            return result

    def derive_region(
        self,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
        *,
        rows: IntArray,
        cols: IntArray,
    ) -> UserPairMatrix:
        """Recompute ``T-hat`` on ``(rows x all) | (all x cols)`` only.

        ``rows`` are source positions whose affinity row changed, ``cols``
        target positions whose expertise row changed; entries outside the
        union region cannot have moved (eq. 5 reads exactly ``A[i, :]`` and
        ``E[j, :]``).  Every stored entry is **bitwise identical** to what
        a full :meth:`derive` of the same inputs stores -- both run the
        fixed-reduction-order :func:`_block_product` per element -- which
        is what lets :class:`repro.engine.Engine` patch its cached matrix
        instead of rebuilding it.
        """
        _require_aligned(affiliation, expertise)
        users = affiliation.users
        n = len(users)
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        cols = np.unique(np.asarray(cols, dtype=np.int64))
        for name, positions in (("rows", rows), ("cols", cols)):
            if positions.size and (positions[0] < 0 or positions[-1] >= n):
                raise ValidationError(
                    f"{name} positions must lie in [0, {n}); got "
                    f"[{positions[0]}, {positions[-1]}]"
                )
        with obs.span("derive.region", users=n, rows=rows.size, cols=cols.size):
            a_values = affiliation.values_view()
            e_transposed = expertise.values_view().T.copy()  # C x U, contiguous
            row_sums = a_values.sum(axis=1)
            active = row_sums > 0.0

            result = UserPairMatrix(users)
            stored = 0
            # pass 1: changed source rows, full width (inactive rows store
            # nothing in a full derive either)
            source_rows = rows[active[rows]]
            for start in range(0, len(source_rows), self.block_size):
                block_rows = source_rows[start : start + self.block_size]
                weights = a_values[block_rows, :] / row_sums[block_rows, None]
                block = _block_product(weights, e_transposed)
                mask = block > self.min_value
                if not self.include_self:
                    mask[np.arange(block_rows.size), block_rows] = False
                local, col_idx = np.nonzero(mask)
                if local.size:
                    result.set_block(
                        block_rows[local], col_idx, block[local, col_idx]
                    )
                    stored += int(local.size)
            # pass 2: changed target columns, on the active rows pass 1
            # did not already cover
            if cols.size:
                rest = np.setdiff1d(
                    np.nonzero(active)[0], source_rows, assume_unique=True
                )
                col_block = cols
                padded = False
                if col_block.size == 1 and n >= 2:
                    # a one-column product dispatches a different numpy
                    # inner loop than a multi-column one; compute a second
                    # column and drop it
                    col_block = np.asarray(
                        [col_block[0], (col_block[0] + 1) % n], dtype=np.int64
                    )
                    padded = True
                e_cols = np.ascontiguousarray(e_transposed[:, col_block])
                for start in range(0, len(rest), self.block_size):
                    block_rows = rest[start : start + self.block_size]
                    weights = a_values[block_rows, :] / row_sums[block_rows, None]
                    block = _block_product(weights, e_cols)
                    if padded:
                        block = block[:, :1]
                    mask = block > self.min_value
                    if not self.include_self:
                        mask &= block_rows[:, None] != cols[None, :]
                    local, col_idx = np.nonzero(mask)
                    if local.size:
                        result.set_block(
                            block_rows[local], cols[col_idx], block[local, col_idx]
                        )
                        stored += int(local.size)
            obs.add("derive.entries_stored", stored)
            return result

    def derive_for_pairs(
        self,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
        pairs: set[tuple[str, str]],
    ) -> UserPairMatrix:
        """Compute ``T-hat`` only on a given support set of pairs.

        Useful for evaluating eq. 5 against relations that are only defined
        on observed pairs (e.g. the direct-connection relation ``R``).
        Entries are stored even when zero, so the support is preserved.
        """
        _require_aligned(affiliation, expertise)
        users = affiliation.users
        with obs.span("derive.pairs", users=len(users), pairs=len(pairs)):
            a_values = affiliation.values_view()
            e_values = expertise.values_view()
            row_sums = a_values.sum(axis=1)

            result = UserPairMatrix(users)
            pair_list = list(pairs)
            if not pair_list:
                return result
            sources = users.positions(s for s, _ in pair_list)
            targets = users.positions(t for _, t in pair_list)
            if not self.include_self:
                off_diagonal = sources != targets
                sources, targets = sources[off_diagonal], targets[off_diagonal]
            if not sources.size:
                return result
            # gathered-row dot products: one einsum over the whole support set
            numerators = np.einsum("kc,kc->k", a_values[sources], e_values[targets])
            denominators = row_sums[sources]
            active = denominators > 0.0
            values = np.where(
                active, numerators / np.where(active, denominators, 1.0), 0.0
            )
            result.set_block(sources, targets, values)
            obs.add("derive.entries_stored", int(sources.size))
            return result


def derive_trust(
    affiliation: UserCategoryMatrix,
    expertise: UserCategoryMatrix,
    *,
    min_value: float = 0.0,
    include_self: bool = False,
) -> UserPairMatrix:
    """Functional shorthand for :meth:`TrustDeriver.derive`."""
    deriver = TrustDeriver(min_value=min_value, include_self=include_self)
    return deriver.derive(affiliation, expertise)


def _require_aligned(affiliation: UserCategoryMatrix, expertise: UserCategoryMatrix) -> None:
    if affiliation.users != expertise.users:
        raise ValidationError("affiliation and expertise must share the same user axis")
    if affiliation.categories != expertise.categories:
        raise ValidationError("affiliation and expertise must share the same category axis")
