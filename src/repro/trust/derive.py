"""Deriving the degree-of-trust matrix ``T-hat`` (paper eq. 5).

.. math::

    \\hat{T}_{ij} = \\frac{\\sum_c A_{ic} E_{jc}}{\\sum_c A_{ic}}

Row ``i`` of ``T-hat`` is an affinity-weighted average of user *j*'s
per-category expertise: an expert in categories that matter to *i* earns a
high degree of trust from *i*.  ``T-hat_ij = 0`` means the categories *i*
cares about and the categories *j* is expert in do not overlap.

Implementation notes
--------------------
The full matrix is the product ``W @ E.T`` where ``W`` is ``A`` with rows
normalised to sum 1 (zero-affinity rows stay zero).  For large communities
the product is computed in row blocks and only entries above ``min_value``
are stored, keeping memory proportional to the stored result rather than
``U^2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import require_non_negative, require_positive
from repro.matrix import UserCategoryMatrix, UserPairMatrix

__all__ = ["TrustDeriver", "derive_trust"]


@dataclass(frozen=True)
class TrustDeriver:
    """Configured derivation of ``T-hat`` from ``A`` and ``E``.

    Parameters
    ----------
    min_value:
        Entries with derived trust less than or equal to this threshold are
        not stored.  The default ``0.0`` stores every strictly-positive
        degree of trust, matching the paper's reading that a zero degree
        means "no category overlap", i.e. no derived connection.
    include_self:
        Whether to store the diagonal ``T-hat_ii``.  The paper's web of
        trust has no self-edges; the default drops them.
    block_size:
        Number of truster rows processed per dense block.
    """

    min_value: float = 0.0
    include_self: bool = False
    block_size: int = 512

    def __post_init__(self) -> None:
        require_non_negative("min_value", self.min_value)
        require_positive("block_size", self.block_size)

    def derive(
        self,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
    ) -> UserPairMatrix:
        """Compute ``T-hat`` for every user pair (eq. 5).

        Both matrices must share identical user and category axes.
        """
        _require_aligned(affiliation, expertise)
        users = affiliation.users
        a_values = affiliation.values_view()
        e_transposed = expertise.values_view().T.copy()  # C x U, contiguous

        row_sums = a_values.sum(axis=1)
        active_rows = np.nonzero(row_sums > 0.0)[0]

        result = UserPairMatrix(users)
        for start in range(0, len(active_rows), self.block_size):
            block_rows = active_rows[start : start + self.block_size]
            weights = a_values[block_rows, :] / row_sums[block_rows, None]
            block = weights @ e_transposed  # block x U
            for local, i in enumerate(block_rows):
                values = block[local]
                targets = np.nonzero(values > self.min_value)[0]
                source = users.label(int(i))
                for j in targets:
                    if not self.include_self and int(j) == int(i):
                        continue
                    result.set(source, users.label(int(j)), float(values[j]))
        return result

    def derive_for_pairs(
        self,
        affiliation: UserCategoryMatrix,
        expertise: UserCategoryMatrix,
        pairs: set[tuple[str, str]],
    ) -> UserPairMatrix:
        """Compute ``T-hat`` only on a given support set of pairs.

        Useful for evaluating eq. 5 against relations that are only defined
        on observed pairs (e.g. the direct-connection relation ``R``).
        Entries are stored even when zero, so the support is preserved.
        """
        _require_aligned(affiliation, expertise)
        users = affiliation.users
        a_values = affiliation.values_view()
        e_values = expertise.values_view()
        row_sums = a_values.sum(axis=1)

        result = UserPairMatrix(users)
        for source, target in pairs:
            i = users.position(source)
            j = users.position(target)
            if not self.include_self and i == j:
                continue
            if row_sums[i] <= 0.0:
                value = 0.0
            else:
                value = float(a_values[i] @ e_values[j] / row_sums[i])
            result.set(source, target, value)
        return result


def derive_trust(
    affiliation: UserCategoryMatrix,
    expertise: UserCategoryMatrix,
    *,
    min_value: float = 0.0,
    include_self: bool = False,
) -> UserPairMatrix:
    """Functional shorthand for :meth:`TrustDeriver.derive`."""
    deriver = TrustDeriver(min_value=min_value, include_self=include_self)
    return deriver.derive(affiliation, expertise)


def _require_aligned(affiliation: UserCategoryMatrix, expertise: UserCategoryMatrix) -> None:
    if affiliation.users != expertise.users:
        raise ValidationError("affiliation and expertise must share the same user axis")
    if affiliation.categories != expertise.categories:
        raise ValidationError("affiliation and expertise must share the same category axis")
