"""Step 3 of the paper: deriving the web of trust, plus §IV.C machinery.

- :func:`derive_trust` -- the derived trust matrix
  ``T-hat_ij = sum_c A_ic E_jc / sum_c A_ic`` (eq. 5);
- :func:`direct_connection_matrix` / :func:`baseline_matrix` /
  :func:`ground_truth_matrix` -- the paper's ``R``, ``B`` and ``T``;
- :func:`generousness` and :func:`binarize_top_k` -- the per-user top-k(%)
  conversion of continuous trust values into a binary web of trust;
- :func:`to_digraph` -- export any trust matrix as a weighted
  :class:`networkx.DiGraph` for downstream propagation.
"""

from repro.trust.analysis import WebAnalysis, coverage_comparison, web_analysis
from repro.trust.binarize import binarize_top_k, generousness
from repro.trust.connections import (
    baseline_matrix,
    direct_connection_matrix,
    ground_truth_matrix,
)
from repro.trust.derive import TrustDeriver, derive_trust
from repro.trust.graph import from_digraph, to_digraph

__all__ = [
    "derive_trust",
    "TrustDeriver",
    "direct_connection_matrix",
    "baseline_matrix",
    "ground_truth_matrix",
    "generousness",
    "binarize_top_k",
    "to_digraph",
    "from_digraph",
    "WebAnalysis",
    "web_analysis",
    "coverage_comparison",
]
