"""Bridging trust matrices and :mod:`networkx` digraphs.

Propagation algorithms (:mod:`repro.propagation`) and downstream graph
analysis consume weighted directed graphs; these helpers convert between
:class:`repro.matrix.UserPairMatrix` and :class:`networkx.DiGraph` without
losing the user axis.
"""

from __future__ import annotations

import networkx as nx

from repro.matrix import LabelIndex, UserPairMatrix

__all__ = ["to_digraph", "from_digraph"]


def to_digraph(matrix: UserPairMatrix, *, weight_key: str = "trust") -> nx.DiGraph:
    """Convert a trust matrix into a weighted :class:`networkx.DiGraph`.

    Every user on the axis becomes a node (including isolated ones, so node
    identity is stable across matrices sharing an axis); every stored entry
    becomes an edge with its value under ``weight_key``.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(matrix.users)
    for source, target, value in matrix.entries():
        graph.add_edge(source, target, **{weight_key: value})
    return graph


def from_digraph(
    graph: nx.DiGraph,
    users: LabelIndex | None = None,
    *,
    weight_key: str = "trust",
    default_weight: float = 1.0,
) -> UserPairMatrix:
    """Convert a digraph back into a :class:`UserPairMatrix`.

    Parameters
    ----------
    users:
        Axis to use; defaults to the graph's nodes in iteration order.
    weight_key:
        Edge attribute holding the trust value; edges missing it get
        ``default_weight``.
    """
    users = users or LabelIndex(str(node) for node in graph.nodes)
    matrix = UserPairMatrix(users)
    for source, target, data in graph.edges(data=True):
        matrix.set(str(source), str(target), float(data.get(weight_key, default_weight)))
    return matrix
