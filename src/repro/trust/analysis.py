"""Structural analysis of webs of trust: the sparsity problem, quantified.

The paper's motivation for deriving trust is that sparse explicit webs
break path-based inference ("if a web of trust is too sparse, it is hard
to find paths from the source to the sink", §II).  These helpers measure
exactly that:

- :func:`web_analysis` -- out-degree coverage, reachability and path
  lengths of one web of trust (sampled for large graphs);
- :func:`coverage_comparison` -- the same quantities for the explicit web
  vs the derived web side by side, showing how much more *inferable* the
  derived web makes the community.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.common.rng import spawn_rng
from repro.common.validation import require_positive
from repro.matrix import UserPairMatrix
from repro.trust.graph import to_digraph

__all__ = ["WebAnalysis", "web_analysis", "coverage_comparison"]


@dataclass(frozen=True)
class WebAnalysis:
    """Structural summary of one web of trust.

    Attributes
    ----------
    num_users / num_edges:
        Axis size and stored edge count.
    sources_fraction:
        Fraction of users with at least one outgoing trust edge (users
        who can even *start* a trust query).
    reachable_pair_fraction:
        Estimated fraction of ordered user pairs connected by a directed
        path (sampled).
    mean_path_length:
        Mean shortest-path length over the sampled reachable pairs.
    largest_scc_fraction:
        Share of users inside the largest strongly connected component.
    """

    num_users: int
    num_edges: int
    sources_fraction: float
    reachable_pair_fraction: float
    mean_path_length: float
    largest_scc_fraction: float


def web_analysis(
    web: UserPairMatrix,
    *,
    samples: int = 500,
    seed: int = 0,
) -> WebAnalysis:
    """Measure the structure of ``web`` (treated as a directed graph).

    Reachability and path length are estimated from ``samples`` random
    source users via BFS (exact for graphs smaller than the sample
    budget).
    """
    require_positive("samples", samples)
    graph = to_digraph(web)
    num_users = len(web.users)
    if num_users == 0:
        return WebAnalysis(0, 0, 0.0, 0.0, 0.0, 0.0)

    sources = [u for u in web.users if graph.out_degree(u) > 0]
    sources_fraction = len(sources) / num_users

    rng = spawn_rng(seed, "web-analysis")
    if sources and samples < len(sources):
        picked = [sources[int(i)] for i in rng.choice(len(sources), samples, replace=False)]
    else:
        picked = sources

    reachable_total = 0
    length_sum = 0.0
    length_count = 0
    for source in picked:
        lengths = nx.single_source_shortest_path_length(graph, source)
        others = len(lengths) - 1  # exclude the source itself
        reachable_total += others
        if others > 0:
            length_sum += sum(d for node, d in lengths.items() if node != source)
            length_count += others
    if picked:
        # scale the sampled sources up to all sources, then over all pairs
        per_source = reachable_total / len(picked)
        reachable_pairs = per_source * len(sources)
        reachable_fraction = reachable_pairs / max(num_users * (num_users - 1), 1)
    else:
        reachable_fraction = 0.0

    if num_users > 1 and graph.number_of_edges() > 0:
        largest_scc = max(nx.strongly_connected_components(graph), key=len)
        scc_fraction = len(largest_scc) / num_users
    else:
        scc_fraction = 0.0

    return WebAnalysis(
        num_users=num_users,
        num_edges=web.num_entries(),
        sources_fraction=sources_fraction,
        reachable_pair_fraction=float(reachable_fraction),
        mean_path_length=(length_sum / length_count) if length_count else 0.0,
        largest_scc_fraction=scc_fraction,
    )


def coverage_comparison(
    explicit: UserPairMatrix,
    derived: UserPairMatrix,
    *,
    samples: int = 500,
    seed: int = 0,
) -> dict[str, WebAnalysis]:
    """Analyse the explicit and derived webs with identical sampling."""
    return {
        "explicit": web_analysis(explicit, samples=samples, seed=seed),
        "derived": web_analysis(derived, samples=samples, seed=seed),
    }
