"""Runtime array contracts for kernel entry points.

The numeric kernels (Step-1 solver, eq.-3 assembly, the columnar view)
take flat numpy arrays whose shape, dtype and finiteness invariants are
otherwise enforced only by convention.  :func:`checked_arrays` turns those
invariants into a decorator that validates named arguments (and optionally
the return value) at the function boundary::

    @checked_arrays(
        rater_idx=array_spec(ndim=1, kind="i", length_of="ratings"),
        values=array_spec(ndim=1, kind="f", finite=True, length_of="ratings"),
    )
    def solve(rater_idx, values): ...

Violations raise :class:`ContractError` (a :class:`ValidationError`
subclass, so existing error handling keeps working).

The whole layer compiles to a no-op under ``REPRO_CHECKS=0``: the
environment variable is read once at import, and when checks are disabled
the decorator returns the undecorated function object -- zero wrapper
frames, zero per-call overhead.  The default is checks **on**; production
deployments and benchmarks that have already validated their inputs set
``REPRO_CHECKS=0``.
"""

from __future__ import annotations

import functools
import inspect
import os
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

from repro.common.errors import ValidationError

__all__ = [
    "ContractError",
    "ArraySpec",
    "array_spec",
    "checked_arrays",
    "contracts_enabled",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Read once at import time; ``checked_arrays`` returns the raw function
#: when this is ``False``, so disabled contracts cost literally nothing.
CHECKS_ENABLED: bool = os.environ.get("REPRO_CHECKS", "1") != "0"


class ContractError(ValidationError):
    """An array argument violated a kernel's declared contract."""


@dataclass(frozen=True)
class ArraySpec:
    """Declared invariants of one array argument.

    Parameters
    ----------
    ndim:
        Required number of dimensions (``None`` = any).
    kind:
        Required :attr:`numpy.dtype.kind` characters, e.g. ``"i"`` for
        signed integers, ``"f"`` for floats, ``"if"`` for either.
    finite:
        Require every element to be finite (no NaN / inf).
    non_negative:
        Require every element to be ``>= 0``.
    length_of:
        Group label: all arguments sharing a label must have equal leading
        dimension (the parallel-array invariant of the flat kernels).
    optional:
        Skip validation when the argument is ``None``.
    """

    ndim: int | None = None
    kind: str | None = None
    finite: bool = False
    non_negative: bool = False
    length_of: str | None = None
    optional: bool = False


def array_spec(
    *,
    ndim: int | None = None,
    kind: str | None = None,
    finite: bool = False,
    non_negative: bool = False,
    length_of: str | None = None,
    optional: bool = False,
) -> ArraySpec:
    """Keyword-friendly :class:`ArraySpec` constructor."""
    return ArraySpec(
        ndim=ndim,
        kind=kind,
        finite=finite,
        non_negative=non_negative,
        length_of=length_of,
        optional=optional,
    )


def contracts_enabled() -> bool:
    """Whether contract decorators were compiled in at import time."""
    return CHECKS_ENABLED


def _check_one(owner: str, name: str, value: Any, spec: ArraySpec) -> Any:
    if value is None:
        if spec.optional:
            return None
        raise ContractError(f"{owner}: argument {name!r} must not be None")
    try:
        arr = np.asarray(value)
    except Exception as exc:  # pragma: no cover - defensive
        raise ContractError(f"{owner}: argument {name!r} is not array-like") from exc
    if spec.ndim is not None and arr.ndim != spec.ndim:
        raise ContractError(
            f"{owner}: argument {name!r} must be {spec.ndim}-D, got {arr.ndim}-D "
            f"shape {arr.shape}"
        )
    if spec.kind is not None and arr.dtype.kind not in spec.kind:
        raise ContractError(
            f"{owner}: argument {name!r} must have dtype kind in {spec.kind!r}, "
            f"got {arr.dtype}"
        )
    if spec.finite and arr.dtype.kind in "fc" and arr.size:
        if not bool(np.isfinite(arr).all()):
            raise ContractError(f"{owner}: argument {name!r} contains NaN or inf")
    if spec.non_negative and arr.size and arr.dtype.kind in "if":
        if float(arr.min()) < 0:
            raise ContractError(f"{owner}: argument {name!r} contains negative values")
    return arr


def checked_arrays(
    _returns: ArraySpec | None = None, **specs: ArraySpec
) -> Callable[[_F], _F]:
    """Validate named array arguments (and the return value) of a kernel.

    ``specs`` maps parameter names to :class:`ArraySpec` declarations;
    ``_returns`` optionally declares the return-value contract.  When
    ``REPRO_CHECKS=0`` was set at import, the decorator is the identity
    function -- the wrapped kernel is returned unchanged.
    """

    def decorate(fn: _F) -> _F:
        if not CHECKS_ENABLED:
            return fn
        signature = inspect.signature(fn)
        unknown = set(specs) - set(signature.parameters)
        if unknown:
            raise ValidationError(
                f"checked_arrays({fn.__qualname__}): unknown parameters {sorted(unknown)}"
            )
        owner = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            lengths: dict[str, tuple[str, int]] = {}
            for name, spec in specs.items():
                arr = _check_one(owner, name, bound.arguments.get(name), spec)
                if arr is not None and spec.length_of is not None and arr.ndim >= 1:
                    previous = lengths.get(spec.length_of)
                    if previous is not None and previous[1] != arr.shape[0]:
                        raise ContractError(
                            f"{owner}: arguments {previous[0]!r} and {name!r} must "
                            f"have equal length ({spec.length_of!r} group), got "
                            f"{previous[1]} and {arr.shape[0]}"
                        )
                    lengths[spec.length_of] = (name, int(arr.shape[0]))
            result = fn(*args, **kwargs)
            if _returns is not None:
                _check_one(owner, "<return>", result, _returns)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
