"""Small argument-validation helpers.

Every helper raises :class:`repro.common.errors.ValidationError` with a
message naming the offending parameter, so call sites stay one-liners::

    require_fraction("tolerance", tolerance)
    require_positive("max_iter", max_iter)
"""

from __future__ import annotations

import math
from typing import Any

from repro.common.errors import ValidationError

__all__ = [
    "require",
    "require_type",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_fraction",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Require ``value`` to be an instance of ``expected``.

    ``bool`` is rejected where a numeric type is expected, because ``True``
    silently behaving as ``1`` hides caller bugs.
    """
    if isinstance(value, bool) and expected in (int, float, (int, float)):
        raise ValidationError(f"{name} must be {_type_name(expected)}, got bool")
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be {_type_name(expected)}, got {type(value).__name__}"
        )


def require_positive(name: str, value: float | int) -> None:
    """Require a finite value strictly greater than zero."""
    _require_finite_number(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def require_non_negative(name: str, value: float | int) -> None:
    """Require a finite value greater than or equal to zero."""
    _require_finite_number(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def require_in_range(
    name: str,
    value: float | int,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Require ``low <= value <= high`` (or strict, if ``inclusive=False``)."""
    _require_finite_number(name, value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")


def require_fraction(name: str, value: float | int) -> None:
    """Require ``0 <= value <= 1``."""
    require_in_range(name, value, 0.0, 1.0)


def _require_finite_number(name: str, value: Any) -> None:
    require_type(name, value, (int, float))
    if isinstance(value, float) and not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")


def _type_name(expected: type | tuple[type, ...]) -> str:
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__
