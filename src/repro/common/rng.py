"""Deterministic random-number-generator plumbing.

All stochastic code in this library draws from :class:`numpy.random.Generator`
instances produced here.  Two rules keep runs reproducible:

1. every public entry point takes an integer ``seed``;
2. independent subsystems never share a generator -- they derive *named
   child generators* from an :class:`RngFactory`, so adding a new draw in one
   subsystem cannot perturb the stream seen by another.

Example
-------
>>> factory = RngFactory(seed=7)
>>> users_rng = factory.child("users")
>>> ratings_rng = factory.child("ratings")
>>> factory.child("users").integers(0, 100) == users_rng.integers(0, 100)
Traceback (most recent call last):
    ...
ValueError: child stream 'users' was already taken
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.common.errors import ValidationError

__all__ = ["RngFactory", "spawn_rng", "stable_stream_seed"]

_UINT64_MASK = (1 << 64) - 1


def stable_stream_seed(seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``(seed, name)``.

    The derivation uses SHA-256 so it is stable across Python versions and
    platforms (unlike ``hash``).  The same ``(seed, name)`` pair always maps
    to the same child seed; distinct names give statistically independent
    streams.
    """
    if not isinstance(seed, int):
        raise ValidationError(f"seed must be an int, got {type(seed).__name__}")
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _UINT64_MASK


def spawn_rng(seed: int, name: str) -> np.random.Generator:
    """Return a fresh :class:`numpy.random.Generator` for stream ``name``."""
    return np.random.default_rng(stable_stream_seed(seed, name))


class RngFactory:
    """Hands out named, independent random generators for one master seed.

    Each stream name may be taken only once; asking for the same name twice
    raises, because two consumers sharing one stream is almost always a
    reproducibility bug.
    """

    def __init__(self, seed: int):
        if not isinstance(seed, int):
            raise ValidationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._taken: set[str] = set()

    @property
    def seed(self) -> int:
        """The master seed this factory was created with."""
        return self._seed

    def child(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name`` (at most once per name)."""
        if name in self._taken:
            raise ValueError(f"child stream {name!r} was already taken")
        self._taken.add(name)
        return spawn_rng(self._seed, name)

    def peek(self, name: str) -> np.random.Generator:
        """Return a generator for ``name`` without reserving the stream.

        Useful in tests that want to re-create the exact stream a component
        consumed.
        """
        return spawn_rng(self._seed, name)
