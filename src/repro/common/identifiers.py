"""Identifier conventions and allocation.

Entities throughout the library are identified by plain strings with a
conventional prefix (``u``ser, ``c``ategory, ``o``bject, ``r``eview).  Using
strings rather than bare ints keeps accidental cross-entity mix-ups loud in
tests and in stored files, while remaining trivially JSON/CSV serialisable.
"""

from __future__ import annotations

import itertools

from repro.common.errors import ValidationError

__all__ = ["user_id", "category_id", "object_id", "review_id", "IdAllocator"]


def user_id(index: int) -> str:
    """Canonical user identifier for numeric ``index`` (``u000042`` style)."""
    return _format_id("u", index)


def category_id(index: int) -> str:
    """Canonical category identifier for numeric ``index``."""
    return _format_id("c", index)


def object_id(index: int) -> str:
    """Canonical object (reviewed item) identifier for numeric ``index``."""
    return _format_id("o", index)


def review_id(index: int) -> str:
    """Canonical review identifier for numeric ``index``."""
    return _format_id("r", index)


def _format_id(prefix: str, index: int) -> str:
    if not isinstance(index, int) or isinstance(index, bool):
        raise ValidationError(f"id index must be an int, got {type(index).__name__}")
    if index < 0:
        raise ValidationError(f"id index must be >= 0, got {index}")
    return f"{prefix}{index:06d}"


class IdAllocator:
    """Monotonic allocator for one identifier family.

    >>> alloc = IdAllocator("r")
    >>> alloc.next()
    'r000000'
    >>> alloc.next()
    'r000001'
    """

    def __init__(self, prefix: str, *, start: int = 0):
        if not prefix or not prefix.isalpha():
            raise ValidationError(f"prefix must be alphabetic, got {prefix!r}")
        if start < 0:
            raise ValidationError(f"start must be >= 0, got {start}")
        self._prefix = prefix
        self._counter = itertools.count(start)
        self._last: int | None = None

    def next(self) -> str:
        """Allocate and return the next identifier."""
        self._last = next(self._counter)
        return f"{self._prefix}{self._last:06d}"

    @property
    def allocated(self) -> int:
        """Number of identifiers allocated so far."""
        return 0 if self._last is None else self._last + 1
