"""Shared numpy array type aliases for the numeric core.

The strict-typed packages (:mod:`repro.matrix`, :mod:`repro.community`,
:mod:`repro.propagation`, :mod:`repro.reputation`) annotate every array
they construct with an explicit dtype; these aliases name the three dtypes
the kernels actually use so signatures stay readable and ``mypy --strict``
can see through them.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import numpy.typing as npt

__all__ = ["FloatArray", "IntArray", "BoolArray", "AnyArray"]

#: 1-D/2-D ``float64`` arrays (values, qualities, reputations, scores).
FloatArray = npt.NDArray[np.float64]

#: ``int64`` index/key arrays (axis positions, flat pair keys, counts).
IntArray = npt.NDArray[np.int64]

#: Boolean masks over an axis.
BoolArray = npt.NDArray[np.bool_]

#: Escape hatch for arrays whose dtype is produced by numpy ops that the
#: stubs type as ``Any`` (e.g. ``np.searchsorted`` boundaries).
AnyArray = npt.NDArray[Any]
