"""Shared low-level utilities used by every subsystem.

This package deliberately contains nothing domain specific: error types,
deterministic random-number helpers, validation helpers and identifier
conventions.  Higher layers (:mod:`repro.store`, :mod:`repro.community`,
:mod:`repro.reputation`, ...) build on top of it.
"""

from repro.common.arrays import AnyArray, BoolArray, FloatArray, IntArray
from repro.common.contracts import (
    ArraySpec,
    ContractError,
    array_spec,
    checked_arrays,
    contracts_enabled,
)
from repro.common.errors import (
    ConfigError,
    ConvergenceError,
    DatasetError,
    IntegrityError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.common.identifiers import (
    IdAllocator,
    category_id,
    object_id,
    review_id,
    user_id,
)
from repro.common.rng import RngFactory, spawn_rng
from repro.common.validation import (
    require,
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
    require_type,
)

__all__ = [
    "AnyArray",
    "BoolArray",
    "FloatArray",
    "IntArray",
    "ArraySpec",
    "ContractError",
    "array_spec",
    "checked_arrays",
    "contracts_enabled",
    "ReproError",
    "ValidationError",
    "SchemaError",
    "IntegrityError",
    "ConvergenceError",
    "DatasetError",
    "ConfigError",
    "RngFactory",
    "spawn_rng",
    "require",
    "require_type",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_fraction",
    "IdAllocator",
    "user_id",
    "category_id",
    "object_id",
    "review_id",
]
