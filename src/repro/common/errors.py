"""Exception hierarchy for the ``repro`` library.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class.  Subclasses mark
*which layer* failed:

- :class:`ValidationError` -- a caller passed an out-of-contract argument.
- :class:`SchemaError` -- a table schema was violated (wrong column set or
  column type) in :mod:`repro.store`.
- :class:`IntegrityError` -- a store-level integrity constraint failed
  (duplicate primary key, dangling foreign key, unique-index collision).
- :class:`ConvergenceError` -- an iterative solver exhausted its iteration
  budget without reaching its tolerance.
- :class:`DatasetError` -- a dataset file or generator configuration was
  malformed.
- :class:`ConfigError` -- an experiment/benchmark configuration was
  inconsistent.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument violated the documented contract of a public API."""


class SchemaError(ReproError):
    """A row does not match the declared schema of a table."""


class IntegrityError(ReproError):
    """A store integrity constraint (PK / FK / unique index) was violated."""


class ConvergenceError(ReproError):
    """An iterative fixed-point computation failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        The final residual (L-infinity change between sweeps).
    tolerance:
        The tolerance that was requested.
    """

    def __init__(self, message: str, *, iterations: int, residual: float, tolerance: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.tolerance = tolerance


class DatasetError(ReproError):
    """A dataset file was malformed or a generator profile is unusable."""


class ConfigError(ReproError):
    """An experiment or benchmark configuration is internally inconsistent."""
