"""Step 2 of the paper: users' affiliation (affinity) for categories.

A user's affinity for a category is measured from activity counts -- how
many reviews they *rated* and how many they *wrote* in the category (eq. 4):

.. math::

    A_{ij} = \\frac{1}{2}\\Big(
        \\frac{a^r_{ij}}{\\max_j a^r_{ij}} +
        \\frac{a^w_{ij}}{\\max_j a^w_{ij}}
    \\Big)

Both terms are normalised by the user's *own* maximum across categories, so
``A`` captures the relative importance of each category to that user, not
absolute activity volume.
"""

from repro.affinity.affiliation import AffinityConfig, AffinityEstimator, affiliation_matrix

__all__ = ["AffinityConfig", "AffinityEstimator", "affiliation_matrix"]
