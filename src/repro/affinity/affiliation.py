"""Computation of the Users_Category Affiliation matrix ``A`` (eq. 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.community import Community
from repro.matrix import UserCategoryMatrix

__all__ = ["AffinityConfig", "AffinityEstimator", "affiliation_matrix"]

_MODES = ("both", "ratings_only", "writing_only")


@dataclass(frozen=True)
class AffinityConfig:
    """Configuration of the affiliation computation.

    Parameters
    ----------
    mode:
        Which activity signals enter eq. 4:

        - ``"both"`` (the paper): mean of the normalised rating-count and
          normalised writing-count terms;
        - ``"ratings_only"`` / ``"writing_only"``: ablation A3 -- a single
          normalised term.
    """

    mode: str = "both"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {self.mode!r}")


class AffinityEstimator:
    """Builds the affiliation matrix ``A`` from community activity counts."""

    def __init__(self, config: AffinityConfig | None = None):
        self.config = config or AffinityConfig()

    def fit(self, community: Community) -> UserCategoryMatrix:
        """Compute ``A`` for every (user, category) of ``community``.

        A user with no activity of a given kind contributes 0 for that term
        (the paper's max-normalisation is 0/0 there; zero is the only value
        consistent with "no affinity evidence").

        Counts come from the community's columnar snapshot, so a delta-aware
        ``columns()`` refresh makes repeated fits after small mutations
        cheap; the float arithmetic on the full count matrices is unchanged,
        keeping the result bitwise independent of the cache state.
        """
        columns = community.columns()
        rating_counts = columns.rating_counts_matrix().astype(np.float64)
        writing_counts = columns.writing_counts_matrix().astype(np.float64)
        values = _combine(rating_counts, writing_counts, self.config.mode)
        return UserCategoryMatrix(columns.users, columns.categories, values)


def affiliation_matrix(
    community: Community, config: AffinityConfig | None = None
) -> UserCategoryMatrix:
    """Functional shorthand for ``AffinityEstimator(config).fit(community)``."""
    return AffinityEstimator(config).fit(community)


def _combine(rating_counts: np.ndarray, writing_counts: np.ndarray, mode: str) -> np.ndarray:
    rating_term = _row_max_normalise(rating_counts)
    writing_term = _row_max_normalise(writing_counts)
    if mode == "ratings_only":
        return rating_term
    if mode == "writing_only":
        return writing_term
    return (rating_term + writing_term) / 2.0


def _row_max_normalise(counts: np.ndarray) -> np.ndarray:
    """Divide each row by its maximum; all-zero rows stay zero."""
    if counts.shape[1] == 0:  # no categories yet: nothing to normalise
        return counts
    row_max = counts.max(axis=1, keepdims=True)
    return np.divide(counts, np.where(row_max > 0, row_max, 1.0))
