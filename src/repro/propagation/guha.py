"""Guha, Kumar, Raghavan & Tomkins (WWW 2004): atomic trust propagations.

One propagation step combines four *atomic* operators on the (binary or
weighted) trust matrix ``T``:

- **direct propagation** ``T`` -- "i trusts j and j trusts k";
- **co-citation** ``T^T T`` -- "i and k trust common people";
- **transpose trust** ``T^T`` -- "people trusted by j trust back";
- **trust coupling** ``T T^T`` -- "i and j trust the same people".

The combined operator ``C = α·T + β·T^T T + γ·T^T + δ·T T^T`` is iterated
``k`` steps with a decay and the powers accumulated
(``sum_k decay^(k-1) C^k``), giving a dense propagated score matrix.  The
paper cites this model as the way to densify a sparse web of trust when
explicit distrust is unavailable (we drop the distrust half, which the
trust-only setting of Kim et al. cannot observe anyway).

Variant note: Guha et al. also study propagating from the original belief
matrix (``T · C^k``); we accumulate powers of the combined operator
directly, which keeps each atomic operator's one-step semantics visible
(e.g. a pure-transpose configuration yields exactly the reversed edges).
"""

# repro: hot-path

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro import obs
from repro.common.errors import ValidationError
from repro.common.validation import require_non_negative, require_positive
from repro.matrix import UserPairMatrix

__all__ = ["GuhaWeights", "guha_propagation"]


@dataclass(frozen=True)
class GuhaWeights:
    """Weights of the four atomic propagations (Guha et al.'s defaults)."""

    direct: float = 0.4
    co_citation: float = 0.4
    transpose: float = 0.1
    coupling: float = 0.1

    def __post_init__(self) -> None:
        for name in ("direct", "co_citation", "transpose", "coupling"):
            require_non_negative(name, getattr(self, name))
        if self.direct + self.co_citation + self.transpose + self.coupling <= 0:
            raise ValidationError("at least one atomic propagation weight must be positive")


def guha_propagation(
    trust: UserPairMatrix,
    *,
    weights: GuhaWeights | None = None,
    steps: int = 3,
    decay: float = 0.5,
    top_k: int | None = 50,
) -> UserPairMatrix:
    """Propagate trust with Guha et al.'s combined atomic operator.

    Parameters
    ----------
    trust:
        The input web of trust (explicit or derived).
    steps:
        Number of propagation rounds ``k``; the result accumulates
        ``sum_k decay^(k-1) * C^k`` (matching the paper's iterative
        accumulation with decay).
    top_k:
        Keep only each user's ``top_k`` strongest propagated scores
        (``None`` keeps everything -- dense and memory-hungry).

    Returns
    -------
    UserPairMatrix
        Propagated scores (diagonal removed, original axis preserved).
    """
    require_positive("steps", steps)
    require_positive("decay", decay)
    if top_k is not None:
        require_positive("top_k", top_k)
    weights = weights or GuhaWeights()

    with obs.span("propagation.guha", users=len(trust.users), steps=steps):
        base = trust.csr()
        transpose = base.T.tocsr()
        combined = (
            weights.direct * base
            + weights.co_citation * (transpose @ base)
            + weights.transpose * transpose
            + weights.coupling * (base @ transpose)
        ).tocsr()

        accumulated = sparse.csr_matrix(base.shape)
        power = sparse.identity(base.shape[0], format="csr")
        factor = 1.0
        for step in range(1, steps + 1):
            power = (power @ combined).tocsr()
            accumulated = accumulated + factor * power
            factor *= decay

        accumulated = accumulated.tolil()
        accumulated.setdiag(0.0)
        result_csr = accumulated.tocsr()
        result_csr.eliminate_zeros()

        if top_k is not None:
            result_csr = _keep_row_top_k(result_csr, top_k)
        # Guha propagation runs a fixed number of accumulation rounds --
        # always "converged", recorded so traces cover all four kernels.
        obs.convergence(
            "propagation.guha",
            iterations=steps,
            residual=0.0,
            tolerance=0.0,
            converged=True,
            propagated_entries=int(result_csr.nnz),
        )
        return UserPairMatrix.from_csr(result_csr, trust.users)


def _keep_row_top_k(matrix: sparse.csr_matrix, top_k: int) -> sparse.csr_matrix:
    """Zero out everything but the k largest entries of each row."""
    matrix = matrix.tocsr()
    for i in range(matrix.shape[0]):
        start, end = matrix.indptr[i], matrix.indptr[i + 1]
        if end - start <= top_k:
            continue
        row_data = matrix.data[start:end]
        cutoff = np.partition(row_data, len(row_data) - top_k)[len(row_data) - top_k]
        row_data[row_data < cutoff] = 0.0
    matrix.eliminate_zeros()
    return matrix
