"""TidalTrust (Golbeck 2005): local trust inference along strong short paths.

To infer the trust of ``source`` in ``sink``:

1. breadth-first search finds the shortest source->sink paths;
2. the *path strength* of a path is the minimum edge weight along it
   (excluding the final hop); the *threshold* ``max`` is the largest
   strength over all shortest paths;
3. flowing back from the sink, each node's inferred trust in the sink is
   the weighted average of its neighbours' inferred trust, using only
   neighbour edges with weight >= threshold.

The algorithm reflects the paper's observation that "highly trusted
neighbours and closer neighbours are more accurate".

All three phases run level-synchronously on the CSR adjacency: each BFS
level, strength sweep and back-propagation step gathers the whole level's
edges at once instead of looping per node.  Pass a
:class:`repro.matrix.UserPairMatrix` to reuse its cached CSR; a
:class:`networkx.DiGraph` is accepted for compatibility.
"""

# repro: hot-path

from __future__ import annotations

import numpy as np

from repro import obs
from repro.common.arrays import AnyArray
from repro.common.errors import ValidationError
from repro.matrix import LabelIndex, UserPairMatrix
from repro.propagation._adjacency import TrustWeb, as_pair_matrix

__all__ = ["tidal_trust"]


def tidal_trust(
    web: TrustWeb,
    source: str,
    sink: str,
    *,
    weight_key: str = "trust",
) -> float | None:
    """Infer ``source``'s trust in ``sink`` through the web of trust.

    Returns ``None`` when no directed path exists (the failure mode the
    paper attributes to sparse webs of trust).  A direct edge returns its
    own weight.  Edge weights must lie in ``[0, 1]``.
    """
    matrix = as_pair_matrix(web, weight_key=weight_key)
    users = matrix.users
    if source not in users or sink not in users:
        raise ValidationError(f"source {source!r} and sink {sink!r} must be graph nodes")
    with obs.span("propagation.tidaltrust", users=len(users), source=source, sink=sink):
        value, depth = _infer(matrix, users, source, sink)
        # TidalTrust is not iterative: the "iterations" of its telemetry
        # record is the shortest-path depth it back-propagated over.
        obs.convergence(
            "propagation.tidaltrust",
            iterations=depth,
            residual=0.0,
            tolerance=0.0,
            converged=True,
            path_found=value is not None,
        )
        return value


def _infer(
    matrix: UserPairMatrix,
    users: LabelIndex,
    source: str,
    sink: str,
) -> tuple[float | None, int]:
    """The three TidalTrust phases; returns ``(inferred value, path depth)``."""
    if source == sink:
        return 1.0, 0

    adjacency = matrix.csr()
    indptr, indices, data = adjacency.indptr, adjacency.indices, adjacency.data
    n = len(users)
    src = users.position(source)
    snk = users.position(sink)

    direct = indices[indptr[src] : indptr[src + 1]] == snk
    if direct.any():
        return float(data[indptr[src] : indptr[src + 1]][direct][0]), 1

    forward = _bfs_levels(indptr, indices, n, src, until=snk)
    if forward is None:
        return None, 0
    depth_from_source, sink_depth = forward

    csc = adjacency.tocsc()
    backward = _bfs_levels(csc.indptr, csc.indices, n, snk, cutoff=sink_depth)
    assert backward is not None  # cutoff-bounded BFS always returns depths
    depth_to_sink, _ = backward

    # nodes on at least one shortest source->sink path, grouped by depth
    on_path = (
        (depth_from_source >= 0)
        & (depth_to_sink >= 0)
        & (depth_from_source + depth_to_sink == sink_depth)
    )
    levels = [
        np.nonzero(on_path & (depth_from_source == depth))[0]
        for depth in range(sink_depth + 1)
    ]

    threshold = _max_path_strength(
        indptr, indices, data, levels, depth_from_source, on_path, src, snk, n
    )

    # back-propagate trust from the sink, level by level; the base case is
    # the direct edge of each of the sink's shortest-path predecessors
    inferred = np.full(n, np.nan)
    rows, cols, weights = _gather_edges(indptr, indices, data, levels[sink_depth - 1])
    base = cols == snk
    inferred[rows[base]] = weights[base]

    for depth in range(sink_depth - 2, -1, -1):
        rows, cols, weights = _gather_edges(indptr, indices, data, levels[depth])
        usable = (
            on_path[cols]
            & (depth_from_source[cols] == depth + 1)
            & ~np.isnan(inferred[cols])
            & (weights >= threshold)
        )
        rows, cols, weights = rows[usable], cols[usable], weights[usable]
        numerator = np.bincount(rows, weights=weights * inferred[cols], minlength=n)
        denominator = np.bincount(rows, weights=weights, minlength=n)
        settled = levels[depth][denominator[levels[depth]] > 0.0]
        inferred[settled] = numerator[settled] / denominator[settled]

    value = inferred[src]
    if np.isnan(value):
        return None, sink_depth
    return float(value), sink_depth


def _edge_positions(
    indptr: AnyArray, nodes: AnyArray
) -> tuple[AnyArray, AnyArray]:
    """Flat positions of all out-edges of ``nodes`` plus their repeated rows."""
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(nodes, counts), np.repeat(starts, counts) + offsets


def _gather_edges(
    indptr: AnyArray, indices: AnyArray, data: AnyArray, nodes: AnyArray
) -> tuple[AnyArray, AnyArray, AnyArray]:
    """All out-edges of ``nodes`` as ``(rows, cols, weights)`` arrays."""
    rows, edge_pos = _edge_positions(indptr, nodes)
    return rows, indices[edge_pos], data[edge_pos]


def _bfs_levels(
    indptr: AnyArray,
    indices: AnyArray,
    n: int,
    start: int,
    *,
    until: int | None = None,
    cutoff: int | None = None,
) -> tuple[AnyArray, int] | None:
    """Level-synchronous BFS depths from ``start``.

    Expansion stops at the level where ``until`` is reached (returning
    ``None`` if it never is), or at ``cutoff`` levels.  Returns the depth
    array (-1 = unreached) and the final depth.
    """
    depths = np.full(n, -1, dtype=np.int64)
    depths[start] = 0
    frontier = np.array([start], dtype=np.int64)
    depth = 0
    while frontier.size:
        if until is not None and depths[until] >= 0:
            return depths, depth
        if cutoff is not None and depth >= cutoff:
            return depths, depth
        depth += 1
        _, edge_pos = _edge_positions(indptr, frontier)
        if edge_pos.size == 0:
            break
        neighbours = indices[edge_pos]
        fresh = np.unique(neighbours[depths[neighbours] < 0])
        depths[fresh] = depth
        frontier = fresh
    if until is not None:
        return None
    return depths, depth


def _max_path_strength(
    indptr: AnyArray,
    indices: AnyArray,
    data: AnyArray,
    levels: list[AnyArray],
    depth_from_source: AnyArray,
    on_path: AnyArray,
    src: int,
    snk: int,
    n: int,
) -> float:
    """Largest min-edge-weight over shortest paths (edges into the sink free)."""
    sink_depth = len(levels) - 1
    strength = np.full(n, -1.0)  # -1 = unreached
    strength[src] = np.inf
    for depth in range(sink_depth):
        rows, cols, weights = _gather_edges(indptr, indices, data, levels[depth])
        usable = (
            on_path[cols]
            & (depth_from_source[cols] == depth + 1)
            & (strength[rows] >= 0.0)
        )
        rows, cols, weights = rows[usable], cols[usable], weights[usable]
        # the final hop into the sink does not constrain strength
        path_strength = np.where(
            cols == snk, strength[rows], np.minimum(strength[rows], weights)
        )
        np.maximum.at(strength, cols, path_strength)
    value = strength[snk]
    return 0.0 if value in (np.inf, -1.0) else float(value)
