"""TidalTrust (Golbeck 2005): local trust inference along strong short paths.

To infer the trust of ``source`` in ``sink``:

1. breadth-first search finds the shortest source->sink paths;
2. the *path strength* of a path is the minimum edge weight along it
   (excluding the final hop); the *threshold* ``max`` is the largest
   strength over all shortest paths;
3. flowing back from the sink, each node's inferred trust in the sink is
   the weighted average of its neighbours' inferred trust, using only
   neighbour edges with weight >= threshold.

The algorithm reflects the paper's observation that "highly trusted
neighbours and closer neighbours are more accurate".
"""

from __future__ import annotations

import networkx as nx

from repro.common.errors import ValidationError

__all__ = ["tidal_trust"]


def tidal_trust(
    graph: nx.DiGraph,
    source: str,
    sink: str,
    *,
    weight_key: str = "trust",
) -> float | None:
    """Infer ``source``'s trust in ``sink`` through the web of trust.

    Returns ``None`` when no directed path exists (the failure mode the
    paper attributes to sparse webs of trust).  A direct edge returns its
    own weight.  Edge weights must lie in ``[0, 1]``.
    """
    if source not in graph or sink not in graph:
        raise ValidationError(f"source {source!r} and sink {sink!r} must be graph nodes")
    if source == sink:
        return 1.0
    if graph.has_edge(source, sink):
        return float(graph[source][sink].get(weight_key, 1.0))

    depth_of = _bfs_depths(graph, source, sink)
    if depth_of is None:
        return None

    threshold = _max_path_strength(graph, source, sink, depth_of, weight_key)

    # back-propagate trust from the sink, level by level; the base case is
    # the direct edge of each of the sink's shortest-path predecessors
    sink_depth = depth_of[sink]
    by_depth: dict[int, list[str]] = {}
    for node, node_depth in depth_of.items():
        by_depth.setdefault(node_depth, []).append(node)

    inferred: dict[str, float] = {}
    for node in by_depth.get(sink_depth - 1, ()):
        if graph.has_edge(node, sink):
            inferred[node] = float(graph[node][sink].get(weight_key, 1.0))

    for depth in range(sink_depth - 2, -1, -1):
        for node in by_depth.get(depth, ()):
            numerator = 0.0
            denominator = 0.0
            for _, neighbour, data in graph.out_edges(node, data=True):
                if depth_of.get(neighbour) != depth + 1 or neighbour not in inferred:
                    continue
                weight = float(data.get(weight_key, 1.0))
                if weight < threshold:
                    continue
                numerator += weight * inferred[neighbour]
                denominator += weight
            if denominator > 0.0:
                inferred[node] = numerator / denominator
    return inferred.get(source)


def _bfs_depths(graph: nx.DiGraph, source: str, sink: str) -> dict[str, int] | None:
    """Depths of nodes on shortest source->sink paths (None if unreachable)."""
    try:
        sink_depth = nx.shortest_path_length(graph, source, sink)
    except nx.NetworkXNoPath:
        return None
    from_source = nx.single_source_shortest_path_length(graph, source, cutoff=sink_depth)
    reverse = graph.reverse(copy=False)
    to_sink = nx.single_source_shortest_path_length(reverse, sink, cutoff=sink_depth)
    return {
        node: depth
        for node, depth in from_source.items()
        if node in to_sink and depth + to_sink[node] == sink_depth
    }


def _max_path_strength(
    graph: nx.DiGraph,
    source: str,
    sink: str,
    depth_of: dict[str, int],
    weight_key: str,
) -> float:
    """Largest min-edge-weight over shortest paths (edges into the sink free)."""
    sink_depth = depth_of[sink]
    strength: dict[str, float] = {source: float("inf")}
    for depth in range(sink_depth):
        for node, node_depth in depth_of.items():
            if node_depth != depth or node not in strength:
                continue
            for _, neighbour, data in graph.out_edges(node, data=True):
                if depth_of.get(neighbour) != depth + 1:
                    continue
                weight = float(data.get(weight_key, 1.0))
                # the final hop into the sink does not constrain strength
                path_strength = (
                    strength[node]
                    if neighbour == sink
                    else min(strength[node], weight)
                )
                if path_strength > strength.get(neighbour, -1.0):
                    strength[neighbour] = path_strength
    value = strength.get(sink, 0.0)
    return 0.0 if value == float("inf") else value
