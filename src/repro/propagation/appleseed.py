"""Appleseed (Ziegler & Lausen 2004): spreading-activation trust metric.

Energy is injected at a source node and flows along trust edges: each node
keeps a ``1 - spreading_factor`` share of incoming energy as *trust rank*
and forwards the rest to its successors proportionally to edge weights.
Iteration continues until the flowing energy change falls below a
threshold.  The result is a personalised trust ranking of all nodes
reachable from the source -- the "spreading activation model" the paper
cites for trust propagation.

Each sweep is vectorised over the whole energy front: the per-edge shares
are one scaled gather over the CSR adjacency and one ``bincount`` scatter,
instead of Python loops over successor lists.  Pass a
:class:`repro.matrix.UserPairMatrix` to reuse its cached CSR; a
:class:`networkx.DiGraph` is accepted for compatibility.
"""

# repro: hot-path

from __future__ import annotations

import warnings

import numpy as np

from repro import obs
from repro.common.errors import ValidationError
from repro.common.validation import require_in_range, require_positive
from repro.propagation._adjacency import TrustWeb, as_pair_matrix
from repro.propagation.scores import PropagationScores

__all__ = ["appleseed"]


def appleseed(
    web: TrustWeb,
    source: str,
    *,
    weight_key: str = "trust",
    energy: float = 200.0,
    spreading_factor: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 2000,
) -> PropagationScores:
    """Compute Appleseed trust ranks from ``source``.

    Parameters
    ----------
    web:
        The trust web: a :class:`repro.matrix.UserPairMatrix` (fast path)
        or a weighted :class:`networkx.DiGraph`.
    energy:
        Energy injected at the source (``in_0``); ranks scale linearly
        with it.
    spreading_factor:
        Fraction of incoming energy a node forwards to its successors
        (``d`` in the paper; 0.85 is the authors' recommendation).

    Returns
    -------
    PropagationScores
        ``{node: rank}`` over the nodes that received energy (the dense
        vector on :meth:`~PropagationScores.scores_array` covers the whole
        axis, zero elsewhere); the source itself keeps rank 0 (it only
        distributes).  Carries convergence telemetry (``converged`` /
        ``iterations`` / ``residual``); hitting the ``max_iterations`` cap
        emits a :class:`RuntimeWarning` and returns the unconverged ranks
        with ``converged=False`` instead of raising.
    """
    matrix = as_pair_matrix(web, weight_key=weight_key)
    users = matrix.users
    if source not in users:
        raise ValidationError(f"source {source!r} is not a graph node")
    require_positive("energy", energy)
    require_in_range("spreading_factor", spreading_factor, 0.0, 1.0, inclusive=False)
    require_positive("tolerance", tolerance)

    n = len(users)
    src = users.position(source)

    with obs.span("propagation.appleseed", users=n, source=source):
        # positive-weight edge arrays (zero/negative edges carry no energy)
        adjacency = matrix.csr()
        edge_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(adjacency.indptr))
        positive = adjacency.data > 0.0
        edge_rows = edge_rows[positive]
        edge_cols = adjacency.indices[positive]
        # each edge's fraction of its row's outgoing weight
        out_weight = np.bincount(edge_rows, weights=adjacency.data[positive], minlength=n)
        edge_share = adjacency.data[positive] / np.where(out_weight > 0, out_weight, 1.0)[edge_rows]

        keep_factor = 1.0 - spreading_factor
        rank = np.zeros(n, dtype=np.float64)
        incoming = np.zeros(n, dtype=np.float64)
        incoming[src] = energy
        received = np.zeros(n, dtype=bool)
        received[src] = True

        converged = False
        iterations = 0
        max_flow = float("inf")
        for iterations in range(1, max_iterations + 1):
            received |= incoming > 0.0
            # every node except the source retains its share as rank ...
            retained = keep_factor * incoming
            retained[src] = 0.0
            rank += retained
            # ... and forwards the rest (the source forwards everything)
            forwarded = spreading_factor * incoming
            forwarded[src] = incoming[src]
            shares = forwarded[edge_rows] * edge_share
            max_flow = float(shares.max()) if shares.size else 0.0
            incoming = np.bincount(edge_cols, weights=shares, minlength=n)
            if max_flow < tolerance:
                converged = True
                break
        obs.convergence(
            "propagation.appleseed",
            iterations=iterations,
            residual=max_flow,
            tolerance=tolerance,
            converged=converged,
        )
        if not converged:
            warnings.warn(
                f"Appleseed stopped at the max_iterations cap ({max_iterations}) "
                f"with flowing energy {max_flow:.3e} > tolerance {tolerance:.3e}; "
                f"returning the unconverged ranks (converged=False)",
                RuntimeWarning,
                stacklevel=2,
            )
        return PropagationScores(
            users,
            rank,
            present=received,
            converged=converged,
            iterations=iterations,
            residual=max_flow,
        )
