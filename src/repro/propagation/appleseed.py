"""Appleseed (Ziegler & Lausen 2004): spreading-activation trust metric.

Energy is injected at a source node and flows along trust edges: each node
keeps a ``1 - spreading_factor`` share of incoming energy as *trust rank*
and forwards the rest to its successors proportionally to edge weights.
Iteration continues until the flowing energy change falls below a
threshold.  The result is a personalised trust ranking of all nodes
reachable from the source -- the "spreading activation model" the paper
cites for trust propagation.
"""

from __future__ import annotations

import networkx as nx

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.validation import require_in_range, require_positive

__all__ = ["appleseed"]


def appleseed(
    graph: nx.DiGraph,
    source: str,
    *,
    weight_key: str = "trust",
    energy: float = 200.0,
    spreading_factor: float = 0.85,
    tolerance: float = 1e-4,
    max_iterations: int = 2000,
) -> dict[str, float]:
    """Compute Appleseed trust ranks from ``source``.

    Parameters
    ----------
    energy:
        Energy injected at the source (``in_0``); ranks scale linearly
        with it.
    spreading_factor:
        Fraction of incoming energy a node forwards to its successors
        (``d`` in the paper; 0.85 is the authors' recommendation).

    Returns
    -------
    dict
        ``{node: rank}`` for every node that received energy; the source
        itself keeps rank 0 (it only distributes).
    """
    if source not in graph:
        raise ValidationError(f"source {source!r} is not a graph node")
    require_positive("energy", energy)
    require_in_range("spreading_factor", spreading_factor, 0.0, 1.0, inclusive=False)
    require_positive("tolerance", tolerance)

    rank: dict[str, float] = {source: 0.0}
    incoming: dict[str, float] = {source: energy}

    for _ in range(max_iterations):
        outgoing: dict[str, float] = {}
        max_flow = 0.0
        for node, flow in incoming.items():
            if flow <= 0.0:
                continue
            successors = [
                (target, float(data.get(weight_key, 1.0)))
                for _, target, data in graph.out_edges(node, data=True)
                if float(data.get(weight_key, 1.0)) > 0.0
            ]
            if node != source:
                rank[node] = rank.get(node, 0.0) + (1.0 - spreading_factor) * flow
            if not successors:
                continue  # sink node: untransmitted energy is retained above
            forwarded = flow if node == source else spreading_factor * flow
            total_weight = sum(weight for _, weight in successors)
            for target, weight in successors:
                share = forwarded * weight / total_weight
                outgoing[target] = outgoing.get(target, 0.0) + share
                max_flow = max(max_flow, share)
        incoming = outgoing
        if max_flow < tolerance:
            return rank
    raise ConvergenceError(
        f"Appleseed did not converge in {max_iterations} iterations",
        iterations=max_iterations,
        residual=max_flow,
        tolerance=tolerance,
    )
