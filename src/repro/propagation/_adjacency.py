"""Shared input adapter for the propagation algorithms.

Every propagation model accepts either a :class:`repro.matrix.UserPairMatrix`
(the fast path -- its cached CSR view is consumed directly, no per-edge
Python iteration) or a :class:`networkx.DiGraph` (the compatibility path --
edges are gathered once into a matrix over the graph's node set).
"""

# repro: hot-path

from __future__ import annotations

from typing import Union

import networkx as nx

from repro.matrix import LabelIndex, UserPairMatrix

__all__ = ["TrustWeb", "as_pair_matrix"]

TrustWeb = Union[UserPairMatrix, "nx.DiGraph"]


def as_pair_matrix(
    web: TrustWeb,
    *,
    weight_key: str = "trust",
    default_weight: float = 1.0,
) -> UserPairMatrix:
    """Coerce a trust web into a :class:`UserPairMatrix`.

    A matrix passes through untouched (so its cached CSR is reused); a
    digraph is converted once, with every node on the axis and edges
    missing ``weight_key`` falling back to ``default_weight``.
    """
    if isinstance(web, UserPairMatrix):
        return web
    users = LabelIndex(str(node) for node in web.nodes)
    matrix = UserPairMatrix(users)
    for source, target, data in web.edges(data=True):
        matrix.set(str(source), str(target), float(data.get(weight_key, default_weight)))
    return matrix
