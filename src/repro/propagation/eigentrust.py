"""EigenTrust (Kamvar, Schlosser & Garcia-Molina 2003).

A *global* trust model: normalise each user's outgoing trust to sum 1,
then find the principal left eigenvector of the resulting stochastic
matrix, mixed with a pre-trust distribution for irreducibility:

.. math::

    t^{(k+1)} = (1 - a) \\cdot C^T t^{(k)} + a \\cdot p

where ``C`` is the row-normalised trust matrix, ``p`` the pre-trust
distribution and ``a`` the mixing weight.  The result ranks every node by
community-wide trust (the paper's §II: global models "rank all nodes with
a universal trust value").
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.validation import require_fraction, require_positive

__all__ = ["eigen_trust"]


def eigen_trust(
    graph: nx.DiGraph,
    *,
    weight_key: str = "trust",
    pretrust: dict[str, float] | None = None,
    alpha: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
) -> dict[str, float]:
    """Compute global EigenTrust values for every node.

    Parameters
    ----------
    pretrust:
        Prior trust distribution (defaults to uniform).  Values are
        normalised to sum 1; nodes absent from the mapping get 0.
    alpha:
        Weight of the pre-trust mixing (0 = pure eigenvector, needs a
        strongly connected graph to be well-defined).

    Returns
    -------
    dict
        ``{node: trust}`` summing to 1 (empty graph -> empty dict).
    """
    require_fraction("alpha", alpha)
    require_positive("tolerance", tolerance)
    require_positive("max_iterations", max_iterations)

    nodes = list(graph.nodes)
    if not nodes:
        return {}
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)

    p = _pretrust_vector(pretrust, nodes, index)

    # row-normalised trust matrix C
    matrix = np.zeros((n, n))
    for source, target, data in graph.edges(data=True):
        weight = float(data.get(weight_key, 1.0))
        if weight < 0:
            raise ValidationError("EigenTrust requires non-negative edge weights")
        matrix[index[source], index[target]] = weight
    row_sums = matrix.sum(axis=1, keepdims=True)
    dangling = (row_sums[:, 0] == 0.0)
    matrix = np.divide(matrix, np.where(row_sums > 0, row_sums, 1.0))

    t = p.copy()
    for _ in range(max_iterations):
        # dangling users are treated as trusting the pre-trusted peers
        spread = matrix.T @ t + p * float(t[dangling].sum())
        new_t = (1.0 - alpha) * spread + alpha * p
        total = new_t.sum()
        if total > 0:
            new_t = new_t / total
        residual = float(np.abs(new_t - t).max())
        t = new_t
        if residual < tolerance:
            return {node: float(t[index[node]]) for node in nodes}
    raise ConvergenceError(
        f"EigenTrust did not converge in {max_iterations} iterations",
        iterations=max_iterations,
        residual=residual,
        tolerance=tolerance,
    )


def _pretrust_vector(
    pretrust: dict[str, float] | None, nodes: list[str], index: dict[str, int]
) -> np.ndarray:
    n = len(nodes)
    if pretrust is None:
        return np.full(n, 1.0 / n)
    p = np.zeros(n)
    for node, value in pretrust.items():
        if node not in index:
            raise ValidationError(f"pretrust names unknown node {node!r}")
        if value < 0:
            raise ValidationError("pretrust values must be non-negative")
        p[index[node]] = value
    total = p.sum()
    if total <= 0:
        raise ValidationError("pretrust must have positive total mass")
    return p / total
