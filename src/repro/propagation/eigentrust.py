"""EigenTrust (Kamvar, Schlosser & Garcia-Molina 2003).

A *global* trust model: normalise each user's outgoing trust to sum 1,
then find the principal left eigenvector of the resulting stochastic
matrix, mixed with a pre-trust distribution for irreducibility:

.. math::

    t^{(k+1)} = (1 - a) \\cdot C^T t^{(k)} + a \\cdot p

where ``C`` is the row-normalised trust matrix, ``p`` the pre-trust
distribution and ``a`` the mixing weight.  The result ranks every node by
community-wide trust (the paper's §II: global models "rank all nodes with
a universal trust value").

The iteration runs on the sparse CSR view of the trust web -- pass a
:class:`repro.matrix.UserPairMatrix` to reuse its cached CSR directly; a
:class:`networkx.DiGraph` is accepted for compatibility and converted
once.

Out-of-core sweep
-----------------
A :class:`repro.shard.ShardedPairMatrix` input runs the same fixed point
without ever materialising the whole spread operator: each row-block
shard's transposed, scaled CSR is written to a temporary store once, and
every iteration memory-maps the per-shard operators and accumulates them
into one output vector via scipy's ``csr_matvec`` kernel.  That kernel
adds into the running ``y[i]`` element-by-element in source-row order, so
sweeping the shards in ascending row order reproduces the monolithic
``spread_op @ t`` product **bitwise** -- the per-shard partial-sum
formulation (``y += block.T @ t_block``) would not, because it changes
the additions' parenthesisation.  Peak memory is one shard's operator
plus the O(U) iteration vectors.
"""

# repro: hot-path

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Mapping, Union

import numpy as np
from scipy import sparse
from scipy.sparse import _sparsetools

from repro import obs
from repro.common.arrays import BoolArray, FloatArray
from repro.common.errors import ValidationError
from repro.common.validation import require_fraction, require_positive
from repro.matrix import LabelIndex, UserPairMatrix
from repro.propagation._adjacency import TrustWeb, as_pair_matrix
from repro.propagation.scores import PropagationScores

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.matrix import ShardedPairMatrix

__all__ = ["eigen_trust"]


def eigen_trust(
    web: "TrustWeb | ShardedPairMatrix",
    *,
    weight_key: str = "trust",
    pretrust: dict[str, float] | None = None,
    alpha: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
    initial: Mapping[str, float] | FloatArray | None = None,
) -> PropagationScores:
    """Compute global EigenTrust values for every node.

    Parameters
    ----------
    web:
        The trust web: a :class:`repro.matrix.UserPairMatrix` (fast path)
        or a weighted :class:`networkx.DiGraph`.
    pretrust:
        Prior trust distribution (defaults to uniform).  Values are
        normalised to sum 1; nodes absent from the mapping get 0.
    alpha:
        Weight of the pre-trust mixing (0 = pure eigenvector, needs a
        strongly connected graph to be well-defined).
    initial:
        Optional warm-start vector -- either a ``{node: score}`` mapping
        (missing nodes get 0) or a dense array aligned with the matrix's
        user axis.  It is normalised to sum 1 and replaces the default
        start ``t = p``.  The fixed point is unique for ``alpha > 0``, so
        a warm start changes the iteration count, not the limit; the
        incremental engine feeds the previous scores back in to save
        sweeps.  Ignored when it has no positive mass.

    Returns
    -------
    PropagationScores
        Trust per node, summing to 1; usable as a ``{node: trust}``
        mapping, with the dense vector on :meth:`~PropagationScores.scores_array`
        (empty graph -> empty scores).  Carries convergence telemetry
        (``converged`` / ``iterations`` / ``residual``); hitting the
        ``max_iterations`` cap emits a :class:`RuntimeWarning` and returns
        the unconverged scores with ``converged=False`` instead of raising.
    """
    require_fraction("alpha", alpha)
    require_positive("tolerance", tolerance)
    require_positive("max_iterations", max_iterations)

    from repro.shard.matrix import ShardedPairMatrix

    if isinstance(web, ShardedPairMatrix):
        users = web.users
        sharded: "ShardedPairMatrix | None" = web
        matrix = None
    else:
        matrix = as_pair_matrix(web, weight_key=weight_key)
        users = matrix.users
        sharded = None
    n = len(users)
    if n == 0:
        return PropagationScores(LabelIndex(()), np.zeros(0))

    with obs.span(
        "propagation.eigentrust",
        users=n,
        shards=0 if sharded is None else sharded.num_shards,
    ):
        if sharded is not None:
            apply_spread, dangling = _sharded_spread(sharded)
        else:
            assert matrix is not None
            apply_spread, dangling = _dense_spread(matrix)

        p = _pretrust_vector(pretrust, users)
        t = _initial_vector(initial, users, p)
        converged = False
        iterations = 0
        residual = float("inf")
        for iterations in range(1, max_iterations + 1):
            # dangling users are treated as trusting the pre-trusted peers
            spread = apply_spread(t) + p * float(t[dangling].sum())
            new_t = (1.0 - alpha) * spread + alpha * p
            total = new_t.sum()
            if total > 0:
                new_t = new_t / total
            residual = float(np.abs(new_t - t).max())
            t = new_t
            if residual < tolerance:
                converged = True
                break
        obs.convergence(
            "propagation.eigentrust",
            iterations=iterations,
            residual=residual,
            tolerance=tolerance,
            converged=converged,
        )
        if not converged:
            warnings.warn(
                f"EigenTrust stopped at the max_iterations cap ({max_iterations}) "
                f"with residual {residual:.3e} > tolerance {tolerance:.3e}; "
                f"returning the unconverged scores (converged=False)",
                RuntimeWarning,
                stacklevel=2,
            )
        return PropagationScores(
            users, t, converged=converged, iterations=iterations, residual=residual
        )


def _dense_spread(
    matrix: "UserPairMatrix",
) -> tuple[Callable[[FloatArray], FloatArray], BoolArray]:
    """The in-memory spread operator: one cached transposed CSR."""
    adjacency = matrix.csr()
    if adjacency.nnz and adjacency.data.size and float(adjacency.data.min()) < 0.0:
        raise ValidationError("EigenTrust requires non-negative edge weights")
    row_sums = np.asarray(adjacency.sum(axis=1)).ravel()
    dangling: BoolArray = row_sums == 0.0
    inverse = np.where(dangling, 0.0, 1.0 / np.where(dangling, 1.0, row_sums))
    # column-oriented form of the row-normalised matrix, so each sweep is
    # one sparse mat-vec; scaling the CSR data directly multiplies the
    # same inverse[i] * a_ij products a diagonal matmul would, without
    # paying a sparse-sparse product to do it
    scale = np.repeat(inverse, np.diff(adjacency.indptr))
    spread_op = sparse.csr_matrix(
        (adjacency.data * scale, adjacency.indices, adjacency.indptr),
        shape=adjacency.shape,
    ).T.tocsr()

    def apply(t: FloatArray) -> FloatArray:
        result: FloatArray = spread_op @ t
        return result

    return apply, dangling


def _sharded_spread(
    matrix: "ShardedPairMatrix",
) -> tuple[Callable[[FloatArray], FloatArray], BoolArray]:
    """The out-of-core spread operator: per-shard transposed CSRs on disk.

    Each shard's operator block (``U x rows_in_shard``) is written to a
    temporary :class:`repro.shard.ShardStore` once; :func:`apply` then
    memory-maps the blocks per iteration and accumulates them into one
    output vector with ``csr_matvec``, whose per-element running sum in
    ascending source-row order makes the sweep bitwise equal to the
    monolithic product (see the module notes).
    """
    from repro.shard.store import ShardStore

    n = len(matrix.users)
    ops_store = ShardStore.temporary(prefix="repro-eigentrust-")
    dangling = np.ones(n, dtype=bool)
    shard_meta: list[tuple[int, int, int]] = []
    for s, lo, hi in matrix.layout:
        block = matrix.shard_csr(s)
        if block.nnz and float(block.data.min()) < 0.0:
            raise ValidationError("EigenTrust requires non-negative edge weights")
        local_sums = np.asarray(block.sum(axis=1)).ravel()
        local_dangling = local_sums == 0.0
        dangling[lo:hi] = local_dangling
        inverse = np.where(
            local_dangling, 0.0, 1.0 / np.where(local_dangling, 1.0, local_sums)
        )
        scale = np.repeat(inverse, np.diff(block.indptr))
        op = sparse.csr_matrix(
            (block.data * scale, block.indices, block.indptr), shape=block.shape
        ).T.tocsr()
        if op.nnz:
            ops_store.write_array(f"op_{s:05d}.data.npy", op.data)
            ops_store.write_array(f"op_{s:05d}.indices.npy", op.indices)
            ops_store.write_array(f"op_{s:05d}.indptr.npy", op.indptr)
            shard_meta.append((s, lo, hi))

    def apply(t: FloatArray) -> FloatArray:
        y = np.zeros(n)
        for s, lo, hi in shard_meta:
            data = ops_store.read_array(f"op_{s:05d}.data.npy")
            indices = ops_store.read_array(f"op_{s:05d}.indices.npy")
            indptr = ops_store.read_array(f"op_{s:05d}.indptr.npy")
            # accumulates into y element-by-element: sweeping shards in
            # ascending row order reproduces the monolithic matvec bitwise
            _sparsetools.csr_matvec(n, hi - lo, indptr, indices, data, t[lo:hi], y)
        obs.add("propagation.eigentrust.shard_sweeps", len(shard_meta))
        return y

    return apply, dangling


def _initial_vector(
    initial: Mapping[str, float] | FloatArray | None,
    users: LabelIndex,
    p: FloatArray,
) -> FloatArray:
    """Resolve the warm-start vector; fall back to ``p`` (the cold start)."""
    if initial is None:
        return p.copy()
    n = len(users)
    if isinstance(initial, np.ndarray):
        if initial.shape != (n,):
            raise ValidationError(
                f"initial vector must have shape ({n},), got {initial.shape}"
            )
        t = initial.astype(np.float64, copy=True)
    else:
        t = np.zeros(n)
        for node, value in initial.items():
            if node in users:
                t[users.position(node)] = value
    if np.any(t < 0.0):
        raise ValidationError("initial scores must be non-negative")
    total = t.sum()
    if total <= 0.0:
        return p.copy()
    return t / total


def _pretrust_vector(pretrust: dict[str, float] | None, users: LabelIndex) -> FloatArray:
    n = len(users)
    if pretrust is None:
        return np.full(n, 1.0 / n)
    p = np.zeros(n)
    for node, value in pretrust.items():
        if node not in users:
            raise ValidationError(f"pretrust names unknown node {node!r}")
        if value < 0:
            raise ValidationError("pretrust values must be non-negative")
        p[users.position(node)] = value
    total = p.sum()
    if total <= 0:
        raise ValidationError("pretrust must have positive total mass")
    return p / total
