"""Vector-native result type for the propagation models.

The propagation algorithms work on the user axis of a
:class:`repro.matrix.UserPairMatrix`, so their natural output is a dense
score vector over that axis.  :class:`PropagationScores` keeps that vector
(:meth:`scores_array`) for downstream numeric consumers -- the §V
comparison experiment feeds it straight into the vectorised ranking
metrics -- while still behaving as the ``{label: score}`` mapping the
original API returned, so dict-shaped callers and tests keep working
unchanged.

A score can cover the whole axis (EigenTrust ranks every node) or only a
subset (Appleseed ranks the nodes its energy reached); the subset case is
carried as a boolean ``present`` mask over the same axis.
"""

# repro: hot-path

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.common.arrays import BoolArray, FloatArray
from repro.common.errors import ValidationError
from repro.matrix import LabelIndex

__all__ = ["PropagationScores"]


class PropagationScores(Mapping[str, float]):
    """Dense per-user propagation scores with mapping semantics.

    Parameters
    ----------
    users:
        The user axis the scores are defined over.
    values:
        Score per axis position (length ``len(users)``).
    present:
        Optional boolean mask over the axis; positions where it is
        ``False`` are absent from the mapping view (and read as 0 in
        :meth:`scores_array`).  ``None`` means every node is present.
    converged:
        Whether the producing iteration reached its tolerance.  ``False``
        marks scores returned at the ``max_iterations`` cap -- usable,
        but an approximation the caller should not silently trust.
    iterations / residual:
        Convergence telemetry of the producing iteration (``None`` for
        non-iterative producers).
    """

    __slots__ = ("users", "_values", "_present", "converged", "iterations", "residual")

    def __init__(
        self,
        users: LabelIndex,
        values: FloatArray,
        present: BoolArray | None = None,
        *,
        converged: bool = True,
        iterations: int | None = None,
        residual: float | None = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (len(users),):
            raise ValidationError(
                f"values shape {values.shape} does not match {len(users)} users"
            )
        if present is not None:
            present = np.asarray(present, dtype=bool)
            if present.shape != values.shape:
                raise ValidationError(
                    f"present mask shape {present.shape} does not match "
                    f"{len(users)} users"
                )
            values = np.where(present, values, 0.0)
        self.users = users
        self._values = values
        self._present = present
        self.converged = bool(converged)
        self.iterations = iterations
        self.residual = residual

    # ------------------------------------------------------------- vector view

    def scores_array(self) -> FloatArray:
        """Copy of the score vector over the full user axis (absent = 0)."""
        return self._values.copy()

    def present_mask(self) -> BoolArray:
        """Boolean mask of axis positions present in the mapping view."""
        if self._present is None:
            return np.ones(len(self.users), dtype=bool)
        return self._present.copy()

    # ------------------------------------------------------------ mapping view

    def __getitem__(self, label: str) -> float:
        position = self.users.position(label)
        if self._present is not None and not self._present[position]:
            raise KeyError(label)
        return float(self._values[position])

    def __iter__(self) -> Iterator[str]:
        labels = self.users.labels
        if self._present is None:
            return iter(labels)
        return (labels[int(i)] for i in np.nonzero(self._present)[0])

    def __len__(self) -> int:
        if self._present is None:
            return len(self.users)
        return int(self._present.sum())

    def __contains__(self, label: object) -> bool:
        if not isinstance(label, str) or label not in self.users:
            return False
        if self._present is None:
            return True
        return bool(self._present[self.users.position(label)])

    def to_dict(self) -> dict[str, float]:
        """Materialise the mapping view as a plain dict."""
        return {label: self[label] for label in self}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PropagationScores({len(self)} of {len(self.users)} users)"
