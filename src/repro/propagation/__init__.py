"""Trust propagation over a web of trust (paper §II related work, §V future work).

The paper's stated future work is to propagate its *derived* web of trust
and compare against propagation over the explicit one.  This package
implements the propagation models the paper cites:

- :func:`tidal_trust` -- Golbeck's TidalTrust (local, source-sink, weighted
  shortest paths) [ref. 3];
- :func:`eigen_trust` -- Kamvar et al.'s EigenTrust (global PageRank-style
  fixed point) [ref. 8];
- :func:`guha_propagation` -- Guha et al.'s atomic propagations (direct,
  co-citation, transpose, coupling) [ref. 5];
- :func:`appleseed` -- Ziegler & Lausen's spreading-activation model
  [ref. 9].

All operate on weighted :class:`networkx.DiGraph` webs of trust (see
:func:`repro.trust.to_digraph`).
"""

from repro.propagation.appleseed import appleseed
from repro.propagation.eigentrust import eigen_trust
from repro.propagation.guha import GuhaWeights, guha_propagation
from repro.propagation.scores import PropagationScores
from repro.propagation.tidaltrust import tidal_trust

__all__ = [
    "tidal_trust",
    "eigen_trust",
    "guha_propagation",
    "GuhaWeights",
    "appleseed",
    "PropagationScores",
]
