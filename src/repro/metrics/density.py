"""Fig. 3: density of the derived matrix vs ``R`` vs ``T``.

The figure's message is the paper's motivation in numbers: the explicit
web of trust ``T`` is sparse, the rating-derived relation ``R`` is denser,
and the derived trust matrix ``T-hat`` is *much* denser -- it assigns a
degree of trust to user pairs that never interacted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix

__all__ = ["DensityReport", "density_report"]


@dataclass(frozen=True)
class DensityReport:
    """Entry counts and densities of the three §IV matrices.

    ``*_density`` values are entry counts over ``U * (U - 1)`` ordered
    pairs.  The overlap regions are the ones the paper reasons about:
    ``trust_in_connections`` (``R ∩ T``) is where trust evaluation is
    possible; ``trust_outside_connections`` (``T - R``) is trust formed
    without any in-category interaction (word of mouth).
    """

    num_users: int
    derived_entries: int
    connection_entries: int
    trust_entries: int
    trust_in_connections: int
    trust_outside_connections: int
    nontrust_in_connections: int
    derived_density: float
    connection_density: float
    trust_density: float

    @property
    def densification_vs_trust(self) -> float:
        """How many times denser the derived matrix is than explicit trust."""
        return self.derived_entries / self.trust_entries if self.trust_entries else 0.0

    @property
    def densification_vs_connections(self) -> float:
        """How many times denser the derived matrix is than ``R``."""
        return (
            self.derived_entries / self.connection_entries
            if self.connection_entries
            else 0.0
        )


def density_report(
    derived: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
) -> DensityReport:
    """Compute Fig. 3's counts for the three matrices."""
    if derived.users != connections.users or derived.users != ground_truth.users:
        raise ValidationError("all matrices must share the same user axis")
    num_users = len(derived.users)
    possible = max(num_users * (num_users - 1), 1)

    trust_in_r = len(ground_truth.intersect_support(connections))
    return DensityReport(
        num_users=num_users,
        derived_entries=derived.num_entries(),
        connection_entries=connections.num_entries(),
        trust_entries=ground_truth.num_entries(),
        trust_in_connections=trust_in_r,
        trust_outside_connections=ground_truth.num_entries() - trust_in_r,
        nontrust_in_connections=connections.num_entries() - trust_in_r,
        derived_density=derived.num_entries() / possible,
        connection_density=connections.num_entries() / possible,
        trust_density=ground_truth.num_entries() / possible,
    )
