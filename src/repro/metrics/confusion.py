"""The three Table-4 metrics (paper §IV.C).

All three are computed over the support of the direct-connection relation
``R``, because ``R`` is the only region where the paper has any evidence
about *non*-trust (an explicit trust edge means trust; a rated-but-not-
trusted pair means "no trust statement", which the paper is careful to call
non-trust rather than distrust):

- recall of trust:
  ``count(T'=1 & R=1 & T=1) / count(R=1 & T=1)``
- precision of trust in ``R``:
  ``count(T'=1 & R=1 & T=1) / count(R=1 & T'=1)``
- rate of predicting non-trust as trust in ``R - T``:
  ``count(T'=1 & R=1 & T=0) / count(R=1 & T=0)``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix

__all__ = ["TrustValidationMetrics", "validate_trust"]


@dataclass(frozen=True)
class TrustValidationMetrics:
    """Table-4 row for one model.

    Attributes
    ----------
    recall / precision_in_r / nontrust_as_trust_rate:
        The paper's three ratios (``0.0`` whenever the denominator is
        empty).
    true_positives:
        Predicted trust pairs that are direct connections and truly
        trusted.
    predicted_in_r:
        Predicted trust pairs that are direct connections.
    false_positives_in_r:
        Predicted trust pairs that are direct connections but *not*
        trusted.
    trust_in_r / nontrust_in_r:
        Sizes of ``R ∩ T`` and ``R - T`` (the two denominators).
    """

    recall: float
    precision_in_r: float
    nontrust_as_trust_rate: float
    true_positives: int
    predicted_in_r: int
    false_positives_in_r: int
    trust_in_r: int
    nontrust_in_r: int


def validate_trust(
    predicted: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
) -> TrustValidationMetrics:
    """Compute the paper's three validation metrics.

    Parameters
    ----------
    predicted:
        A *binary* trust matrix (output of
        :func:`repro.trust.binarize_top_k`); any stored entry counts as a
        predicted trust edge.
    connections:
        The direct-connection relation ``R``.
    ground_truth:
        The explicit web of trust ``T``.
    """
    if connections.users != ground_truth.users or connections.users != predicted.users:
        raise ValidationError("all matrices must share the same user axis")

    trust_in_r = connections.intersect_support(ground_truth)
    nontrust_in_r = connections.subtract_support(ground_truth)

    true_positives = sum(1 for pair in trust_in_r if predicted.contains(*pair))
    false_positives = sum(1 for pair in nontrust_in_r if predicted.contains(*pair))
    predicted_in_r = true_positives + false_positives

    return TrustValidationMetrics(
        recall=_ratio(true_positives, len(trust_in_r)),
        precision_in_r=_ratio(true_positives, predicted_in_r),
        nontrust_as_trust_rate=_ratio(false_positives, len(nontrust_in_r)),
        true_positives=true_positives,
        predicted_in_r=predicted_in_r,
        false_positives_in_r=false_positives,
        trust_in_r=len(trust_in_r),
        nontrust_in_r=len(nontrust_in_r),
    )


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0
