"""Threshold-free ranking metrics (extensions used by ablation benches).

The paper's Table 4 depends on the per-user top-k binarisation; these
metrics evaluate the *continuous* scores directly, which makes ablation
comparisons insensitive to the binarisation rule:

- :func:`ranking_auc` -- probability that a random trusted pair in ``R``
  outscores a random untrusted pair in ``R``;
- :func:`precision_at_k` -- fraction of each user's top-``k`` scored
  connections that are truly trusted, averaged over users;
- :func:`spearman_rank_correlation` / :func:`top_k_overlap` -- agreement
  between two aligned score vectors (e.g. propagation results over the
  explicit vs the derived web), consumed directly from
  :meth:`repro.propagation.PropagationScores.scores_array` with no dict
  round-trip.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.matrix import UserPairMatrix

__all__ = [
    "ranking_auc",
    "precision_at_k",
    "spearman_rank_correlation",
    "top_k_overlap",
]


def ranking_auc(
    scores: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
) -> float:
    """Mann-Whitney AUC of ``scores`` separating ``R ∩ T`` from ``R - T``.

    Pairs absent from ``scores`` count as score 0 (no derived trust).
    Returns 0.5 when either class is empty.
    """
    _require_axis(scores, connections, ground_truth)
    positives: list[float] = []
    negatives: list[float] = []
    for source, target in connections.support():
        value = scores.get(source, target)
        if ground_truth.contains(source, target):
            positives.append(value)
        else:
            negatives.append(value)
    if not positives or not negatives:
        return 0.5
    pos = np.asarray(positives)
    neg = np.asarray(negatives)
    # rank-based Mann-Whitney U with tie correction
    ranks = _average_ranks(np.concatenate([pos, neg]))
    u_statistic = ranks[: len(pos)].sum() - len(pos) * (len(pos) + 1) / 2
    return float(u_statistic / (len(pos) * len(neg)))


def precision_at_k(
    scores: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
    k: int = 1,
) -> float:
    """Mean per-user precision of the top-``k`` scored direct connections.

    Users with fewer than ``k`` connections contribute their full
    connection list; users with no connections are skipped.
    """
    require_positive("k", k)
    _require_axis(scores, connections, ground_truth)
    precisions: list[float] = []
    for source in connections.source_ids():
        targets = list(connections.row(source))
        if not targets:
            continue
        ranked = sorted(targets, key=lambda t: -scores.get(source, t))[:k]
        hits = sum(1 for t in ranked if ground_truth.contains(source, t))
        precisions.append(hits / len(ranked))
    return float(np.mean(precisions)) if precisions else 0.0


def spearman_rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of two aligned score vectors.

    ``a[i]`` and ``b[i]`` must score the same item (e.g. the same user
    axis position).  Ties get average ranks.  Returns 0 when either side
    is constant or shorter than 2 -- a degenerate ranking carries no
    order information to correlate.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValidationError(
            f"score vectors must be equal-length 1-d arrays, got shapes "
            f"{a.shape} and {b.shape}"
        )
    if len(a) < 2 or np.all(a == a[0]) or np.all(b == b[0]):
        return 0.0
    corr = np.corrcoef(_average_ranks(a), _average_ranks(b))[0, 1]
    return float(corr) if np.isfinite(corr) else 0.0


def top_k_overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    """Overlap of the top-``k`` positions of two aligned score vectors.

    Each side's top ``k`` is taken by descending score with ties broken
    by axis position (stable), matching a leaderboard cut-off.  Returns
    ``|top_a ∩ top_b| / min(len, k)`` (0 for empty vectors).
    """
    require_positive("k", k)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValidationError(
            f"score vectors must be equal-length 1-d arrays, got shapes "
            f"{a.shape} and {b.shape}"
        )
    if not len(a):
        return 0.0
    top_a = np.argsort(-a, kind="stable")[:k]
    top_b = np.argsort(-b, kind="stable")[:k]
    return len(np.intersect1d(top_a, top_b)) / min(len(a), k)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties averaged, fully vectorised."""
    order = np.argsort(values, kind="mergesort")
    sorted_vals = values[order]
    n = len(values)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_vals[1:] != sorted_vals[:-1]
    group = np.cumsum(boundary) - 1
    starts = np.nonzero(boundary)[0]
    counts = np.diff(np.append(starts, n))
    # the average 1-based rank of a tie group spanning sorted positions
    # [s, s + c) is s + (c + 1) / 2
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = (starts + (counts + 1) / 2.0)[group]
    return ranks


def _require_axis(*matrices: UserPairMatrix) -> None:
    first = matrices[0]
    for other in matrices[1:]:
        if first.users != other.users:
            raise ValidationError("all matrices must share the same user axis")
