"""Threshold-free ranking metrics (extensions used by ablation benches).

The paper's Table 4 depends on the per-user top-k binarisation; these
metrics evaluate the *continuous* scores directly, which makes ablation
comparisons insensitive to the binarisation rule:

- :func:`ranking_auc` -- probability that a random trusted pair in ``R``
  outscores a random untrusted pair in ``R``;
- :func:`precision_at_k` -- fraction of each user's top-``k`` scored
  connections that are truly trusted, averaged over users.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import require_positive
from repro.matrix import UserPairMatrix

__all__ = ["ranking_auc", "precision_at_k"]


def ranking_auc(
    scores: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
) -> float:
    """Mann-Whitney AUC of ``scores`` separating ``R ∩ T`` from ``R - T``.

    Pairs absent from ``scores`` count as score 0 (no derived trust).
    Returns 0.5 when either class is empty.
    """
    _require_axis(scores, connections, ground_truth)
    positives: list[float] = []
    negatives: list[float] = []
    for source, target in connections.support():
        value = scores.get(source, target)
        if ground_truth.contains(source, target):
            positives.append(value)
        else:
            negatives.append(value)
    if not positives or not negatives:
        return 0.5
    pos = np.asarray(positives)
    neg = np.asarray(negatives)
    # rank-based Mann-Whitney U with tie correction
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(len(combined))
    ranks[order] = np.arange(1, len(combined) + 1)
    # average ranks over ties
    sorted_vals = combined[order]
    start = 0
    for i in range(1, len(sorted_vals) + 1):
        if i == len(sorted_vals) or sorted_vals[i] != sorted_vals[start]:
            if i - start > 1:
                ranks[order[start:i]] = ranks[order[start:i]].mean()
            start = i
    u_statistic = ranks[: len(pos)].sum() - len(pos) * (len(pos) + 1) / 2
    return float(u_statistic / (len(pos) * len(neg)))


def precision_at_k(
    scores: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
    k: int = 1,
) -> float:
    """Mean per-user precision of the top-``k`` scored direct connections.

    Users with fewer than ``k`` connections contribute their full
    connection list; users with no connections are skipped.
    """
    require_positive("k", k)
    _require_axis(scores, connections, ground_truth)
    precisions: list[float] = []
    for source in connections.source_ids():
        targets = list(connections.row(source))
        if not targets:
            continue
        ranked = sorted(targets, key=lambda t: -scores.get(source, t))[:k]
        hits = sum(1 for t in ranked if ground_truth.contains(source, t))
        precisions.append(hits / len(ranked))
    return float(np.mean(precisions)) if precisions else 0.0


def _require_axis(*matrices: UserPairMatrix) -> None:
    first = matrices[0]
    for other in matrices[1:]:
        if first.users != other.users:
            raise ValidationError("all matrices must share the same user axis")
