"""The Table-2/3 methodology: quartile placement of designated experts.

Per category: rank every user active in the category by their estimated
reputation, cut the ranking into four quartiles (Q1 = top 25%), and count
where the externally designated experts (Epinions Advisors / Top
Reviewers; the simulator's latent designations) land.  A useful reputation
model concentrates the designated experts in Q1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.common.errors import ValidationError
from repro.matrix import UserCategoryMatrix

__all__ = ["CategoryQuartiles", "QuartileReport", "quartile_distribution"]


@dataclass(frozen=True)
class CategoryQuartiles:
    """One row of Table 2/3: expert placement within one category."""

    category_id: str
    category_name: str
    num_active_users: int
    num_experts: int
    quartile_counts: tuple[int, int, int, int]

    @property
    def q1_fraction(self) -> float:
        """Fraction of this category's experts landing in the top quartile."""
        return self.quartile_counts[0] / self.num_experts if self.num_experts else 0.0


@dataclass(frozen=True)
class QuartileReport:
    """All categories plus the paper's "Overall" line."""

    rows: tuple[CategoryQuartiles, ...]

    @property
    def total_experts(self) -> int:
        """Total expert placements across categories (experts count once per
        category they are active in, as in the paper)."""
        return sum(row.num_experts for row in self.rows)

    @property
    def overall_quartiles(self) -> tuple[int, int, int, int]:
        """Expert counts per quartile summed over categories."""
        sums = [0, 0, 0, 0]
        for row in self.rows:
            for q in range(4):
                sums[q] += row.quartile_counts[q]
        return tuple(sums)  # type: ignore[return-value]

    @property
    def overall_q1_fraction(self) -> float:
        """The paper's headline number (98.4% / 89.4%)."""
        total = self.total_experts
        return self.overall_quartiles[0] / total if total else 0.0


def quartile_distribution(
    reputation: UserCategoryMatrix,
    experts: Iterable[str],
    active_users: Mapping[str, Iterable[str]],
    *,
    category_names: Mapping[str, str] | None = None,
    min_activity_users: Mapping[str, Mapping[str, int]] | None = None,
    min_activity: int = 1,
) -> QuartileReport:
    """Compute Table 2/3 for one reputation matrix.

    Parameters
    ----------
    reputation:
        Estimated per-category reputation (rater or writer).
    experts:
        Designated expert user ids (Advisors or Top Reviewers).
    active_users:
        ``{category_id: iterable of user ids active in that category}``
        -- the rater (or writer) population whose ranking defines the
        quartiles.  Experts absent from a category's population are
        excluded there, mirroring the paper's "reselect ... by removing
        Advisors who never rate reviews in a sub category".
    min_activity_users / min_activity:
        Optional activity counts per category; when given, experts with
        fewer than ``min_activity`` events in a category are not counted
        there (the ranking population is unchanged).  ``min_activity=1``
        reproduces the paper's rule exactly.

    Returns
    -------
    QuartileReport
        One row per category (categories with no active experts are
        skipped, like the paper's Horror/Suspense row for writers).
    """
    if min_activity < 1:
        raise ValidationError(f"min_activity must be >= 1, got {min_activity}")
    expert_list = list(dict.fromkeys(experts))
    names = category_names or {}

    rows = []
    for category_id in reputation.categories:
        population = list(dict.fromkeys(active_users.get(category_id, ())))
        if not population:
            continue
        population_set = set(population)
        eligible = [u for u in expert_list if u in population_set]
        if min_activity > 1 and min_activity_users is not None:
            counts = min_activity_users.get(category_id, {})
            eligible = [u for u in eligible if counts.get(u, 0) >= min_activity]
        if not eligible:
            continue

        ranking = reputation.ranking(category_id, restrict_to=population_set)
        position = {user: rank for rank, user in enumerate(ranking)}
        quartiles = [0, 0, 0, 0]
        n = len(ranking)
        for user in eligible:
            q = min(3, (4 * position[user]) // n)
            quartiles[q] += 1
        rows.append(
            CategoryQuartiles(
                category_id=category_id,
                category_name=names.get(category_id, category_id),
                num_active_users=n,
                num_experts=len(eligible),
                quartile_counts=tuple(quartiles),  # type: ignore[arg-type]
            )
        )
    return QuartileReport(rows=tuple(rows))
