"""§IV.C's score-gap analysis of predicted edges.

The paper inspects the continuous ``T-hat`` values of *predicted* trust
edges separately on ``R ∩ T`` (actually trusted) and ``R - T`` (not -- or
not yet -- trusted), and reports that the mean and minimum on ``R - T``
are *higher*: the model's confident "false positives" look like trust
edges that simply have not been expressed yet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.matrix import UserPairMatrix

__all__ = ["ScoreGapReport", "score_gap_analysis"]


@dataclass(frozen=True)
class ScoreGapReport:
    """Distribution of predicted ``T-hat`` values on the two regions."""

    trusted_count: int
    untrusted_count: int
    trusted_mean: float
    untrusted_mean: float
    trusted_min: float
    untrusted_min: float

    @property
    def mean_gap(self) -> float:
        """``mean(R - T) - mean(R ∩ T)`` (positive = the paper's finding)."""
        return self.untrusted_mean - self.trusted_mean

    @property
    def min_gap(self) -> float:
        """``min(R - T) - min(R ∩ T)`` (positive = the paper's finding)."""
        return self.untrusted_min - self.trusted_min


def score_gap_analysis(
    derived: UserPairMatrix,
    predicted: UserPairMatrix,
    connections: UserPairMatrix,
    ground_truth: UserPairMatrix,
) -> ScoreGapReport:
    """Compare predicted ``T-hat`` values on ``R ∩ T`` vs ``R - T``.

    Parameters
    ----------
    derived:
        Continuous derived trust values ``T-hat``.
    predicted:
        The binarised matrix (only pairs stored here are analysed).
    connections / ground_truth:
        ``R`` and ``T``.
    """
    for other in (predicted, connections, ground_truth):
        if derived.users != other.users:
            raise ValidationError("all matrices must share the same user axis")

    trusted_scores: list[float] = []
    untrusted_scores: list[float] = []
    for source, target in connections.support():
        if not predicted.contains(source, target):
            continue
        score = derived.get(source, target)
        if ground_truth.contains(source, target):
            trusted_scores.append(score)
        else:
            untrusted_scores.append(score)

    return ScoreGapReport(
        trusted_count=len(trusted_scores),
        untrusted_count=len(untrusted_scores),
        trusted_mean=float(np.mean(trusted_scores)) if trusted_scores else 0.0,
        untrusted_mean=float(np.mean(untrusted_scores)) if untrusted_scores else 0.0,
        trusted_min=float(np.min(trusted_scores)) if trusted_scores else 0.0,
        untrusted_min=float(np.min(untrusted_scores)) if untrusted_scores else 0.0,
    )
