"""Evaluation metrics for the paper's experiments (§IV).

- :func:`validate_trust` -- the three Table-4 metrics (recall of trust,
  precision of trust in ``R``, rate of predicting non-trust as trust in
  ``R - T``);
- :func:`quartile_distribution` -- the Table-2/3 methodology (rank users by
  estimated reputation per category, count designated experts per
  quartile);
- :func:`density_report` -- Fig. 3 (sizes and densities of ``T-hat``,
  ``R``, ``T`` and their overlaps);
- :func:`score_gap_analysis` -- §IV.C's comparison of predicted trust
  values on ``R ∩ T`` vs ``R - T``;
- :func:`ranking_auc` / :func:`precision_at_k` -- threshold-free extension
  metrics used by the ablation experiments;
- :func:`spearman_rank_correlation` / :func:`top_k_overlap` -- vector
  agreement metrics for comparing propagation score vectors.
"""

from repro.metrics.confusion import TrustValidationMetrics, validate_trust
from repro.metrics.density import DensityReport, density_report
from repro.metrics.quartiles import (
    CategoryQuartiles,
    QuartileReport,
    quartile_distribution,
)
from repro.metrics.ranking import (
    precision_at_k,
    ranking_auc,
    spearman_rank_correlation,
    top_k_overlap,
)
from repro.metrics.score_gap import ScoreGapReport, score_gap_analysis

__all__ = [
    "TrustValidationMetrics",
    "validate_trust",
    "CategoryQuartiles",
    "QuartileReport",
    "quartile_distribution",
    "DensityReport",
    "density_report",
    "ScoreGapReport",
    "score_gap_analysis",
    "ranking_auc",
    "precision_at_k",
    "spearman_rank_correlation",
    "top_k_overlap",
]
