"""``python -m repro.analysis`` -- alias for the invariant linter CLI."""

from repro.analysis.lint import main

raise SystemExit(main())
