"""AST-based linter for the repo's own correctness invariants.

Generic linters cannot see the contracts this codebase depends on -- that
every mutator invalidates its caches, that hot paths stay columnar, that
float accumulation is deterministically ordered, that the cached columnar
view is never written to.  This module checks them statically::

    python -m repro.analysis.lint src/

Rule catalogue
--------------
R1  Every public mutator on a cache-carrying class (``Community``,
    ``UserPairMatrix``) that writes backing state must invalidate the
    cache: call its invalidation hook (``self._mutated()`` /
    ``self._invalidate()``) or assign the cache attribute directly
    (``self._csr = None``).
R2  Modules marked with a ``repro: hot-path`` comment may not call the
    per-row/dict APIs (``entries()``, ``iter_ratings()``,
    ``direct_connections()``, ...) where a columnar equivalent exists.
R3  Numeric modules may not drive float accumulation (``+=`` loops,
    ``sum(...)``) from ``set``/``frozenset`` iteration -- set order is
    unspecified, so the accumulated float would be nondeterministic.
R4  :class:`repro.community.CommunityColumns` attributes are write-once:
    no assignment to its public attributes outside ``__init__``, neither
    inside the class nor on a ``columns()`` view held by a consumer.
R5  Modules of the strict-typed packages (``repro.matrix``,
    ``repro.community``, ``repro.propagation``, ``repro.reputation``,
    ``repro.obs``, ``repro.engine``, ``repro.shard``) must annotate
    every function parameter and return type (the local, always-runnable
    mirror of the ``mypy --strict`` CI gate).
R6  ``span(...)`` calls (the :mod:`repro.obs` timing API) must be entered
    through the context-manager protocol: the call must be a ``with``
    item (or be handed to ``enter_context(...)``).  A bare call leaks an
    un-closed span and skews every ancestor's self-time.  There is no
    ``start_span``/``stop_span`` pair; calling one is reported too.
R7  Every public ``Community`` mutator (a method that writes backing
    state) must publish a structured delta: call ``self._record(...)``
    so the change log sees the mutation.  Invalidation alone
    (``self._mutated()``) is not enough -- a silent version bump starves
    every change-log subscriber (delta-aware columns, the incremental
    engine) into conservative full rebuilds.

A finding can be waived with a trailing ``repro: allow(<rule>)`` comment
on the offending line (or a standalone one on the line directly above),
ideally followed by a justification::

    triples = community.rating_triples(c)  # repro: allow(R2): legacy path

Waivers are deliberate, greppable exceptions; the CI gate runs this
linter over ``src/`` and fails on any unwaived finding.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = ["Finding", "RULES", "lint_source", "lint_paths", "main"]


RULES: dict[str, str] = {
    "R1": "mutators on cache-carrying classes must invalidate their caches",
    "R2": "hot-path modules must use columnar APIs, not per-row iteration",
    "R3": "no float accumulation driven by set iteration in numeric modules",
    "R4": "CommunityColumns attributes are write-once outside __init__",
    "R5": "strict-typed packages must fully annotate every function",
    "R6": "obs spans must be context-managed (with-item or enter_context)",
    "R7": "Community mutators must emit a delta via self._record(...)",
}

_WAIVER_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Z0-9,\s]+?)\s*\)")
_HOT_PATH_RE = re.compile(r"#\s*repro:\s*hot-path\b")

#: Cache protocols of R1: class name -> (invalidation hooks, cache attrs).
#: A write to a non-cache ``self._*`` attribute (or a mutating call on one)
#: inside a *public* method counts as a backing-state write; the method
#: must then call a hook or assign a cache attribute.  Private helpers are
#: exempt -- they are only reachable from already-invalidated contexts.
_CACHE_PROTOCOLS: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    "Community": (
        frozenset({"_mutated", "_record"}),
        frozenset({"_version", "_columns", "_columns_key"}),
    ),
    "UserPairMatrix": (
        frozenset({"_invalidate"}),
        frozenset({"_csr", "_lookup"}),
    ),
}

#: Methods whose call on a private ``self._*`` object mutates it.
_MUTATING_METHODS = frozenset(
    {
        "insert",
        "append",
        "extend",
        "add",
        "update",
        "delete",
        "remove",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "discard",
    }
)

#: R2: per-row / dict-materialising calls and their columnar replacements.
_SLOW_CALLS: dict[str, str] = {
    "entries": "UserPairMatrix.entries_arrays()",
    "support": "UserPairMatrix.support_keys()",
    "iter_ratings": "Community.columns() rating columns",
    "iter_reviews": "Community.columns() review columns",
    "direct_connections": "CommunityColumns.direct_connection_arrays()",
    "rating_triples": "CommunityColumns.ratings_slice() + srt_* columns",
}

#: In-repo calls that return ``set`` objects (R3 tracking).
_SET_RETURNING_CALLS = frozenset(
    {"support", "intersect_support", "subtract_support"}
)

_NUMERIC_PACKAGES = frozenset(
    {
        "matrix",
        "community",
        "reputation",
        "propagation",
        "trust",
        "affinity",
        "metrics",
        "shard",
    }
)
_TYPED_PACKAGES = frozenset(
    {"matrix", "community", "propagation", "reputation", "obs", "engine", "shard"}
)

#: R4: the write-once columnar view class and its constructor entry points.
_COLUMNS_CLASS = "CommunityColumns"
_COLUMNS_PRODUCERS = frozenset({"columns", "from_community"})


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class _ModuleContext:
    path: str
    waivers: dict[int, frozenset[str]]
    hot_path: bool
    numeric: bool
    typed: bool
    findings: list[Finding] = field(default_factory=list)

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        waived = self.waivers.get(line, frozenset()) | self.waivers.get(
            line - 1, frozenset()
        )
        if rule in waived:
            return
        self.findings.append(
            Finding(path=self.path, line=line, col=col, rule=rule, message=message)
        )


# --------------------------------------------------------------------- comments


def _scan_comments(source: str) -> tuple[dict[int, frozenset[str]], bool]:
    """Waiver map (line -> waived rules) and the hot-path marker flag."""
    waivers: dict[int, frozenset[str]] = {}
    hot_path = False
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            if _HOT_PATH_RE.search(token.string):
                hot_path = True
            match = _WAIVER_RE.search(token.string)
            if match:
                rules = frozenset(
                    rule.strip() for rule in match.group(1).split(",") if rule.strip()
                )
                line = token.start[0]
                waivers[line] = waivers.get(line, frozenset()) | rules
    except tokenize.TokenError:
        pass
    return waivers, hot_path


def _module_scopes(path: str) -> tuple[bool, bool]:
    """(numeric, typed) package membership of ``path``.

    Files outside a ``repro`` package tree (fixtures, snippets) are
    treated as numeric so the determinism rule stays testable on them.
    """
    parts = Path(path).parts
    if "repro" not in parts:
        return True, False
    subpackage = parts[parts.index("repro") + 1] if parts.index("repro") + 1 < len(parts) else ""
    return subpackage in _NUMERIC_PACKAGES, subpackage in _TYPED_PACKAGES


# ------------------------------------------------------------------- small AST


def _is_self_attr(node: ast.AST, attr: str | None = None) -> str | None:
    """The attribute name when ``node`` is ``self.<attr>`` (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        if attr is None or node.attr == attr:
            return node.attr
    return None


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _iter_function_scopes(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Every accumulation scope: the module plus each (async) function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested functions.

    Nested (and method) bodies are their own scopes -- they are visited by
    their own :func:`_iter_function_scopes` entry, so pruning them here
    keeps every node attributed to exactly one scope.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope: yielded as a node, body not entered
        stack.extend(ast.iter_child_nodes(node))


def _is_int_constant(node: ast.AST) -> bool:
    """Whether ``node`` is a plain integer literal (order-free accumulation)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


# ------------------------------------------------------------------------- R1


def _check_r1(tree: ast.Module, ctx: _ModuleContext) -> None:
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        protocol = _CACHE_PROTOCOLS.get(class_node.name)
        if protocol is None:
            continue
        hooks, cache_attrs = protocol
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.startswith("_"):
                continue
            writes, invalidates = _scan_method_state(method, cache_attrs, hooks)
            if writes and not invalidates:
                ctx.report(
                    method,
                    "R1",
                    f"mutator {class_node.name}.{method.name}() writes backing "
                    f"state but never invalidates the cache (call "
                    f"self.{sorted(hooks)[0]}() or assign a cache attribute "
                    f"{sorted(cache_attrs)})",
                )


def _scan_method_state(
    method: ast.AST, cache_attrs: frozenset[str], hooks: frozenset[str]
) -> tuple[bool, bool]:
    """Whether a method body (writes backing state, invalidates the cache)."""
    writes = False
    invalidates = False
    for node in ast.walk(method):
        for target in _assign_targets(node):
            base = target.value if isinstance(target, ast.Subscript) else target
            attr = _is_self_attr(base)
            if attr is None or not attr.startswith("_"):
                continue
            if attr in cache_attrs:
                invalidates = True
            else:
                writes = True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            hook_attr = _is_self_attr(node.func)
            if hook_attr in hooks:
                invalidates = True
            elif node.func.attr in _MUTATING_METHODS:
                owner = node.func.value
                owner_attr = _is_self_attr(owner)
                if owner_attr is None and isinstance(owner, ast.Attribute):
                    owner_attr = _is_self_attr(owner.value)
                if owner_attr is not None and owner_attr.startswith("_"):
                    if owner_attr not in cache_attrs:
                        writes = True
    return writes, invalidates


# ------------------------------------------------------------------------- R2


def _check_r2(tree: ast.Module, ctx: _ModuleContext) -> None:
    if not ctx.hot_path:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            replacement = _SLOW_CALLS.get(node.func.attr)
            if replacement is not None:
                ctx.report(
                    node,
                    "R2",
                    f"hot-path module calls .{node.func.attr}(); use the "
                    f"columnar equivalent ({replacement})",
                )


# ------------------------------------------------------------------------- R3


def _set_names_in_scope(body: Sequence[ast.stmt]) -> set[str]:
    """Names bound to set-valued expressions anywhere in the scope."""
    names: set[str] = set()
    for node in _walk_scope(body):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value, names) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_RETURNING_CALLS
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _check_r3(tree: ast.Module, ctx: _ModuleContext) -> None:
    if not ctx.numeric:
        return
    for _scope, body in _iter_function_scopes(tree):
        set_names = _set_names_in_scope(body)
        for node in _walk_scope(body):
            if isinstance(node, ast.For) and _is_set_expr(node.iter, set_names):
                for inner in ast.walk(node):
                    if (
                        isinstance(inner, ast.AugAssign)
                        and isinstance(inner.op, (ast.Add, ast.Sub))
                        and not _is_int_constant(inner.value)
                    ):
                        ctx.report(
                            inner,
                            "R3",
                            "float accumulation inside a loop over a set -- "
                            "set order is unspecified; iterate sorted(...) "
                            "or an insertion-ordered sequence",
                        )
            if isinstance(node, ast.Call) and _is_sum_call(node):
                for arg in node.args:
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp)
                    ) and arg.generators:
                        if _is_set_expr(
                            arg.generators[0].iter, set_names
                        ) and not _is_int_constant(arg.elt):
                            ctx.report(
                                node,
                                "R3",
                                "sum() over a set-driven generator -- set "
                                "order is unspecified; sum a sorted(...) or "
                                "insertion-ordered sequence (or math.fsum)",
                            )
                    elif _is_set_expr(arg, set_names):
                        ctx.report(
                            node,
                            "R3",
                            "sum() over a set -- set order is unspecified; "
                            "sum a sorted(...) or insertion-ordered "
                            "sequence (or math.fsum)",
                        )


def _is_sum_call(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Name) and node.func.id == "sum":
        return True
    return isinstance(node.func, ast.Attribute) and node.func.attr == "sum"


# ------------------------------------------------------------------------- R4


def _check_r4(tree: ast.Module, ctx: _ModuleContext) -> None:
    for class_node in ast.walk(tree):
        if isinstance(class_node, ast.ClassDef) and class_node.name == _COLUMNS_CLASS:
            _check_r4_inside_class(class_node, ctx)
    for _scope, body in _iter_function_scopes(tree):
        _check_r4_consumers(body, ctx)


def _check_r4_inside_class(class_node: ast.ClassDef, ctx: _ModuleContext) -> None:
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue
        for node in ast.walk(method):
            for target in _assign_targets(node):
                base = target.value if isinstance(target, ast.Subscript) else target
                attr = _is_self_attr(base)
                if attr is not None and not attr.startswith("_"):
                    ctx.report(
                        node,
                        "R4",
                        f"{_COLUMNS_CLASS}.{attr} is write-once; it may only be "
                        f"assigned in __init__ (lazy memo attributes must be "
                        f"underscore-prefixed)",
                    )


def _columns_names_in_scope(body: Sequence[ast.stmt]) -> set[str]:
    names: set[str] = set()
    for node in _walk_scope(body):
        if isinstance(node, ast.Assign) and _is_columns_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_columns_expr(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name) and node.func.id == _COLUMNS_CLASS:
        return True
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _COLUMNS_PRODUCERS
    )


def _check_r4_consumers(body: Sequence[ast.stmt], ctx: _ModuleContext) -> None:
    columns_names = _columns_names_in_scope(body)
    for node in _walk_scope(body):
        for target in _assign_targets(node):
            base = target.value if isinstance(target, ast.Subscript) else target
            if not isinstance(base, ast.Attribute):
                continue
            owner = base.value
            owned = (
                isinstance(owner, ast.Name) and owner.id in columns_names
            ) or _is_columns_expr(owner)
            if owned:
                ctx.report(
                    node,
                    "R4",
                    f"assignment to {_COLUMNS_CLASS} attribute "
                    f".{base.attr} -- the cached columnar view is shared "
                    f"and write-once; rebuild via Community mutators "
                    f"instead",
                )


# ------------------------------------------------------------------------- R5


def _check_r5(tree: ast.Module, ctx: _ModuleContext) -> None:
    if not ctx.typed:
        return
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing: list[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append(star.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            ctx.report(
                node,
                "R5",
                f"function {node.name}() in a strict-typed package is missing "
                f"annotations for: {', '.join(missing)}",
            )


# ------------------------------------------------------------------------- R6

#: Calls that would bypass the span context-manager protocol entirely.
_SPAN_FORBIDDEN = frozenset({"start_span", "stop_span"})


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _check_r6(tree: ast.Module, ctx: _ModuleContext) -> None:
    managed: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    managed.add(id(item.context_expr))
        elif isinstance(node, ast.Call) and _call_name(node) == "enter_context":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    managed.add(id(arg))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _SPAN_FORBIDDEN:
            ctx.report(
                node,
                "R6",
                f"there is no {name}() API; time the region with "
                f"`with obs.span(...):` so the span always closes",
            )
        elif name == "span" and id(node) not in managed:
            ctx.report(
                node,
                "R6",
                "span(...) must be a with-item (or passed to "
                "enter_context(...)); a bare call leaks an un-closed span",
            )


# ------------------------------------------------------------------------- R7

#: The change-log publisher every Community mutator must call.
_DELTA_HOOK = "_record"


def _check_r7(tree: ast.Module, ctx: _ModuleContext) -> None:
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef) or class_node.name != "Community":
            continue
        hooks, cache_attrs = _CACHE_PROTOCOLS["Community"]
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name.startswith("_"):
                continue
            writes, _ = _scan_method_state(method, cache_attrs, hooks)
            if not writes:
                continue
            records = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _is_self_attr(node.func, _DELTA_HOOK) is not None
                for node in ast.walk(method)
            )
            if not records:
                ctx.report(
                    method,
                    "R7",
                    f"mutator Community.{method.name}() writes backing state "
                    f"but never publishes a delta; call "
                    f"self.{_DELTA_HOOK}(kind, ...) so change-log subscribers "
                    f"see the mutation",
                )


# ------------------------------------------------------------------ entry points


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns unwaived findings."""
    waivers, hot_path = _scan_comments(source)
    numeric, typed = _module_scopes(path)
    ctx = _ModuleContext(
        path=path, waivers=waivers, hot_path=hot_path, numeric=numeric, typed=typed
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        ctx.findings.append(
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="E0",
                message=f"syntax error: {exc.msg}",
            )
        )
        return ctx.findings
    _check_r1(tree, ctx)
    _check_r2(tree, ctx)
    _check_r3(tree, ctx)
    _check_r4(tree, ctx)
    _check_r5(tree, ctx)
    _check_r6(tree, ctx)
    _check_r7(tree, ctx)
    ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return ctx.findings


def _python_files(paths: Iterable[str]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if "__pycache__" not in file.parts:
                    yield file
        else:
            yield path


def lint_paths(paths: Iterable[str]) -> list[Finding]:
    """Lint files and directory trees; returns all unwaived findings."""
    findings: list[Finding] = []
    for file in _python_files(paths):
        findings.extend(lint_source(file.read_text(encoding="utf-8"), str(file)))
    return findings


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``python -m repro.analysis.lint [paths...]``."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis.lint",
        description="Check the repo-specific invariants R1-R7.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule, description in RULES.items():
            print(f"{rule}  {description}")
        return 0
    findings = lint_paths(options.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
