"""Static analysis of the repo's own invariants.

The caching and determinism guarantees layered into the numeric core
(version-gated :meth:`repro.community.Community.columns`, the
:class:`repro.matrix.UserPairMatrix` CSR cache, bitwise-reproducible
accumulation order) are enforced by convention, which a refactor can
silently break.  This package machine-checks them:

- :mod:`repro.analysis.lint` -- an AST linter with the repo-specific rule
  catalogue R1-R5 (``python -m repro.analysis.lint src/``).

The runtime counterpart lives in :mod:`repro.common.contracts`.

The submodule is loaded lazily (PEP 562) so ``python -m
repro.analysis.lint`` does not import it twice.
"""

from typing import Any

__all__ = ["Finding", "RULES", "lint_paths", "lint_source"]


def __getattr__(name: str) -> Any:
    if name in __all__:
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
