"""A single table: validated rows, primary key, secondary indexes."""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.common.errors import IntegrityError, ValidationError
from repro.store.index import HashIndex, UniqueIndex
from repro.store.schema import Schema

__all__ = ["Table"]


class Table:
    """An in-memory table with schema validation and hash indexes.

    Rows are plain dicts, validated (and defensively copied) on insert.
    ``rows()`` yields copies so callers cannot corrupt indexed state by
    mutating returned rows.  Point lookups by primary key are O(1); indexed
    equality lookups are O(matches); unindexed scans are O(n).
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._rows: dict[tuple[Any, ...], dict[str, Any]] = {}
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        for combo in schema.unique:
            self._indexes[combo] = UniqueIndex(combo)

    # -- structure ---------------------------------------------------------

    @property
    def name(self) -> str:
        """Table name (from the schema)."""
        return self.schema.name

    def create_index(self, *columns: str) -> None:
        """Create a (non-unique) hash index over ``columns``.

        Existing rows are indexed immediately.  Creating the same index twice
        is a no-op.
        """
        for col in columns:
            self.schema.column(col)  # raises ValidationError if unknown
        key = tuple(columns)
        if key in self._indexes:
            return
        index = HashIndex(key)
        for pk, row in self._rows.items():
            index.add(row, pk)
        self._indexes[key] = index

    def has_index(self, *columns: str) -> bool:
        """Whether an index over exactly ``columns`` exists."""
        return tuple(columns) in self._indexes

    # -- mutation ----------------------------------------------------------

    def insert(self, row: dict[str, Any]) -> None:
        """Validate and insert one row.

        Raises
        ------
        SchemaError
            If the row does not match the schema.
        IntegrityError
            If the primary key already exists or a unique constraint fails.
        """
        clean = self.schema.validate_row(row)
        pk = self.schema.pk_of(clean)
        if pk in self._rows:
            raise IntegrityError(f"table {self.name!r}: duplicate primary key {pk!r}")
        # Unique indexes can reject; add to them first so a failure leaves
        # the table unchanged (non-unique adds cannot fail).
        added: list[HashIndex] = []
        try:
            for index in self._indexes.values():
                index.add(clean, pk)
                added.append(index)
        except IntegrityError:
            for index in added:
                index.remove(clean, pk)
            raise
        self._rows[pk] = clean

    def insert_many(self, rows: Any) -> int:
        """Insert an iterable of rows; return the number inserted.

        The insert is not atomic: rows before the first failing row remain.
        """
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete(self, *pk: Any) -> None:
        """Delete the row with primary key ``pk``."""
        key = tuple(pk)
        row = self._rows.pop(key, None)
        if row is None:
            raise IntegrityError(f"table {self.name!r}: no row with primary key {key!r}")
        for index in self._indexes.values():
            index.remove(row, key)

    # -- access ------------------------------------------------------------

    def get(self, *pk: Any) -> dict[str, Any]:
        """Return a copy of the row with primary key ``pk``."""
        row = self._rows.get(tuple(pk))
        if row is None:
            raise IntegrityError(f"table {self.name!r}: no row with primary key {pk!r}")
        return dict(row)

    def maybe_get(self, *pk: Any) -> dict[str, Any] | None:
        """Like :meth:`get` but returns ``None`` when the row is absent."""
        row = self._rows.get(tuple(pk))
        return None if row is None else dict(row)

    def contains(self, *pk: Any) -> bool:
        """Whether a row with primary key ``pk`` exists."""
        return tuple(pk) in self._rows

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of all rows, in insertion order."""
        for row in self._rows.values():
            yield dict(row)

    def find(self, **equals: Any) -> list[dict[str, Any]]:
        """Rows whose named columns equal the given values.

        Uses an index when one exists over exactly the queried columns
        (in any order the index was declared); otherwise scans.
        """
        if not equals:
            return [dict(r) for r in self._rows.values()]
        for col in equals:
            self.schema.column(col)
        index = self._indexes.get(tuple(equals))
        if index is not None:
            key = tuple(equals[c] for c in index.columns)
            return [dict(self._rows[pk]) for pk in index.lookup(key)]
        return [
            dict(row)
            for row in self._rows.values()
            if all(row[col] == val for col, val in equals.items())
        ]

    def count(self, **equals: Any) -> int:
        """Number of rows matching the equality filter (all rows if empty)."""
        if not equals:
            return len(self._rows)
        index = self._indexes.get(tuple(equals))
        if index is not None:
            key = tuple(equals[c] for c in index.columns)
            return len(index.lookup(key))
        return sum(
            1
            for row in self._rows.values()
            if all(row[col] == val for col, val in equals.items())
        )

    def distinct(self, column: str) -> list[Any]:
        """Distinct values of ``column``, in first-seen order."""
        self.schema.column(column)
        seen: dict[Any, None] = {}
        for row in self._rows.values():
            seen.setdefault(row[column], None)
        return list(seen)

    def group_count(self, *columns: str) -> dict[tuple[Any, ...], int]:
        """Histogram of row counts keyed by the given column tuple."""
        for col in columns:
            self.schema.column(col)
        counts: dict[tuple[Any, ...], int] = {}
        for row in self._rows.values():
            key = tuple(row[c] for c in columns)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def aggregate(
        self,
        column: str,
        fn: Callable[[list[Any]], Any],
        **equals: Any,
    ) -> Any:
        """Apply ``fn`` to the list of ``column`` values of matching rows."""
        values = [row[column] for row in self.find(**equals)]
        return fn(values)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self)})"

    # -- internal hooks for Database ---------------------------------------

    def _pk_exists(self, pk: tuple[Any, ...]) -> bool:
        return pk in self._rows

    def _validate_only(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate without inserting (used by Database FK checks)."""
        clean = self.schema.validate_row(row)
        pk = self.schema.pk_of(clean)
        if pk in self._rows:
            raise IntegrityError(f"table {self.name!r}: duplicate primary key {pk!r}")
        return clean

    def _raw_insert(self, clean: dict[str, Any]) -> None:
        """Insert a pre-validated row (Database-internal)."""
        pk = self.schema.pk_of(clean)
        added: list[HashIndex] = []
        try:
            for index in self._indexes.values():
                index.add(clean, pk)
                added.append(index)
        except IntegrityError:
            for index in added:
                index.remove(clean, pk)
            raise
        self._rows[pk] = clean

    def _missing_column(self, name: str) -> bool:
        try:
            self.schema.column(name)
        except ValidationError:
            return True
        return False
