"""A small composable query layer over :class:`repro.store.table.Table`.

Queries are lazy: building one performs no work until a terminal method
(:meth:`Query.all`, :meth:`Query.count`, ...) runs.

>>> Query(reviews).where(category_id="c1").order_by("created_at").limit(10).all()
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.common.errors import ValidationError
from repro.store.table import Table

__all__ = ["Query"]


class Query:
    """Lazy filter/project/sort/limit pipeline over one table."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._equals: dict[str, Any] = {}
        self._predicates: list[Callable[[dict[str, Any]], bool]] = []
        self._order: tuple[str, bool] | None = None  # (column, descending)
        self._limit: int | None = None
        self._projection: tuple[str, ...] | None = None

    # -- builders (each returns a new Query) ---------------------------------

    def where(self, **equals: Any) -> "Query":
        """Add equality filters (ANDed with previous filters)."""
        for col in equals:
            self._table.schema.column(col)
        clone = self._clone()
        clone._equals.update(equals)
        return clone

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Query":
        """Add an arbitrary row predicate (ANDed)."""
        clone = self._clone()
        clone._predicates.append(predicate)
        return clone

    def order_by(self, column: str, *, descending: bool = False) -> "Query":
        """Sort results by ``column`` (stable sort)."""
        self._table.schema.column(column)
        clone = self._clone()
        clone._order = (column, descending)
        return clone

    def limit(self, n: int) -> "Query":
        """Keep at most ``n`` results."""
        if n < 0:
            raise ValidationError(f"limit must be >= 0, got {n}")
        clone = self._clone()
        clone._limit = n
        return clone

    def select(self, *columns: str) -> "Query":
        """Project rows down to the named columns."""
        for col in columns:
            self._table.schema.column(col)
        clone = self._clone()
        clone._projection = tuple(columns)
        return clone

    # -- terminals ---------------------------------------------------------------

    def __iter__(self) -> Iterator[dict[str, Any]]:
        rows = self._table.find(**self._equals)
        for pred in self._predicates:
            rows = [r for r in rows if pred(r)]
        if self._order is not None:
            column, descending = self._order
            rows.sort(key=lambda r: r[column], reverse=descending)
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            cols = self._projection
            for row in rows:
                yield {c: row[c] for c in cols}
        else:
            yield from rows

    def all(self) -> list[dict[str, Any]]:
        """Materialise all matching rows."""
        return list(self)

    def first(self) -> dict[str, Any] | None:
        """First matching row, or ``None``."""
        for row in self:
            return row
        return None

    def count(self) -> int:
        """Number of matching rows (fast path when only equality filters)."""
        if not self._predicates and self._limit is None:
            return self._table.count(**self._equals)
        return sum(1 for _ in self)

    def values(self, column: str) -> list[Any]:
        """The ``column`` values of all matching rows."""
        self._table.schema.column(column)
        saved = self._projection
        self._projection = None
        try:
            return [row[column] for row in self]
        finally:
            self._projection = saved

    # -- internals ------------------------------------------------------------

    def _clone(self) -> "Query":
        clone = Query(self._table)
        clone._equals = dict(self._equals)
        clone._predicates = list(self._predicates)
        clone._order = self._order
        clone._limit = self._limit
        clone._projection = self._projection
        return clone
