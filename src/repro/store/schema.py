"""Table schemas: column declarations, keys and constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import SchemaError, ValidationError

__all__ = ["Column", "ForeignKey", "Schema"]


@dataclass(frozen=True)
class Column:
    """One column of a table.

    Parameters
    ----------
    name:
        Column name; must be a valid identifier.
    dtype:
        The Python type values must be an instance of.  ``float`` columns
        also accept ``int`` values (they are coerced on insert); ``bool`` is
        *not* accepted by ``int``/``float`` columns.
    nullable:
        Whether ``None`` is an acceptable value.
    check:
        Optional per-value predicate; rows whose value fails the predicate
        are rejected with :class:`SchemaError`.
    """

    name: str
    dtype: type
    nullable: bool = False
    check: Callable[[Any], bool] | None = None

    def __post_init__(self) -> None:
        if not self.name.isidentifier():
            raise ValidationError(f"column name {self.name!r} is not a valid identifier")

    def validate(self, value: Any) -> Any:
        """Validate (and possibly coerce) ``value``; return the stored value."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        if isinstance(value, bool) and self.dtype in (int, float):
            raise SchemaError(f"column {self.name!r} expects {self.dtype.__name__}, got bool")
        if self.dtype is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        if self.check is not None and not self.check(value):
            raise SchemaError(f"column {self.name!r}: value {value!r} failed its check")
        return value


@dataclass(frozen=True)
class ForeignKey:
    """Declares that ``column`` must reference ``ref_table``'s primary key."""

    column: str
    ref_table: str

    def __post_init__(self) -> None:
        if not self.column or not self.ref_table:
            raise ValidationError("ForeignKey needs a column and a referenced table name")


@dataclass(frozen=True)
class Schema:
    """Full declaration of one table.

    Parameters
    ----------
    name:
        Table name.
    columns:
        Ordered column declarations.
    primary_key:
        Tuple of column names forming the primary key (at least one).
    foreign_keys:
        Foreign-key declarations resolved by the owning :class:`Database`.
    unique:
        Additional tuples of column names whose combined values must be
        unique across rows.
    """

    name: str
    columns: tuple[Column, ...] | list[Column]
    primary_key: tuple[str, ...]
    foreign_keys: tuple[ForeignKey, ...] = field(default_factory=tuple)
    unique: tuple[tuple[str, ...], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "foreign_keys", tuple(self.foreign_keys))
        object.__setattr__(self, "unique", tuple(tuple(u) for u in self.unique))
        if not self.name.isidentifier():
            raise ValidationError(f"table name {self.name!r} is not a valid identifier")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValidationError(f"table {self.name!r} declares duplicate column names")
        if not self.primary_key:
            raise ValidationError(f"table {self.name!r} must declare a primary key")
        known = set(names)
        for pk_col in self.primary_key:
            if pk_col not in known:
                raise ValidationError(
                    f"table {self.name!r}: primary-key column {pk_col!r} is not declared"
                )
        for fk in self.foreign_keys:
            if fk.column not in known:
                raise ValidationError(
                    f"table {self.name!r}: foreign-key column {fk.column!r} is not declared"
                )
        for combo in self.unique:
            for col in combo:
                if col not in known:
                    raise ValidationError(
                        f"table {self.name!r}: unique-constraint column {col!r} is not declared"
                    )

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all declared columns, in declaration order."""
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Return the declaration of column ``name``."""
        for col in self.columns:
            if col.name == name:
                return col
        raise ValidationError(f"table {self.name!r} has no column {name!r}")

    def validate_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate a full row dict against this schema; return a clean copy."""
        extra = set(row) - set(self.column_names)
        if extra:
            raise SchemaError(f"table {self.name!r}: unknown columns {sorted(extra)}")
        clean: dict[str, Any] = {}
        for col in self.columns:
            if col.name not in row:
                raise SchemaError(f"table {self.name!r}: missing column {col.name!r}")
            clean[col.name] = col.validate(row[col.name])
        return clean

    def pk_of(self, row: dict[str, Any]) -> tuple[Any, ...]:
        """Extract the primary-key tuple from a validated row."""
        return tuple(row[c] for c in self.primary_key)
