"""Secondary indexes over table rows."""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.errors import IntegrityError

__all__ = ["HashIndex", "UniqueIndex"]


class HashIndex:
    """Multi-valued hash index: key tuple -> set of primary keys.

    A :class:`repro.store.table.Table` maintains one per indexed column
    combination; lookups return primary keys in insertion order.
    """

    def __init__(self, columns: tuple[str, ...]) -> None:
        self.columns = tuple(columns)
        self._buckets: dict[tuple[Any, ...], dict[tuple[Any, ...], None]] = {}

    def key_of(self, row: dict[str, Any]) -> tuple[Any, ...]:
        """The index key of ``row``."""
        return tuple(row[c] for c in self.columns)

    def add(self, row: dict[str, Any], pk: tuple[Any, ...]) -> None:
        """Register ``pk`` under ``row``'s key."""
        self._buckets.setdefault(self.key_of(row), {})[pk] = None

    def remove(self, row: dict[str, Any], pk: tuple[Any, ...]) -> None:
        """Unregister ``pk`` from ``row``'s key."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.pop(pk, None)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple[Any, ...]) -> list[tuple[Any, ...]]:
        """Primary keys whose rows have index key ``key`` (insertion order)."""
        return list(self._buckets.get(tuple(key), ()))

    def keys(self) -> Iterable[tuple[Any, ...]]:
        """All distinct index keys currently present."""
        return self._buckets.keys()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class UniqueIndex(HashIndex):
    """Hash index that additionally enforces key uniqueness."""

    def add(self, row: dict[str, Any], pk: tuple[Any, ...]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket and pk not in bucket:
            raise IntegrityError(
                f"unique constraint on {self.columns} violated by key {key!r}"
            )
        super().add(row, pk)
