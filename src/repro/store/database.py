"""A named collection of tables with cross-table foreign-key enforcement."""

from __future__ import annotations

from typing import Any

from repro.common.errors import IntegrityError, ValidationError
from repro.store.schema import Schema
from repro.store.table import Table

__all__ = ["Database"]


class Database:
    """Holds tables and enforces declared foreign keys on insert.

    Foreign keys are declared on the referencing table's :class:`Schema`;
    the database resolves them when rows are inserted *through the database*
    (``db.insert(table_name, row)``) or through a table obtained from
    :meth:`table` -- both share the same underlying :class:`Table` objects,
    but only :meth:`insert` runs FK checks, mirroring how an application
    usually funnels writes through one data-access layer.
    """

    def __init__(self, name: str = "db") -> None:
        if not name.isidentifier():
            raise ValidationError(f"database name {name!r} is not a valid identifier")
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- schema management ---------------------------------------------------

    def create_table(self, schema: Schema) -> Table:
        """Create a table from ``schema`` and return it."""
        if schema.name in self._tables:
            raise ValidationError(f"table {schema.name!r} already exists")
        for fk in schema.foreign_keys:
            ref = self._tables.get(fk.ref_table)
            if ref is None:
                raise ValidationError(
                    f"table {schema.name!r}: foreign key references unknown "
                    f"table {fk.ref_table!r} (create referenced tables first)"
                )
            if len(ref.schema.primary_key) != 1:
                raise ValidationError(
                    f"table {schema.name!r}: foreign key to {fk.ref_table!r} requires "
                    "a single-column primary key on the referenced table"
                )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        table = self._tables.get(name)
        if table is None:
            raise ValidationError(f"database {self.name!r} has no table {name!r}")
        return table

    @property
    def table_names(self) -> tuple[str, ...]:
        """Names of all tables, in creation order."""
        return tuple(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # -- writes with FK enforcement -------------------------------------------

    def insert(self, table_name: str, row: dict[str, Any]) -> None:
        """Insert ``row`` into ``table_name``, enforcing foreign keys."""
        table = self.table(table_name)
        clean = table._validate_only(row)
        for fk in table.schema.foreign_keys:
            value = clean[fk.column]
            if value is None:
                continue  # nullable FK columns may hold None
            ref = self._tables[fk.ref_table]
            if not ref._pk_exists((value,)):
                raise IntegrityError(
                    f"table {table_name!r}: column {fk.column!r} value {value!r} "
                    f"does not reference an existing row of {fk.ref_table!r}"
                )
        table._raw_insert(clean)

    def insert_many(self, table_name: str, rows: Any) -> int:
        """Insert many rows with FK enforcement; returns the count inserted."""
        count = 0
        for row in rows:
            self.insert(table_name, row)
            count += 1
        return count

    # -- diagnostics -----------------------------------------------------------

    def verify_integrity(self) -> list[str]:
        """Re-check every foreign key across the whole database.

        Returns a list of human-readable violation descriptions (empty when
        consistent).  Useful after bulk loads that bypassed :meth:`insert`.
        """
        problems: list[str] = []
        for table in self._tables.values():
            for fk in table.schema.foreign_keys:
                ref = self._tables.get(fk.ref_table)
                if ref is None:
                    problems.append(
                        f"{table.name}.{fk.column}: referenced table "
                        f"{fk.ref_table!r} is missing"
                    )
                    continue
                for row in table.rows():
                    value = row[fk.column]
                    if value is not None and not ref._pk_exists((value,)):
                        problems.append(
                            f"{table.name}.{fk.column}={value!r} dangles "
                            f"(no such {fk.ref_table} row)"
                        )
        return problems

    def stats(self) -> dict[str, int]:
        """Row counts per table."""
        return {name: len(table) for name, table in self._tables.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}={len(t)}" for n, t in self._tables.items())
        return f"Database({self.name!r}: {inner})"
