"""An in-memory relational store.

The paper's framework consumes community data (users, categories, objects,
reviews, review ratings) that in a production deployment lives in the
community site's database.  This package provides that substrate: typed
tables with primary keys, foreign keys, unique constraints and secondary
hash indexes, collected into a :class:`Database` with cross-table integrity
checking, plus a small composable query layer.

It is intentionally *not* a SQL engine -- it is the smallest honest database
layer the domain model needs, with the failure modes a real database would
have (duplicate keys, dangling references, schema violations) surfaced as
typed exceptions.

>>> from repro.store import Column, Schema, Database
>>> db = Database("demo")
>>> users = db.create_table(Schema(
...     name="users",
...     columns=[Column("user_id", str), Column("name", str)],
...     primary_key=("user_id",),
... ))
>>> users.insert({"user_id": "u1", "name": "ada"})
>>> users.get("u1")["name"]
'ada'
"""

from repro.store.database import Database
from repro.store.index import HashIndex, UniqueIndex
from repro.store.query import Query
from repro.store.schema import Column, ForeignKey, Schema
from repro.store.table import Table

__all__ = [
    "Column",
    "ForeignKey",
    "Schema",
    "Table",
    "HashIndex",
    "UniqueIndex",
    "Database",
    "Query",
]
