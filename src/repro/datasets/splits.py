"""Hold-out splits of a community's ratings (for application evaluation).

:func:`holdout_ratings` removes a random fraction of helpfulness ratings
from a community, returning the reduced *training* community and the
held-out ratings -- the standard protocol for evaluating rating
prediction / recommendation built on top of the derived trust matrix.
"""

from __future__ import annotations

from repro.common.errors import ValidationError
from repro.common.rng import spawn_rng
from repro.community import (
    Community,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)

__all__ = ["holdout_ratings"]


def holdout_ratings(
    community: Community,
    fraction: float,
    seed: int = 0,
    *,
    keep_trust: bool = True,
) -> tuple[Community, list[ReviewRating]]:
    """Split off ``fraction`` of the ratings as a held-out test set.

    Parameters
    ----------
    community:
        The full community (unmodified).
    fraction:
        Fraction of ratings to hold out, in ``(0, 1)``.
    keep_trust:
        Whether the training community keeps the explicit trust table
        (disable to evaluate the no-web-of-trust scenario end to end).

    Returns
    -------
    (train, held_out):
        ``train`` is a new community with the held-out ratings removed;
        ``held_out`` lists the removed ratings.  Reviews, objects and
        users are all preserved, so every held-out rating refers to a
        review that still exists in ``train``.
    """
    if not 0.0 < fraction < 1.0:
        raise ValidationError(f"fraction must be in (0, 1), got {fraction!r}")

    ratings = list(community.iter_ratings())
    if len(ratings) < 2:
        raise ValidationError("need at least 2 ratings to split")
    rng = spawn_rng(seed, "holdout")
    count = max(1, int(round(fraction * len(ratings))))
    held_idx = set(rng.choice(len(ratings), size=count, replace=False).tolist())

    held_out = [rating for i, rating in enumerate(ratings) if i in held_idx]
    kept = [rating for i, rating in enumerate(ratings) if i not in held_idx]

    categories = [
        (row["category_id"], row["name"] or "")
        for row in community.database.table("categories").rows()
    ]
    train = Community(community.name + "_train")
    for user_id in community.user_ids():
        train.add_user(user_id)
    for category_id, name in categories:
        train.add_category(category_id, name)
    for row in community.database.table("objects").rows():
        train.add_object(
            ReviewedObject(row["object_id"], row["category_id"], row["title"] or "")
        )
    for review in community.iter_reviews():
        train.add_review(Review(review.review_id, review.writer_id, review.object_id))
    for rating in kept:
        train.add_rating(rating)
    if keep_trust:
        for source, target in community.trust_edges():
            train.add_trust(TrustStatement(source, target))
    return train, held_out
