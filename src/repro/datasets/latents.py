"""Latent ground-truth traits of the synthetic population.

These are the quantities the paper's framework tries to *recover* from
observable rating data.  They are exposed on the generated dataset so tests
and experiments can validate estimators against ground truth (e.g. Table
2/3 check that estimated reputation ranks latent experts highly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.matrix import LabelIndex

__all__ = ["LatentTraits"]


@dataclass(frozen=True)
class LatentTraits:
    """Per-user latent traits (aligned with the user/category axes).

    Attributes
    ----------
    users / categories:
        Axis labels; all arrays are indexed by their positions.
    interest:
        ``U x C`` rows on the simplex -- how much each user cares about each
        category (the ground truth behind the affiliation matrix ``A``).
    writer_skill:
        Length-``U`` in ``[0, 1]`` -- expected quality of the user's reviews
        (the ground truth behind expertise ``E``).
    rater_reliability:
        Length-``U`` in ``[0, 1]`` -- inverse rating noisiness (the ground
        truth behind rater reputation).
    generosity:
        Length-``U`` in ``[0, 1]`` -- the fraction of direct connections the
        user explicitly trusts (the ground truth behind ``k_i``).
    """

    users: LabelIndex
    categories: LabelIndex
    interest: np.ndarray
    writer_skill: np.ndarray
    rater_reliability: np.ndarray
    generosity: np.ndarray

    def __post_init__(self) -> None:
        num_users, num_categories = len(self.users), len(self.categories)
        if self.interest.shape != (num_users, num_categories):
            raise ValidationError(
                f"interest shape {self.interest.shape} != ({num_users}, {num_categories})"
            )
        for name in ("writer_skill", "rater_reliability", "generosity"):
            arr = getattr(self, name)
            if arr.shape != (num_users,):
                raise ValidationError(f"{name} must have shape ({num_users},)")
            if arr.size and (arr.min() < 0 or arr.max() > 1):
                raise ValidationError(f"{name} values must lie in [0, 1]")

    def interest_of(self, user_id: str) -> dict[str, float]:
        """``{category: interest}`` for one user."""
        row = self.interest[self.users.position(user_id)]
        return {c: float(row[k]) for k, c in enumerate(self.categories)}

    def skill_of(self, user_id: str) -> float:
        """Latent writing skill of one user."""
        return float(self.writer_skill[self.users.position(user_id)])

    def reliability_of(self, user_id: str) -> float:
        """Latent rating reliability of one user."""
        return float(self.rater_reliability[self.users.position(user_id)])

    def expertise_alignment(self, source_id: str, target_id: str) -> float:
        """Ground-truth interest·skill alignment behind a trust decision.

        ``sum_c interest(source, c) * skill(target) * interest(target, c)``
        -- high when the target is a skilled writer concentrated in the
        categories the source cares about.
        """
        i = self.users.position(source_id)
        j = self.users.position(target_id)
        overlap = float(self.interest[i] @ self.interest[j])
        return overlap * float(self.writer_skill[j])
