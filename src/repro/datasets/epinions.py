"""Readers/writers for the *extended Epinions dataset* file formats.

The publicly released extended Epinions dump (the dataset family the paper
crawled its data from) ships pipe-separated text files:

- ``mc.txt`` -- review content metadata:
  ``content_id|author_id|subject_id`` (one review per line; the subject is
  the reviewed object).  We additionally accept an optional 4th
  ``category_id`` column, since the paper's pipeline is per category and
  the original dump carries the category through the subject hierarchy.
- ``rating.txt`` -- helpfulness ratings of reviews:
  ``content_id|member_id|rating`` with ratings ``1..5``
  (mapped onto the paper's ``0.2 .. 1.0`` scale).
- ``user_rating.txt`` -- the explicit web of trust:
  ``my_id|other_id|value`` with value ``1`` (trust) or ``-1`` (distrust;
  dropped, as the paper's framework models trust only).

:func:`load_epinions_community` assembles a
:class:`repro.community.Community` from these files;
:func:`write_epinions_files` serialises a community back, enabling
round-trips and fixture creation.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.common.errors import DatasetError
from repro.community import (
    Community,
    HELPFULNESS_SCALE,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)

__all__ = ["load_epinions_community", "write_epinions_files"]

_DEFAULT_CATEGORY = "epinions"


def load_epinions_community(
    directory: str,
    *,
    content_file: str = "mc.txt",
    rating_file: str = "rating.txt",
    trust_file: str = "user_rating.txt",
    separator: str = "|",
    skip_unknown_reviews: bool = True,
    skip_self_ratings: bool = True,
) -> Community:
    """Load a community from extended-Epinions-format files in ``directory``.

    Parameters
    ----------
    directory:
        Directory holding the three files.  ``trust_file`` may be absent
        (no explicit web of trust -- exactly the situation the paper's
        framework is designed for).
    skip_unknown_reviews:
        Ratings referencing review ids absent from the content file are
        skipped when ``True``, raised as :class:`DatasetError` otherwise.
    skip_self_ratings:
        Epinions dumps occasionally contain authors rating their own
        reviews; the community model forbids that, so they are dropped by
        default.

    Returns
    -------
    Community
        With one category per distinct category id found (or a single
        ``"epinions"`` category when the content file has no category
        column).
    """
    content_path = os.path.join(directory, content_file)
    rating_path = os.path.join(directory, rating_file)
    trust_path = os.path.join(directory, trust_file)
    if not os.path.exists(content_path):
        raise DatasetError(f"content file not found: {content_path}")
    if not os.path.exists(rating_path):
        raise DatasetError(f"rating file not found: {rating_path}")

    reviews = list(_parse_content(content_path, separator))
    community = Community("epinions")

    categories = sorted({category for _, _, _, category in reviews})
    users: set[str] = set()
    for review_id, author_id, _subject_id, _category in reviews:
        users.add(author_id)

    ratings = list(_parse_ratings(rating_path, separator))
    for _review_id, member_id, _value in ratings:
        users.add(member_id)

    trust_edges: list[tuple[str, str]] = []
    if os.path.exists(trust_path):
        trust_edges = list(_parse_trust(trust_path, separator))
        for source, target in trust_edges:
            users.add(source)
            users.add(target)

    for uid in sorted(users):
        community.add_user(uid)
    for cid in categories:
        community.add_category(cid)

    # subjects (reviewed objects) may be shared across reviews
    seen_objects: set[str] = set()
    known_reviews: set[str] = set()
    for review_id, author_id, subject_id, category in reviews:
        if subject_id not in seen_objects:
            community.add_object(ReviewedObject(subject_id, category))
            seen_objects.add(subject_id)
        community.add_review(Review(review_id, author_id, subject_id))
        known_reviews.add(review_id)

    seen_pairs: set[tuple[str, str]] = set()
    for review_id, member_id, value in ratings:
        if review_id not in known_reviews:
            if skip_unknown_reviews:
                continue
            raise DatasetError(f"rating references unknown review {review_id!r}")
        if (member_id, review_id) in seen_pairs:
            continue  # keep the first occurrence, as the site would
        if skip_self_ratings and community.review_writer(review_id) == member_id:
            continue
        seen_pairs.add((member_id, review_id))
        community.add_rating(ReviewRating(member_id, review_id, value))

    seen_trust: set[tuple[str, str]] = set()
    for source, target in trust_edges:
        if source == target or (source, target) in seen_trust:
            continue
        seen_trust.add((source, target))
        community.add_trust(TrustStatement(source, target))
    return community


def write_epinions_files(
    community: Community,
    directory: str,
    *,
    content_file: str = "mc.txt",
    rating_file: str = "rating.txt",
    trust_file: str = "user_rating.txt",
    separator: str = "|",
) -> None:
    """Serialise ``community`` into extended-Epinions-format files."""
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, content_file), "w", encoding="utf-8") as f:
        for review in community.iter_reviews():
            category = community.review_category(review.review_id)
            f.write(
                separator.join(
                    (review.review_id, review.writer_id, review.object_id, category)
                )
                + "\n"
            )
    with open(os.path.join(directory, rating_file), "w", encoding="utf-8") as f:
        for rating in community.iter_ratings():
            stars = _scale_to_stars(rating.value)
            f.write(separator.join((rating.review_id, rating.rater_id, str(stars))) + "\n")
    with open(os.path.join(directory, trust_file), "w", encoding="utf-8") as f:
        for source, target in community.trust_edges():
            f.write(separator.join((source, target, "1")) + "\n")


# ------------------------------------------------------------------- parsing


def _parse_content(path: str, separator: str) -> Iterable[tuple[str, str, str, str]]:
    for line_no, fields in _iter_fields(path, separator):
        if len(fields) == 3:
            review_id, author_id, subject_id = fields
            category = _DEFAULT_CATEGORY
        elif len(fields) >= 4:
            review_id, author_id, subject_id, category = fields[:4]
        else:
            raise DatasetError(
                f"{path}:{line_no}: expected 3 or 4 fields, got {len(fields)}"
            )
        yield review_id, author_id, subject_id, category


def _parse_ratings(path: str, separator: str) -> Iterable[tuple[str, str, float]]:
    for line_no, fields in _iter_fields(path, separator):
        if len(fields) < 3:
            raise DatasetError(f"{path}:{line_no}: expected 3 fields, got {len(fields)}")
        review_id, member_id, raw = fields[:3]
        yield review_id, member_id, _stars_to_scale(raw, path, line_no)


def _parse_trust(path: str, separator: str) -> Iterable[tuple[str, str]]:
    for line_no, fields in _iter_fields(path, separator):
        if len(fields) < 2:
            raise DatasetError(f"{path}:{line_no}: expected >=2 fields, got {len(fields)}")
        source, target = fields[:2]
        value = fields[2].strip() if len(fields) >= 3 else "1"
        if value == "-1":
            continue  # distrust: outside the paper's model
        yield source, target


def _iter_fields(path: str, separator: str):
    with open(path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield line_no, [field.strip() for field in line.split(separator)]


def _stars_to_scale(raw: str, path: str, line_no: int) -> float:
    try:
        stars = int(raw)
    except ValueError as exc:
        raise DatasetError(f"{path}:{line_no}: bad rating {raw!r}") from exc
    if not 1 <= stars <= 5:
        raise DatasetError(f"{path}:{line_no}: rating must be 1..5, got {stars}")
    return HELPFULNESS_SCALE[stars - 1]


def _scale_to_stars(value: float) -> int:
    for stars, stage in enumerate(HELPFULNESS_SCALE, start=1):
        if abs(value - stage) < 1e-9:
            return stars
    raise DatasetError(f"value {value!r} is not on the helpfulness scale")
