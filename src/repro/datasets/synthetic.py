"""Latent-factor simulator of an Epinions-style community.

The generative story (documented in DESIGN.md §2):

1. every user gets latent *interest* over categories (Dirichlet, biased by
   geometric category popularity), *writing skill* (Beta), *rating
   reliability* (Beta), *generosity* (Beta) and heavy-tailed activity
   levels;
2. writers write reviews in categories drawn from their interest; each
   review has a true quality = writer skill + per-review noise;
3. raters rate reviews in categories drawn from their interest, preferring
   higher-quality reviews (good reviews attract ratings); the observed
   rating is the true quality plus reliability-scaled noise, quantised to
   the 5-step helpfulness scale;
4. each user's explicit trust edges go to writers whose latent
   interest-skill *alignment* with the user is high -- mostly writers the
   user has rated (``R ∩ T``), some never rated (``T - R``, word of
   mouth), with a little uniform noise;
5. "Advisors" and "Top Reviewers" are designated from latent reliability /
   skill and activity volume, mimicking Epinions' editorial selection, and
   deliberately *not* from anything the estimators under test compute.

Everything is driven by named child streams of one seed, so a
``(profile, seed)`` pair is fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.identifiers import IdAllocator, category_id, object_id, user_id
from repro.common.rng import RngFactory
from repro.community import (
    Community,
    HELPFULNESS_SCALE,
    Review,
    ReviewRating,
    ReviewedObject,
    TrustStatement,
)
from repro.datasets.latents import LatentTraits
from repro.datasets.profile import CommunityProfile
from repro.matrix import LabelIndex

__all__ = ["SyntheticDataset", "generate_community"]

_SCALE = np.asarray(HELPFULNESS_SCALE)


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated community plus its generating ground truth.

    Attributes
    ----------
    community:
        The observable data (users, reviews, ratings, explicit trust).
    profile / seed:
        Exactly reproduce the dataset via ``generate_community(profile, seed)``.
    latents:
        The hidden traits the framework tries to recover.
    advisors / top_reviewers:
        The simulator's editorial designations (inputs to Tables 2-3).
    true_review_quality:
        ``{review_id: latent quality}`` -- what the ratings noisily observe.
    """

    community: Community
    profile: CommunityProfile
    seed: int
    latents: LatentTraits
    advisors: tuple[str, ...]
    top_reviewers: tuple[str, ...]
    true_review_quality: dict[str, float]

    def describe(self) -> dict[str, float]:
        """Key size/density numbers for quick inspection."""
        summary = self.community.summary()
        num_users = summary["users"]
        possible_pairs = max(num_users * (num_users - 1), 1)
        return {
            "users": float(summary["users"]),
            "categories": float(summary["categories"]),
            "reviews": float(summary["reviews"]),
            "ratings": float(summary["ratings"]),
            "trust_edges": float(summary["trust"]),
            "trust_density": summary["trust"] / possible_pairs,
            "advisors": float(len(self.advisors)),
            "top_reviewers": float(len(self.top_reviewers)),
        }


def generate_community(
    profile: CommunityProfile | None = None, seed: int = 0
) -> SyntheticDataset:
    """Generate a synthetic community from ``profile`` with ``seed``.

    Deterministic: the same ``(profile, seed)`` pair always yields an
    identical dataset, independent of the order other code consumes random
    numbers.
    """
    profile = profile or CommunityProfile()
    factory = RngFactory(seed)

    users = [user_id(i) for i in range(profile.num_users)]
    categories = [category_id(k) for k in range(profile.num_categories)]
    user_axis = LabelIndex(users)
    category_axis = LabelIndex(categories)

    latents = _sample_latents(profile, factory, user_axis, category_axis)

    community = Community("synthetic")
    for uid in users:
        community.add_user(uid)
    for k, cid in enumerate(categories):
        community.add_category(cid, profile.category_names[k])

    objects_by_category = _create_objects(profile, community, categories)

    reviews, review_quality, review_writer_idx, review_category_idx = _generate_reviews(
        profile, factory, community, latents, objects_by_category
    )
    rated_writers = _generate_ratings(
        profile,
        factory,
        community,
        latents,
        reviews,
        review_quality,
        review_writer_idx,
        review_category_idx,
    )
    _generate_trust(profile, factory, community, latents, rated_writers)

    advisors, top_reviewers = _designate_experts(profile, community, latents)

    quality_by_id = {
        review.review_id: float(review_quality[idx])
        for idx, review in enumerate(reviews)
    }
    return SyntheticDataset(
        community=community,
        profile=profile,
        seed=seed,
        latents=latents,
        advisors=advisors,
        top_reviewers=top_reviewers,
        true_review_quality=quality_by_id,
    )


# ----------------------------------------------------------------- latent traits


def _sample_latents(
    profile: CommunityProfile,
    factory: RngFactory,
    user_axis: LabelIndex,
    category_axis: LabelIndex,
) -> LatentTraits:
    num_users = len(user_axis)
    num_categories = len(category_axis)

    rng = factory.child("latents")
    popularity = profile.category_weight_decay ** np.arange(num_categories)
    alpha = profile.interest_concentration * num_categories * popularity / popularity.sum()
    interest = rng.dirichlet(alpha, size=num_users)

    writer_skill = rng.beta(
        profile.writer_skill_alpha, profile.writer_skill_beta, size=num_users
    )
    rater_reliability = rng.beta(
        profile.rater_reliability_alpha, profile.rater_reliability_beta, size=num_users
    )
    generosity = rng.beta(
        profile.trust_generosity_alpha, profile.trust_generosity_beta, size=num_users
    )
    return LatentTraits(
        users=user_axis,
        categories=category_axis,
        interest=interest,
        writer_skill=writer_skill,
        rater_reliability=rater_reliability,
        generosity=generosity,
    )


def _heavy_tail_counts(
    rng: np.random.Generator, n: int, exponent: float, profile: CommunityProfile
) -> np.ndarray:
    """Zipf-distributed activity counts, capped at ``profile.activity_cap``.

    Real review-community activity is heavy-tailed: most users rate or
    write once or twice, a few are hyperactive.  That shape is what lets
    the experience discount of eqs. 2-3 separate casual users from the
    committed ones (and is why Epinions' Advisors sit so far above the
    per-category rater mass in Table 2).
    """
    return np.minimum(rng.zipf(exponent, size=n), profile.activity_cap)


def _create_objects(
    profile: CommunityProfile, community: Community, categories: list[str]
) -> dict[str, list[str]]:
    alloc = IdAllocator("o")
    by_category: dict[str, list[str]] = {}
    for cid in categories:
        ids = []
        for _ in range(profile.objects_per_category):
            oid = alloc.next()
            community.add_object(ReviewedObject(oid, cid))
            ids.append(oid)
        by_category[cid] = ids
    return by_category


# ----------------------------------------------------------------------- reviews


def _generate_reviews(
    profile: CommunityProfile,
    factory: RngFactory,
    community: Community,
    latents: LatentTraits,
    objects_by_category: dict[str, list[str]],
):
    rng = factory.child("reviews")
    num_users = len(latents.users)
    num_categories = len(latents.categories)

    is_writer = rng.random(num_users) < profile.writer_fraction
    review_counts = np.where(
        is_writer,
        _heavy_tail_counts(rng, num_users, profile.writer_activity_exponent, profile),
        0,
    )

    uniform = np.full(num_categories, 1.0 / num_categories)
    exploration = profile.writing_exploration

    alloc = IdAllocator("r")
    reviews: list[Review] = []
    qualities: list[float] = []
    writer_idx: list[int] = []
    category_idx: list[int] = []
    for i in range(num_users):
        count = int(review_counts[i])
        if count == 0:
            continue
        uid = latents.users.label(i)
        taken: dict[int, set[str]] = {}
        write_pref = (1.0 - exploration) * latents.interest[i] + exploration * uniform
        chosen_categories = rng.choice(num_categories, size=count, p=write_pref)
        for k in chosen_categories:
            cid = latents.categories.label(int(k))
            pool = objects_by_category[cid]
            used = taken.setdefault(int(k), set())
            available = [o for o in pool if o not in used]
            if not available:
                continue  # the user reviewed everything in this category
            oid = available[int(rng.integers(len(available)))]
            used.add(oid)
            quality = float(
                np.clip(latents.writer_skill[i] + rng.normal(0.0, 0.07), 0.02, 1.0)
            )
            review = Review(alloc.next(), uid, oid)
            community.add_review(review)
            reviews.append(review)
            qualities.append(quality)
            writer_idx.append(i)
            category_idx.append(int(k))
    return (
        reviews,
        np.asarray(qualities, dtype=np.float64),
        np.asarray(writer_idx, dtype=np.int64),
        np.asarray(category_idx, dtype=np.int64),
    )


# ----------------------------------------------------------------------- ratings


def _generate_ratings(
    profile: CommunityProfile,
    factory: RngFactory,
    community: Community,
    latents: LatentTraits,
    reviews: list[Review],
    review_quality: np.ndarray,
    review_writer_idx: np.ndarray,
    review_category_idx: np.ndarray,
) -> dict[int, set[int]]:
    """Generate helpfulness ratings; return ``{rater index: writer indexes rated}``."""
    rng = factory.child("ratings")
    num_users = len(latents.users)
    num_categories = len(latents.categories)

    reviews_in_category: dict[int, np.ndarray] = {
        k: np.nonzero(review_category_idx == k)[0] for k in range(num_categories)
    }
    # quality-proportional attention: better reviews attract more raters
    attention: dict[int, np.ndarray] = {}
    for k, idxs in reviews_in_category.items():
        if len(idxs):
            weights = 0.2 + review_quality[idxs]
            attention[k] = weights / weights.sum()

    is_rater = rng.random(num_users) < profile.rater_fraction
    rating_counts = np.where(
        is_rater,
        _heavy_tail_counts(rng, num_users, profile.rater_activity_exponent, profile),
        0,
    )

    # browsing: what users *rate* mixes their interest with uniform exploration
    uniform = np.full(num_categories, 1.0 / num_categories)
    exploration = profile.rating_exploration

    rated_writers: dict[int, set[int]] = {}
    for i in range(num_users):
        budget = int(rating_counts[i])
        if budget == 0:
            continue
        uid = latents.users.label(i)
        noise_scale = profile.rating_noise * (1.5 - latents.rater_reliability[i])
        rated: set[int] = set()
        browse = (1.0 - exploration) * latents.interest[i] + exploration * uniform
        category_draws = rng.choice(num_categories, size=budget, p=browse)
        for k in category_draws:
            idxs = reviews_in_category.get(int(k))
            if idxs is None or not len(idxs):
                continue
            r_pos = int(rng.choice(idxs, p=attention[int(k)]))
            if r_pos in rated or review_writer_idx[r_pos] == i:
                continue
            rated.add(r_pos)
            observed = review_quality[r_pos] + rng.normal(0.0, noise_scale)
            value = float(_SCALE[np.abs(_SCALE - observed).argmin()])
            community.add_rating(ReviewRating(uid, reviews[r_pos].review_id, value))
            rated_writers.setdefault(i, set()).add(int(review_writer_idx[r_pos]))
    return rated_writers


# ------------------------------------------------------------------------- trust


def _generate_trust(
    profile: CommunityProfile,
    factory: RngFactory,
    community: Community,
    latents: LatentTraits,
    rated_writers: dict[int, set[int]],
) -> None:
    rng = factory.child("trust")
    num_users = len(latents.users)

    # latent per-category expertise: skill spread over the writer's interests
    latent_expertise = latents.interest * latents.writer_skill[:, None]  # U x C
    # any user who wrote at least one review is a potential trustee
    writer_mask = np.zeros(num_users, dtype=bool)
    for review in community.iter_reviews():
        writer_mask[latents.users.position(review.writer_id)] = True

    out_frac = profile.trust_out_of_connection_fraction
    for i in range(num_users):
        connected = np.array(sorted(rated_writers.get(i, set())), dtype=np.int64)
        connected = connected[connected != i]
        # exposure gate: only some connections have had the chance to become
        # trust yet; the rest stay in R - T no matter how well aligned
        if len(connected) and profile.trust_exposure < 1.0:
            exposed_mask = rng.random(len(connected)) < profile.trust_exposure
            connected = connected[exposed_mask]
        num_in = _round_half_up(float(latents.generosity[i]) * len(connected))
        alignment = latents.interest[i] @ latent_expertise.T  # length U
        trusted: set[int] = set()

        if num_in > 0 and len(connected):
            trusted.update(
                _weighted_sample(
                    rng,
                    connected,
                    alignment[connected],
                    num_in,
                    sharpness=profile.trust_alignment_sharpness,
                    noise=profile.trust_noise,
                )
            )

        if out_frac > 0.0 and trusted:
            num_out = _round_half_up(len(trusted) * out_frac / (1.0 - out_frac))
            outside = np.nonzero(writer_mask)[0]
            outside = outside[
                ~np.isin(outside, connected) & (outside != i)
            ]
            if num_out > 0 and len(outside):
                trusted.update(
                    _weighted_sample(
                        rng,
                        outside,
                        alignment[outside],
                        num_out,
                        sharpness=profile.trust_alignment_sharpness,
                        noise=profile.trust_noise,
                    )
                )

        uid = latents.users.label(i)
        for j in sorted(trusted):
            if j == i:
                continue
            community.add_trust(TrustStatement(uid, latents.users.label(int(j))))


def _weighted_sample(
    rng: np.random.Generator,
    candidates: np.ndarray,
    scores: np.ndarray,
    count: int,
    *,
    sharpness: float,
    noise: float,
) -> list[int]:
    """Sample ``count`` distinct candidates by sharpened score weights.

    With probability ``noise`` each pick is uniform instead of weighted
    (idiosyncratic trust).
    """
    count = min(count, len(candidates))
    if count == 0:
        return []
    weights = np.power(np.maximum(scores, 1e-12), sharpness)
    weights = weights / weights.sum()
    uniform = np.full(len(candidates), 1.0 / len(candidates))
    mixed = (1.0 - noise) * weights + noise * uniform
    picked = rng.choice(len(candidates), size=count, replace=False, p=mixed)
    return [int(candidates[p]) for p in picked]


def _round_half_up(x: float) -> int:
    return int(x + 0.5 + 1e-9)


# ------------------------------------------------------------------ designations


def _designate_experts(
    profile: CommunityProfile, community: Community, latents: LatentTraits
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Pick Advisors / Top Reviewers from latent quality x observed quantity.

    This mirrors Epinions' editorial criterion ("quality and quantity") but
    uses *latent* reliability/skill for the quality half, keeping the
    designation channel independent of the estimators under test.
    """
    num_users = len(latents.users)
    ratings_given = np.zeros(num_users)
    reviews_written = np.zeros(num_users)
    for rating in community.iter_ratings():
        ratings_given[latents.users.position(rating.rater_id)] += 1
    for review in community.iter_reviews():
        reviews_written[latents.users.position(review.writer_id)] += 1

    # "quality and quantity": volume enters linearly for advisors (Epinions
    # picks its *most active* reliable raters) and logarithmically for top
    # reviewers (skill dominates once a writer is established)
    advisor_score = latents.rater_reliability * ratings_given
    advisor_score[ratings_given == 0] = -1.0
    reviewer_score = latents.writer_skill * np.log1p(reviews_written)
    reviewer_score[reviews_written == 0] = -1.0

    advisors = _top_labels(latents.users, advisor_score, profile.num_advisors)
    top_reviewers = _top_labels(latents.users, reviewer_score, profile.num_top_reviewers)
    return advisors, top_reviewers


def _top_labels(users: LabelIndex, scores: np.ndarray, count: int) -> tuple[str, ...]:
    eligible = np.nonzero(scores >= 0.0)[0]
    order = eligible[np.argsort(-scores[eligible], kind="stable")]
    return tuple(users.label(int(i)) for i in order[:count])
