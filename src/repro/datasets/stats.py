"""Descriptive statistics of a community dataset.

Used by the experiment reports (dataset sections of EXPERIMENTS.md) and by
examples to show what was generated/loaded before running the framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.community import Community

__all__ = ["DatasetStats", "dataset_stats", "CategoryStats"]


@dataclass(frozen=True)
class CategoryStats:
    """Per-category activity counts."""

    category_id: str
    name: str
    num_objects: int
    num_reviews: int
    num_ratings: int
    num_writers: int
    num_raters: int


@dataclass(frozen=True)
class DatasetStats:
    """Community-wide statistics.

    Attributes
    ----------
    num_users / num_categories / num_reviews / num_ratings / num_trust_edges:
        Entity counts.
    rating_density:
        Stored (rater, writer) direct-connection pairs over all ordered
        user pairs -- the density of the paper's ``R``.
    trust_density:
        Explicit trust edges over all ordered user pairs -- the density of
        the paper's ``T`` (the sparsity problem motivating the framework).
    ratings_per_review:
        Mean ratings received per review (rated reviews only).
    per_category:
        One :class:`CategoryStats` per category.
    """

    num_users: int
    num_categories: int
    num_objects: int
    num_reviews: int
    num_ratings: int
    num_trust_edges: int
    rating_density: float
    trust_density: float
    ratings_per_review: float
    per_category: tuple[CategoryStats, ...] = field(default_factory=tuple)


def dataset_stats(community: Community) -> DatasetStats:
    """Compute :class:`DatasetStats` for ``community``."""
    summary = community.summary()
    num_users = summary["users"]
    possible_pairs = max(num_users * (num_users - 1), 1)

    connections = community.direct_connections()
    direct_pairs = sum(1 for (i, j) in connections if i != j)

    ratings_received: dict[str, int] = {}
    for rating in community.iter_ratings():
        ratings_received[rating.review_id] = ratings_received.get(rating.review_id, 0) + 1
    mean_received = (
        float(np.mean(list(ratings_received.values()))) if ratings_received else 0.0
    )

    per_category = []
    names = {
        row["category_id"]: (row["name"] or row["category_id"])
        for row in community.database.table("categories").rows()
    }
    for cid in community.category_ids():
        writing = community.writing_counts(cid)
        rating_counts = community.rating_counts(cid)
        per_category.append(
            CategoryStats(
                category_id=cid,
                name=names[cid],
                num_objects=len(community.object_ids(cid)),
                num_reviews=community.num_reviews(cid),
                num_ratings=community.num_ratings(cid),
                num_writers=len(writing),
                num_raters=len(rating_counts),
            )
        )

    return DatasetStats(
        num_users=num_users,
        num_categories=summary["categories"],
        num_objects=summary["objects"],
        num_reviews=summary["reviews"],
        num_ratings=summary["ratings"],
        num_trust_edges=summary["trust"],
        rating_density=direct_pairs / possible_pairs,
        trust_density=summary["trust"] / possible_pairs,
        ratings_per_review=mean_received,
        per_category=tuple(per_category),
    )
